"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (fully offline environments cannot always run editable installs),
and registers the ``slow`` marker.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
