#!/usr/bin/env python
"""CI gate: the service stack survives seeded chaos without moving a byte.

Runs the chaos-soak harness (:func:`repro.resilience.run_chaos_soak`)
twice with a pinned chaos seed: a job server plus one chaos-wrapped
remote worker execute a small registry scenario through two submissions
while the fault engine injects worker crashes, silent stalls, slow
units, execution errors, delayed/corrupted/truncated/duplicated wire
frames, and torn/tampered store writes.  The gate holds iff:

1. at least ``MIN_FAULTS`` faults actually fired (the soak is not a
   no-op),
2. every fault *kind* in the spec fired at least once across the run
   (all seams were exercised),
3. both submissions of both soak runs produced a ``ScenarioResult``
   byte-identical to the fault-free in-process baseline,
4. the two runs' canonical fault logs are byte-equal — chaos itself is
   replayable from ``(seed, spec)``.

Exit code 0 when every stage holds, 1 with a transcript otherwise.

Usage::

    PYTHONPATH=src python scripts/ci_chaos_soak.py
"""

from __future__ import annotations

import sys
import time

CHAOS_SEED = 20260808
MIN_FAULTS = 30
SCENARIO = "table1-stars"
OVERRIDES = {"sizes": (6, 8), "repetitions": 6}
CLIENT_TIMEOUT = 100.0


def fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.orchestration.registry import get_scenario
    from repro.resilience import default_fault_spec, run_chaos_soak

    scenario = get_scenario(SCENARIO).with_overrides(**OVERRIDES)
    spec = default_fault_spec()

    reports = []
    for attempt in (1, 2):
        start = time.perf_counter()
        report = run_chaos_soak(
            scenario, CHAOS_SEED, spec, client_timeout=CLIENT_TIMEOUT
        )
        elapsed = time.perf_counter() - start
        print(
            f"soak run {attempt}: {report.injected} faults over "
            f"{report.units} units in {elapsed:.1f}s "
            f"({', '.join(f'{k}={v}' for k, v in sorted(report.counts_by_kind.items()))})"
        )
        reports.append(report)

    first, second = reports
    if first.injected < MIN_FAULTS:
        fail(
            f"only {first.injected} faults injected; the gate requires "
            f">= {MIN_FAULTS} (spec or scenario too tame)"
        )
    spec_kinds = {kind for kind, rate in spec.rates if rate > 0}
    missing = sorted(spec_kinds - set(first.counts_by_kind))
    if missing:
        fail(f"fault kind(s) never fired: {', '.join(missing)}")
    for label, report in (("first", first), ("second", second)):
        if report.first_json != report.baseline_json:
            fail(f"{label} soak: submission 1 diverged from the fault-free baseline")
        if report.second_json != report.baseline_json:
            fail(f"{label} soak: submission 2 diverged from the fault-free baseline")
    if first.log_json != second.log_json:
        fail("fault logs differ between identically-seeded runs (chaos not replayable)")

    print(
        f"OK: {first.injected} faults across every seam, results byte-identical "
        "to the fault-free run, fault log replayed bit-for-bit"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
