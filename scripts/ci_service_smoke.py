#!/usr/bin/env python
"""CI gate: the simulation service works end-to-end across real processes.

Boots the full deployment shape on localhost — one ``repro-popsim serve``
process, two ``repro-popsim worker`` processes — then drives it with two
``repro-popsim submit`` runs of the same scenario:

1. the first submission must execute every unit on the workers (cold
   store) and print the sweep tables,
2. the second must be served *entirely* from the server's result store —
   zero units executed — and print byte-identical tables,

after which the server is sent SIGTERM and must drain gracefully (exit
code 0, both workers exiting 0 after their shutdown frames).

Exit code 0 when every stage holds, 1 with a transcript otherwise.

Usage::

    PYTHONPATH=src python scripts/ci_service_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

SCENARIO = ["--scenario", "clique-n100", "--sizes", "10", "14", "--repetitions", "2"]
STARTUP_DEADLINE = 30.0
SUBMIT_DEADLINE = 120.0


def popen(argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **kwargs,
    )


def fail(message, *transcripts):
    print(f"FAIL: {message}")
    for label, text in transcripts:
        print(f"--- {label} ---")
        print(text if text else "(no output)")
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ci-service-smoke-") as tmp:
        port_file = os.path.join(tmp, "port")
        cache_dir = os.path.join(tmp, "cache")
        server = popen(
            ["serve", "--port", "0", "--port-file", port_file, "--cache-dir", cache_dir]
        )
        workers = []
        try:
            deadline = time.monotonic() + STARTUP_DEADLINE
            while not os.path.exists(port_file):
                if server.poll() is not None or time.monotonic() > deadline:
                    return fail(
                        "server did not come up",
                        ("server", server.communicate()[0]),
                    )
                time.sleep(0.05)
            with open(port_file, encoding="ascii") as handle:
                endpoint = f"127.0.0.1:{handle.read().strip()}"

            workers = [popen(["worker", "--connect", endpoint]) for _ in range(2)]

            def submit():
                return subprocess.run(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "submit",
                        "--connect",
                        endpoint,
                        *SCENARIO,
                    ],
                    env=dict(os.environ, PYTHONPATH="src"),
                    capture_output=True,
                    text=True,
                    timeout=SUBMIT_DEADLINE,
                )

            first = submit()
            if first.returncode != 0:
                return fail(
                    "first submission failed",
                    ("submit stdout", first.stdout),
                    ("submit stderr", first.stderr),
                )
            if "0/" not in first.stdout or "from server cache" not in first.stdout:
                return fail(
                    "first submission should be a cold-store run",
                    ("submit stdout", first.stdout),
                )

            second = submit()
            if second.returncode != 0:
                return fail(
                    "second submission failed",
                    ("submit stdout", second.stdout),
                    ("submit stderr", second.stderr),
                )
            if "0 executed" not in second.stdout:
                return fail(
                    "second submission must be served entirely from cache",
                    ("submit stdout", second.stdout),
                )

            def tables(text):
                lines = text.splitlines()
                stats = max(
                    i for i, line in enumerate(lines)
                    if "units from server cache" in line
                )
                return "\n".join(lines[:stats])

            if tables(first.stdout) != tables(second.stdout):
                return fail(
                    "cached tables differ from the executed run",
                    ("first", first.stdout),
                    ("second", second.stdout),
                )
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
            server_out, _ = server.communicate(timeout=60)
            worker_results = [worker.communicate(timeout=60) for worker in workers]

        if server.returncode != 0:
            return fail(f"server exited {server.returncode}", ("server", server_out))
        for worker, (out, _) in zip(workers, worker_results):
            if worker.returncode != 0:
                return fail(f"worker exited {worker.returncode}", ("worker", out))

        executed = sum(
            int(out.rsplit("after ", 1)[1].split()[0]) for out, _ in worker_results
        )
        print(
            "OK: service smoke passed — cold submission executed on the workers "
            f"({executed} units across {len(workers)} worker processes), repeat "
            "submission served 100% from the store with identical tables, "
            "SIGTERM drained cleanly"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
