#!/usr/bin/env python
"""CI gate: a 2-worker parallel sweep is byte-identical to the serial path.

Runs a tiny two-protocol scenario twice through the orchestrator — once
serially, once sharded over two worker processes — with the result store
disabled (CI must never read from or populate ``.repro_cache/``; cached
results would mask a divergence, which is exactly what this job exists to
catch).  The two canonical JSON aggregates must match byte for byte.

Exit code 0 on equality, 1 with a diff summary otherwise.

Usage::

    PYTHONPATH=src python scripts/ci_parallel_equivalence.py
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.orchestration import ProtocolConfig, Scenario, run_scenario

    scenario = Scenario(
        name="ci-parallel-equivalence",
        workload="clique",
        sizes=(10, 14),
        protocols=(ProtocolConfig("token"), ProtocolConfig("star")),
        repetitions=4,
        seed=2022,
    )
    serial = run_scenario(scenario, jobs=1, cache=False)
    parallel = run_scenario(scenario, jobs=2, cache=False)

    serial_bytes = serial.canonical_json().encode("utf-8")
    parallel_bytes = parallel.canonical_json().encode("utf-8")
    if serial_bytes != parallel_bytes:
        print("FAIL: parallel aggregate differs from the serial path")
        print(f"  serial   ({len(serial_bytes)} bytes): {serial_bytes[:400]!r}")
        print(f"  parallel ({len(parallel_bytes)} bytes): {parallel_bytes[:400]!r}")
        return 1
    print(
        "OK: 2-worker parallel sweep is byte-identical to the serial path "
        f"({len(serial_bytes)} canonical bytes, "
        f"{serial.total_units} work units, serial {serial.wall_time_seconds:.2f}s, "
        f"parallel {parallel.wall_time_seconds:.2f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
