#!/usr/bin/env python
"""CI gate: every execution placement is byte-identical to the serial path.

Runs a tiny two-protocol scenario three times through the stack —

* serially (``jobs=1``),
* sharded over two fork-worker processes (``jobs=2``),
* through the simulation service: an in-process job server with two
  *remote* workers connected over real sockets on localhost,
* on the partitioned graph engine (``shards=4``): every unit executes
  through :mod:`repro.sharding`'s shard-local executor instead of the
  replica-batched stack,
* on the shard-worker pool (``shards=4, shard_workers=4``): the same
  sharded units, but every chunk fans out across four forked shard
  workers over shared-memory state,

with the result store disabled for the local placements and a throwaway
store for the server (CI must never read from or populate
``.repro_cache/``; cached results would mask a divergence, which is
exactly what this job exists to catch).  All five canonical JSON
aggregates must match byte for byte — for the sharded placement this is
the engine's determinism contract itself (partitioning decides *where*
a pair is applied, never *which* pair is drawn).

Exit code 0 on equality, 1 with a diff summary otherwise.

Usage::

    PYTHONPATH=src python scripts/ci_parallel_equivalence.py
"""

from __future__ import annotations

import asyncio
import sys
import tempfile


def run_through_service(scenario):
    """One submission against a live server + two socket workers."""
    from repro.service import JobServer, ServiceClient
    from repro.service.worker import run_worker_async

    async def main():
        with tempfile.TemporaryDirectory(prefix="ci-service-") as cache_dir:
            server = JobServer(cache_dir=cache_dir)
            host, port = await server.start()
            workers = [
                asyncio.ensure_future(run_worker_async(host, port)) for _ in range(2)
            ]
            try:
                return await ServiceClient(host, port).submit_async(scenario)
            finally:
                await server.drain(timeout=30)
                await asyncio.gather(*workers, return_exceptions=True)

    return asyncio.run(main())


def main() -> int:
    from repro.orchestration import ProtocolConfig, Scenario, run_scenario

    scenario = Scenario(
        name="ci-parallel-equivalence",
        workload="clique",
        sizes=(10, 14),
        protocols=(ProtocolConfig("token"), ProtocolConfig("star")),
        repetitions=4,
        seed=2022,
    )
    serial = run_scenario(scenario, jobs=1, cache=False)
    placements = {
        "2 fork workers": run_scenario(scenario, jobs=2, cache=False),
        "server + 2 remote workers": run_through_service(scenario),
        "4-shard engine": run_scenario(
            scenario.with_overrides(shards=4), jobs=1, cache=False
        ),
        "4-shard engine + 4 shard workers": run_scenario(
            scenario.with_overrides(shards=4, shard_workers=4), jobs=1, cache=False
        ),
    }

    serial_bytes = serial.canonical_json().encode("utf-8")
    for label, result in placements.items():
        result_bytes = result.canonical_json().encode("utf-8")
        if result_bytes != serial_bytes:
            print(f"FAIL: {label} aggregate differs from the serial path")
            print(f"  serial ({len(serial_bytes)} bytes): {serial_bytes[:400]!r}")
            print(f"  {label} ({len(result_bytes)} bytes): {result_bytes[:400]!r}")
            return 1
    print(
        "OK: fork-worker, server and sharded placements are byte-identical "
        f"to the serial path ({len(serial_bytes)} canonical bytes, "
        f"{serial.total_units} work units, serial {serial.wall_time_seconds:.2f}s, "
        f"fork {placements['2 fork workers'].wall_time_seconds:.2f}s, "
        f"service {placements['server + 2 remote workers'].wall_time_seconds:.2f}s, "
        f"sharded {placements['4-shard engine'].wall_time_seconds:.2f}s, "
        f"pool {placements['4-shard engine + 4 shard workers'].wall_time_seconds:.2f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
