"""Remote shard worker (``repro-popsim worker --connect host:port``).

A worker is the shard runner generalised across machine boundaries: it
connects to a :class:`~repro.service.server.JobServer`, completes the
protocol-version/schema handshake (a version-skewed worker is rejected
before it can compute anything), then loops — receive one
:class:`~repro.orchestration.UnitPlan` envelope, execute it through the
*same* :func:`~repro.orchestration.execute_unit_plan` a fork-worker or
the serial path runs, send the JSON payload back.  All seed derivation
happened in the server's parent process when the plans were built;
the worker re-derives nothing, which is what makes its results
byte-identical to any other placement.

The plan executes on an executor thread so the connection stays
responsive (a ``shutdown`` frame or a dropped socket is noticed even
mid-unit); one unit runs at a time per worker — parallelism comes from
connecting more workers, and within a unit from the kernel-thread dial
(``UnitPlan.threads``).

Resilience behaviours (PR 8):

* **Heartbeats** — while a unit executes, the worker emits ``heartbeat``
  frames every ``heartbeat_interval`` seconds, so the server can
  distinguish *slow* (beating) from *dead* (silent past its liveness
  deadline) without waiting out the full unit timeout.
* **Reconnect with seeded backoff** — with ``reconnect_retries > 0`` a
  lost/garbled connection (including the server dropping this worker
  after a liveness expiry) is retried through a deterministic
  :class:`~repro.resilience.BackoffPolicy` instead of dying; a clean
  ``shutdown`` frame still ends the worker immediately, and a refused
  handshake (version skew) is never retried — that failure is permanent.
* **Stable identity** — the hello frame carries a ``worker`` id stable
  across reconnects, so the server's per-worker circuit breaker follows
  the worker, not the TCP connection.
* **Injectable seams** — ``transport_wrap`` wraps the post-handshake
  streams (the chaos engine's frame corruption/truncation/delay lives
  behind this), and ``unit_hook`` runs before each unit executes
  (crash/stall/slow/error injection).  Both default to no-ops; raising
  :class:`WorkerCrash` from the hook simulates an abrupt worker death.

A unit that raises is reported with a ``unit-error`` frame rather than
killing the worker: the server counts the failed attempt and re-queues
(bounded by its ``max_attempts``), so one poisoned unit cannot take the
whole pool down.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..resilience.backoff import BackoffPolicy
from .protocol import (
    DEFAULT_HEARTBEAT_INTERVAL,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServiceError,
    hello_frame,
    open_service_connection,
    read_frame,
    write_frame,
)

#: ``transport_wrap(reader, writer) -> (reader, writer)`` — applied after
#: the handshake so version negotiation itself is never perturbed.
TransportWrap = Callable[[Any, Any], Tuple[Any, Any]]

#: ``unit_hook(frame)`` — awaited before each unit executes.
UnitHook = Callable[[Dict[str, Any]], Awaitable[None]]


class WorkerCrash(Exception):
    """Raise from a ``unit_hook`` to simulate an abrupt worker death.

    The connection is abandoned mid-unit (no ``unit-error`` frame), which
    is what a SIGKILL'd or power-cycled worker looks like to the server.
    """


def default_worker_id() -> str:
    """A worker identity stable across reconnects of one process."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _payload_checksum(payload: Any) -> str:
    # Deferred import: keep the protocol-only import surface of this
    # module minimal (mirrors the runner import below).
    from ..orchestration.store import unit_checksum

    return unit_checksum(payload)


async def _execute_with_heartbeat(
    loop: asyncio.AbstractEventLoop,
    writer: asyncio.StreamWriter,
    unit_key: Any,
    plan: Any,
    heartbeat_interval: Optional[float],
    max_frame_bytes: int,
) -> Any:
    """Run one plan on an executor thread, heartbeating while it runs."""
    from ..orchestration import runner as _runner

    async def beat() -> None:
        try:
            while True:
                await asyncio.sleep(heartbeat_interval)
                await write_frame(
                    writer, {"type": "heartbeat", "unit": unit_key}, max_frame_bytes
                )
        except (OSError, ConnectionError, ProtocolError):
            # A dead socket surfaces on the result write; beacons are
            # best-effort by definition.
            pass

    beat_task = (
        asyncio.ensure_future(beat())
        if heartbeat_interval is not None and heartbeat_interval > 0
        else None
    )
    try:
        # Module-attribute lookup so tests can monkeypatch the executor;
        # runs on a thread to keep the socket serviced.
        return await loop.run_in_executor(None, _runner.execute_unit_plan, plan)
    finally:
        if beat_task is not None:
            beat_task.cancel()
            await asyncio.gather(beat_task, return_exceptions=True)


async def _worker_session(
    host: str,
    port: int,
    *,
    counter: List[int],
    max_units: Optional[int],
    worker_id: str,
    heartbeat_interval: Optional[float],
    transport_wrap: Optional[TransportWrap],
    unit_hook: Optional[UnitHook],
    max_frame_bytes: int,
) -> str:
    """One connection's unit-serving loop.

    Returns how the session ended: ``"shutdown"`` (explicit frame),
    ``"eof"`` (server closed the socket between frames) or ``"budget"``
    (``max_units`` reached).  Connection-level failures raise.
    """
    from ..orchestration import runner as _runner

    reader, writer = await open_service_connection(host, port, max_frame_bytes)
    try:
        await write_frame(writer, hello_frame("worker", worker=worker_id), max_frame_bytes)
        welcome = await read_frame(reader, max_frame_bytes)
        if welcome is None or welcome.get("type") != "welcome":
            reason = (welcome or {}).get("reason", "connection closed during handshake")
            raise ServiceError(f"server refused worker: {reason}")
        if transport_wrap is not None:
            reader, writer = transport_wrap(reader, writer)
        loop = asyncio.get_running_loop()
        while max_units is None or counter[0] < max_units:
            frame = await read_frame(reader, max_frame_bytes)
            if frame is None:
                return "eof"
            if frame.get("type") == "shutdown":
                return "shutdown"
            if frame.get("type") != "unit":
                raise ProtocolError(
                    f"unexpected frame {frame.get('type')!r}; expected unit"
                )
            plan = _runner.unit_plan_from_wire(frame["plan"])
            start = time.perf_counter()
            try:
                if unit_hook is not None:
                    await unit_hook(frame)
                payload = await _execute_with_heartbeat(
                    loop, writer, frame.get("unit"), plan, heartbeat_interval,
                    max_frame_bytes,
                )
            except (asyncio.CancelledError, WorkerCrash):
                raise
            except Exception as error:  # noqa: BLE001 — reported, not fatal
                await write_frame(
                    writer,
                    {
                        "type": "unit-error",
                        "unit": frame.get("unit"),
                        "error": f"{type(error).__name__}: {error}",
                    },
                    max_frame_bytes,
                )
                continue
            await write_frame(
                writer,
                {
                    "type": "result",
                    "unit": frame.get("unit"),
                    "payload": payload,
                    "sha256": _payload_checksum(payload),
                    "wall_time_seconds": time.perf_counter() - start,
                },
                max_frame_bytes,
            )
            counter[0] += 1
        return "budget"
    finally:
        with contextlib.suppress(Exception):
            writer.close()
        with contextlib.suppress(OSError, ConnectionError):
            await writer.wait_closed()


async def run_worker_async(
    host: str,
    port: int,
    *,
    max_units: Optional[int] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    reconnect_retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
    worker_id: Optional[str] = None,
    transport_wrap: Optional[TransportWrap] = None,
    unit_hook: Optional[UnitHook] = None,
) -> int:
    """Serve units until the server goes away; returns units completed.

    ``max_units`` bounds how many units this worker executes (across
    reconnects) before disconnecting cleanly; ``None`` serves until the
    server sends ``shutdown`` — or, with ``reconnect_retries == 0``,
    until the connection drops.  With ``reconnect_retries > 0`` a
    dropped, torn or garbled connection is retried with deterministic
    seeded backoff (``backoff``, default :class:`BackoffPolicy`); the
    retry budget counts *consecutive* failures and resets whenever a
    session is established.  A refused handshake raises immediately —
    version skew does not heal by retrying.
    """
    policy = backoff if backoff is not None else BackoffPolicy()
    identity = worker_id if worker_id is not None else default_worker_id()
    counter = [0]
    consecutive_failures = 0
    while True:
        try:
            ended = await _worker_session(
                host,
                port,
                counter=counter,
                max_units=max_units,
                worker_id=identity,
                heartbeat_interval=heartbeat_interval,
                transport_wrap=transport_wrap,
                unit_hook=unit_hook,
                max_frame_bytes=max_frame_bytes,
            )
        except (ProtocolError, OSError, ConnectionError, WorkerCrash):
            # Note the order: ProtocolError must be tried before its
            # ServiceError base below, or garbled frames would read as a
            # permanent handshake refusal.
            if consecutive_failures >= reconnect_retries:
                raise
            await asyncio.sleep(policy.delay(consecutive_failures))
            consecutive_failures += 1
            continue
        except ServiceError:
            raise  # handshake refused: permanent, never retried
        if ended in ("shutdown", "budget"):
            return counter[0]
        # EOF between frames: a drained server closes this way, but so
        # does a server that dropped us after a liveness expiry — with a
        # retry budget we treat it as reconnectable.
        if consecutive_failures >= reconnect_retries:
            return counter[0]
        await asyncio.sleep(policy.delay(consecutive_failures))
        consecutive_failures += 1


def run_worker(
    host: str,
    port: int,
    *,
    max_units: Optional[int] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    reconnect_retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
    worker_id: Optional[str] = None,
) -> int:
    """Synchronous wrapper around :func:`run_worker_async`."""
    return asyncio.run(
        run_worker_async(
            host,
            port,
            max_units=max_units,
            max_frame_bytes=max_frame_bytes,
            reconnect_retries=reconnect_retries,
            backoff=backoff,
            heartbeat_interval=heartbeat_interval,
            worker_id=worker_id,
        )
    )
