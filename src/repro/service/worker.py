"""Remote shard worker (``repro-popsim worker --connect host:port``).

A worker is the shard runner generalised across machine boundaries: it
connects to a :class:`~repro.service.server.JobServer`, completes the
protocol-version/schema handshake (a version-skewed worker is rejected
before it can compute anything), then loops — receive one
:class:`~repro.orchestration.UnitPlan` envelope, execute it through the
*same* :func:`~repro.orchestration.execute_unit_plan` a fork-worker or
the serial path runs, send the JSON payload back.  All seed derivation
happened in the server's parent process when the plans were built;
the worker re-derives nothing, which is what makes its results
byte-identical to any other placement.

The plan executes on an executor thread so the connection stays
responsive (a ``shutdown`` frame or a dropped socket is noticed even
mid-unit); one unit runs at a time per worker — parallelism comes from
connecting more workers, and within a unit from the kernel-thread dial
(``UnitPlan.threads``).

A unit that raises is reported with a ``unit-error`` frame rather than
killing the worker: the server counts the failed attempt and re-queues
(bounded by its ``max_attempts``), so one poisoned unit cannot take the
whole pool down.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    ServiceError,
    hello_frame,
    open_service_connection,
    read_frame,
    write_frame,
)


async def run_worker_async(
    host: str,
    port: int,
    *,
    max_units: Optional[int] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> int:
    """Serve units until the server goes away; returns units completed.

    ``max_units`` bounds how many units this worker executes before
    disconnecting cleanly (useful for tests and for recycling long-lived
    workers); ``None`` serves until the server closes the connection or
    sends ``shutdown``.
    """
    # Imported here so the module stays importable without the full
    # orchestration stack (e.g. for protocol-only tooling).
    from ..orchestration import runner as _runner

    reader, writer = await open_service_connection(host, port, max_frame_bytes)
    executed = 0
    try:
        await write_frame(writer, hello_frame("worker"), max_frame_bytes)
        welcome = await read_frame(reader, max_frame_bytes)
        if welcome is None or welcome.get("type") != "welcome":
            reason = (welcome or {}).get("reason", "connection closed during handshake")
            raise ServiceError(f"server refused worker: {reason}")
        loop = asyncio.get_running_loop()
        while max_units is None or executed < max_units:
            frame = await read_frame(reader, max_frame_bytes)
            if frame is None or frame.get("type") == "shutdown":
                break
            if frame.get("type") != "unit":
                raise ProtocolError(
                    f"unexpected frame {frame.get('type')!r}; expected unit"
                )
            plan = _runner.unit_plan_from_wire(frame["plan"])
            start = time.perf_counter()
            try:
                # Module-attribute lookup so tests can monkeypatch the
                # executor; runs on a thread to keep the socket serviced.
                payload = await loop.run_in_executor(
                    None, _runner.execute_unit_plan, plan
                )
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 — reported, not fatal
                await write_frame(
                    writer,
                    {
                        "type": "unit-error",
                        "unit": frame.get("unit"),
                        "error": f"{type(error).__name__}: {error}",
                    },
                    max_frame_bytes,
                )
                continue
            await write_frame(
                writer,
                {
                    "type": "result",
                    "unit": frame.get("unit"),
                    "payload": payload,
                    "wall_time_seconds": time.perf_counter() - start,
                },
                max_frame_bytes,
            )
            executed += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    return executed


def run_worker(
    host: str,
    port: int,
    *,
    max_units: Optional[int] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> int:
    """Synchronous wrapper around :func:`run_worker_async`."""
    return asyncio.run(
        run_worker_async(host, port, max_units=max_units, max_frame_bytes=max_frame_bytes)
    )
