"""Wire protocol of the simulation service.

One frame = one JSON object on one ``\\n``-terminated line.  The format
is deliberately primitive: every value the service moves — scenario
configs, unit plans, unit payloads — is already JSON-native by
construction (that is what makes a :class:`~repro.orchestration.UnitPlan`
shippable at all), so framing reduces to line splitting, and any peer
(including ``netcat`` while debugging) can speak it.

Frame taxonomy (``type`` field):

===================  =========  ==============================================
frame                direction  meaning
===================  =========  ==============================================
``hello``            peer → S   handshake: role + protocol/schema/package
                                (+ optional stable ``worker`` id)
``welcome``          S → peer   handshake accepted; carries the server's
                                bound ``host``/``port`` (meaningful when
                                the server was started on port 0)
``reject``           S → peer   handshake or submit refused (``reason``)
``submit``           client→S   run a scenario (``config`` or ``name`` +
                                ``overrides``; optional ``threads``, ``cache``)
``accepted``         S→client   job admitted (``job_id``, ``total_units``,
                                ``content_hash``, echoed ``config``)
``event``            S→client   one unit changed state (``unit``, ``state`` ∈
                                queued/running/done/failed/cached, ``attempts``,
                                ``wall_time_seconds``; ``payload`` on
                                done/cached)
``job-done``         S→client   all units accounted for (``cache_hits``,
                                ``executed_units``, ``workers``,
                                ``wall_time_seconds``)
``job-failed``       S→client   a unit exhausted its retry budget (``reason``)
``unit``             S→worker   execute one plan (``unit``, ``plan``)
``heartbeat``        worker→S   liveness beacon while a unit executes
                                (``unit``); resets the server's per-unit
                                liveness deadline
``result``           worker→S   unit finished (``unit``, ``payload``,
                                ``wall_time_seconds``, ``sha256`` payload
                                checksum)
``unit-error``       worker→S   unit raised (``unit``, ``error``)
``shutdown``         S→worker   server is draining; disconnect cleanly
``error``            S → peer   protocol violation, connection will close
===================  =========  ==============================================

Versioning: the ``hello``/``welcome`` handshake carries the protocol
version, the result schema version and the package version, and the
server rejects any mismatch.  Byte-identity across worker placements is
only guaranteed when every participant runs the same code — the scenario
content hash already embeds the package version, so a version-skewed
worker would compute results the store could never serve; rejecting it
at handshake time turns a silent wrong-answer hazard into a loud
connection error.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from .. import __version__
from ..orchestration.scenario import RESULT_SCHEMA_VERSION

#: Bump on any incompatible change to the frame vocabulary above.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's encoded size.  Large enough for any sane
#: unit payload (trial records are a few dozen bytes each), small enough
#: to bound the memory a malicious or broken peer can pin per connection.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: How long a freshly accepted connection gets to complete its handshake.
HANDSHAKE_TIMEOUT = 10.0

#: How often a worker emits ``heartbeat`` frames while a unit executes.
#: The server's liveness deadline should be a comfortable multiple of
#: this (missing several beats = dead, one delayed beat = fine).
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default server-side liveness deadline: a worker mid-unit that sends
#: no frame (heartbeat or result) for this long is written off without
#: waiting for the full unit timeout.
DEFAULT_LIVENESS_TIMEOUT = 10.0


class ServiceError(RuntimeError):
    """A service operation failed (submit rejected, job failed, timeout)."""


class ProtocolError(ServiceError):
    """The peer violated the wire protocol (malformed/oversized frame)."""


def encode_frame(frame: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One frame as its wire bytes (compact JSON + newline)."""
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > max_bytes:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {max_bytes}-byte limit"
        )
    return data


async def write_frame(
    writer: asyncio.StreamWriter,
    frame: Dict[str, Any],
    max_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Send one frame and flush it."""
    writer.write(encode_frame(frame, max_bytes=max_bytes))
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF between frames.

    Raises :class:`ProtocolError` on an oversized line (the stream limit
    the connection was opened with backs this — see
    :func:`open_service_connection`), a mid-frame disconnect, bytes that
    are not JSON, or JSON that is not an object with a ``type``.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(
            f"oversized frame (line exceeds the {max_bytes}-byte limit)"
        ) from error
    if len(line) > max_bytes:
        raise ProtocolError(
            f"oversized frame ({len(line)} bytes > {max_bytes}-byte limit)"
        )
    try:
        frame = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from error
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("malformed frame: expected an object with a 'type'")
    return frame


async def open_service_connection(host: str, port: int, max_bytes: int = MAX_FRAME_BYTES):
    """``asyncio.open_connection`` with the stream limit sized for frames."""
    return await asyncio.open_connection(host, port, limit=max_bytes + 1024)


def hello_frame(role: str, worker: Optional[str] = None) -> Dict[str, Any]:
    """The handshake a client or worker opens its connection with.

    ``worker`` is an optional stable identity for worker connections;
    the server keys its per-worker circuit breaker on it, so a worker
    that reconnects under the same name inherits its quarantine state
    instead of resetting it.
    """
    frame = {
        "type": "hello",
        "role": role,
        "protocol": PROTOCOL_VERSION,
        "schema": RESULT_SCHEMA_VERSION,
        "package": __version__,
    }
    if worker is not None:
        frame["worker"] = worker
    return frame


def handshake_mismatch(frame: Dict[str, Any]) -> Optional[str]:
    """Why a ``hello`` frame is unacceptable, or ``None`` if it matches."""
    if frame.get("type") != "hello":
        return f"expected a hello frame, got {frame.get('type')!r}"
    if frame.get("role") not in ("client", "worker"):
        return f"unknown role {frame.get('role')!r}"
    if frame.get("protocol") != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: peer speaks {frame.get('protocol')!r}, "
            f"server speaks {PROTOCOL_VERSION}"
        )
    if frame.get("schema") != RESULT_SCHEMA_VERSION:
        return (
            f"result schema mismatch: peer has {frame.get('schema')!r}, "
            f"server has {RESULT_SCHEMA_VERSION}"
        )
    if frame.get("package") != __version__:
        return (
            f"package version mismatch: peer runs {frame.get('package')!r}, "
            f"server runs {__version__!r} (byte-identity requires equal code)"
        )
    return None


def parse_endpoint(value: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` (IPv6 hosts use ``[...]``)."""
    text = value.strip()
    if text.startswith("["):  # [v6]:port
        host, _, rest = text[1:].partition("]")
        if not rest.startswith(":"):
            raise ValueError(f"malformed endpoint {value!r}; expected [host]:port")
        port_text = rest[1:]
    else:
        host, separator, port_text = text.rpartition(":")
        if not separator:
            raise ValueError(f"malformed endpoint {value!r}; expected host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"malformed endpoint {value!r}; port must be an integer")
    if not host or not 0 < port < 65536:
        raise ValueError(f"malformed endpoint {value!r}; expected host:port")
    return host, port
