"""Streaming client (``repro-popsim submit`` / :class:`ServiceClient`).

The client submits one scenario to a job server, consumes the per-unit
event stream (``queued → running → done/failed``, plus ``cached`` for
units served straight from the result store), and reassembles the exact
:class:`~repro.orchestration.ScenarioResult` a local
:func:`~repro.orchestration.run_scenario` produces: unit payloads stream
back as they complete and are folded in global trial order through the
same :func:`~repro.orchestration.aggregate_unit_payloads` the local
runner uses, so ``result.canonical_json()`` is byte-identical to an
in-process run — the caller cannot tell (from the result) whether a
measurement ran in-process, on a fork-worker, or three retries deep on a
remote machine.

Progress streaming is push-based: pass ``on_event`` to observe every
state transition as the server emits it (the CLI uses this for live
``[running] p00-s00-t0003 (attempt 1)`` lines) instead of polling for
completion.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, Mapping, Optional

from ..orchestration.runner import (
    ScenarioResult,
    aggregate_unit_payloads,
    build_work_units,
)
from ..orchestration.scenario import Scenario
from ..resilience.backoff import BackoffPolicy
from .protocol import (
    MAX_FRAME_BYTES,
    ServiceError,
    hello_frame,
    open_service_connection,
    read_frame,
    write_frame,
)

#: Signature of the optional progress callback: one server event frame.
EventCallback = Callable[[Dict[str, Any]], None]


class ServiceClient:
    """Submit scenarios to a running job server and stream the results.

    Parameters
    ----------
    host / port:
        The server endpoint (``repro-popsim serve`` prints it on start).
    timeout:
        Optional overall deadline (seconds) per submission, covering
        connect, handshake, execution and streaming.  On expiry the
        connection is torn down and :class:`ServiceError` raised — the
        server notices the disconnect and abandons the job (finished
        units stay in its store, so a retry resumes rather than
        recomputes).
    connect_retries / backoff:
        With ``connect_retries > 0``, a refused/unreachable TCP connect
        is retried that many times with deterministic seeded backoff
        (``backoff``, default :class:`BackoffPolicy`) before giving up —
        useful when the client races the server's startup.  Handshake
        rejections (version skew, draining) are never retried.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        connect_retries: int = 0,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self.connect_retries = int(connect_retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy()

    # ------------------------------------------------------------------
    # Sync entry points
    # ------------------------------------------------------------------
    def submit(
        self,
        scenario: Optional[Scenario] = None,
        *,
        name: Optional[str] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        cache: bool = True,
        on_event: Optional[EventCallback] = None,
    ) -> ScenarioResult:
        """Run one scenario on the server; blocks until the result is in.

        Pass either a full ``scenario`` object or a registered ``name``
        (plus CLI-style ``overrides``) — name resolution then happens on
        the *server*, against its registry.
        """
        return asyncio.run(
            self.submit_async(
                scenario, name=name, overrides=overrides, cache=cache, on_event=on_event
            )
        )

    # ------------------------------------------------------------------
    # Async implementation
    # ------------------------------------------------------------------
    async def submit_async(
        self,
        scenario: Optional[Scenario] = None,
        *,
        name: Optional[str] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        cache: bool = True,
        on_event: Optional[EventCallback] = None,
    ) -> ScenarioResult:
        if (scenario is None) == (name is None):
            raise ValueError("pass exactly one of scenario= or name=")
        try:
            return await asyncio.wait_for(
                self._submit(scenario, name, overrides, cache, on_event),
                timeout=self.timeout,
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                f"submission timed out after {self.timeout:g}s "
                f"(server {self.host}:{self.port})"
            ) from None

    async def _submit(
        self,
        scenario: Optional[Scenario],
        name: Optional[str],
        overrides: Optional[Mapping[str, Any]],
        cache: bool,
        on_event: Optional[EventCallback],
    ) -> ScenarioResult:
        start = time.perf_counter()
        reader, writer = await self._connect_with_retry()
        try:
            await write_frame(writer, hello_frame("client"), self.max_frame_bytes)
            welcome = await self._read_expected(reader)
            if welcome.get("type") != "welcome":
                raise ServiceError(
                    f"server refused client: {welcome.get('reason', welcome.get('type'))}"
                )
            submit: Dict[str, Any] = {"type": "submit", "cache": bool(cache)}
            if scenario is not None:
                submit["config"] = scenario.config_dict()
                # The execution dials are excluded from the canonical
                # config (they never change measured values), so they
                # travel as explicit frame keys instead.
                if scenario.threads is not None:
                    submit["threads"] = scenario.threads
                if scenario.shards is not None:
                    submit["shards"] = scenario.shards
                if scenario.shard_workers is not None:
                    submit["shard_workers"] = scenario.shard_workers
            else:
                submit["name"] = name
                if overrides:
                    submit["overrides"] = dict(overrides)
            await write_frame(writer, submit, self.max_frame_bytes)
            accepted = await self._read_expected(reader)
            if accepted.get("type") == "reject":
                raise ServiceError(f"submission rejected: {accepted.get('reason')}")
            if accepted.get("type") != "accepted":
                raise ServiceError(
                    f"unexpected server reply {accepted.get('type')!r}"
                )
            # The server echoes the resolved canonical config, which is
            # how name-based submissions learn the scenario they ran.
            resolved = (
                scenario
                if scenario is not None
                else Scenario.from_config(accepted["config"])
            )

            payloads: Dict[str, Dict[str, Any]] = {}
            stats: Dict[str, Any] = {}
            while True:
                frame = await self._read_expected(reader)
                frame_type = frame.get("type")
                if frame_type == "event":
                    if on_event is not None:
                        on_event(frame)
                    if frame.get("state") in ("done", "cached"):
                        payloads[str(frame["unit"])] = frame["payload"]
                elif frame_type == "job-done":
                    stats = frame
                    break
                elif frame_type == "job-failed":
                    raise ServiceError(f"job failed: {frame.get('reason')}")
                else:
                    raise ServiceError(f"unexpected server frame {frame_type!r}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

        units = build_work_units(resolved)
        missing = [unit.key for unit in units if unit.key not in payloads]
        if missing:
            raise ServiceError(
                f"server reported completion but {len(missing)} unit payload(s) "
                f"never arrived (first: {missing[0]})"
            )
        sweeps = aggregate_unit_payloads(resolved, units, payloads)
        return ScenarioResult(
            scenario=resolved,
            sweeps=sweeps,
            total_units=len(units),
            cache_hits=int(stats.get("cache_hits", 0)),
            executed_units=int(stats.get("executed_units", 0)),
            jobs=int(stats.get("workers", 0)),
            wall_time_seconds=time.perf_counter() - start,
        )

    async def _connect_with_retry(self):
        """TCP connect, retried with seeded backoff when configured."""
        attempt = 0
        while True:
            try:
                return await open_service_connection(
                    self.host, self.port, self.max_frame_bytes
                )
            except OSError as error:
                if attempt >= self.connect_retries:
                    raise ServiceError(
                        f"cannot reach job server at {self.host}:{self.port}: {error}"
                    ) from error
                await asyncio.sleep(self.backoff.delay(attempt))
                attempt += 1

    async def _read_expected(self, reader: asyncio.StreamReader) -> Dict[str, Any]:
        """Next frame, treating EOF mid-conversation as a hard error."""
        frame = await read_frame(reader, self.max_frame_bytes)
        if frame is None:
            raise ServiceError("server closed the connection mid-conversation")
        return frame


def submit_scenario(
    host: str,
    port: int,
    scenario: Scenario,
    *,
    cache: bool = True,
    timeout: Optional[float] = None,
    on_event: Optional[EventCallback] = None,
    connect_retries: int = 0,
) -> ScenarioResult:
    """One-shot convenience wrapper around :class:`ServiceClient`."""
    client = ServiceClient(
        host, port, timeout=timeout, connect_retries=connect_retries
    )
    return client.submit(scenario, cache=cache, on_event=on_event)
