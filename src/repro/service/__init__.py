"""Simulation-as-a-service: job server, remote workers, streaming client.

This package turns the single-box orchestrator
(:mod:`repro.orchestration`) into a long-lived network service:

* :mod:`repro.service.protocol` — the line-delimited-JSON wire protocol
  (framing, size limits, version handshake) shared by all three roles,
* :mod:`repro.service.server` — :class:`~repro.service.server.JobServer`,
  an asyncio front-end that validates scenario requests against the
  registry, serves cache hits straight from the content-hash result
  store, and dispatches pending :class:`~repro.orchestration.UnitPlan`\\ s
  to a pool of local and remote workers with per-unit timeout, bounded
  retry and graceful drain,
* :mod:`repro.service.worker` — the remote worker loop
  (``repro-popsim worker --connect host:port``): executes shipped unit
  plans through exactly the same :func:`~repro.orchestration.execute_unit_plan`
  a fork-worker runs,
* :mod:`repro.service.client` — :class:`~repro.service.client.ServiceClient`
  (``repro-popsim submit``): streams per-unit progress events and
  reassembles the same :class:`~repro.orchestration.ScenarioResult` a
  local :func:`~repro.orchestration.run_scenario` produces.

The design invariant carries over from the orchestrator unchanged: a
scenario run through the server — with any mix of local and remote
workers, cache states, retries and worker failures — is byte-identical
(:meth:`ScenarioResult.canonical_json`) to a serial in-process run.
See ``docs/ORCHESTRATION.md`` § "Service mode".
"""

from .client import ServiceClient, submit_scenario
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
)
from .server import JobServer
from .worker import run_worker

__all__ = [
    "JobServer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "run_worker",
    "submit_scenario",
]
