"""The asyncio job server (``repro-popsim serve``).

:class:`JobServer` is the front-end of the simulation service: it
accepts client submissions, validates them against the scenario
registry, decomposes them into the orchestrator's
:class:`~repro.orchestration.UnitPlan` envelopes via the *same*
``build_work_units``/``build_unit_plans`` a local run uses, serves cache
hits straight from the content-hash result store, and dispatches the
misses to a pool of workers — in-process local workers
(``local_workers=N``) and remote workers connected over the wire
(``repro-popsim worker --connect``), interchangeably.

Robustness model
----------------

* **Per-unit timeout** — a dispatched unit that produces no reply within
  ``unit_timeout`` seconds counts as a failed attempt; the worker
  connection is dropped (its eventual late reply would be unreadable
  anyway) and the unit is re-queued.
* **Liveness deadlines** — workers heartbeat while a unit executes; a
  worker that sends *no* frame for ``liveness_timeout`` seconds is
  written off immediately instead of waiting out the full unit timeout.
  Slow-but-alive workers (still beating) get the whole unit budget.
* **Per-worker circuit breaker** — a worker whose dispatches keep
  failing (``breaker_threshold`` consecutive times) is quarantined for
  ``breaker_cooldown`` seconds, then probed with a single unit before
  being readmitted.  Breakers are keyed on the stable ``worker`` id from
  the hello frame, so a flapping worker cannot reset its own quarantine
  by reconnecting.
* **Graceful degradation** — with ``degrade_to_local=True`` a server
  whose remote pool has emptied (every worker gone or quarantined) while
  units are queued executes them in-process rather than letting jobs
  hang; results are byte-identical either way, so degradation changes
  latency only.
* **Payload integrity** — result frames carry a sha256 checksum of their
  payload; a mismatch (corruption in flight) is a failed attempt, never
  an accepted result.
* **Bounded retry** — each unit gets ``max_attempts`` dispatches (worker
  disconnects, timeouts and execution errors all consume one).  An
  exhausted unit fails its whole job with a ``job-failed`` frame; other
  jobs are unaffected.
* **Idempotent completion** — a unit can be completed at most once per
  job (late duplicates after a timeout re-queue are discarded), and
  result-store writes are guarded by the store's per-unit ``O_EXCL``
  lockfile, so two workers racing on a re-queued unit can never tear the
  stored result.
* **Graceful drain** — :meth:`drain` (wired to ``SIGTERM``/``SIGINT`` by
  the CLI) stops admitting new work, waits for in-flight jobs, tells
  idle workers to disconnect, then closes.  Because every finished unit
  is persisted the moment it completes, a *hard* kill loses at most the
  in-flight units: a restarted server resumes the rest from the store.

Determinism: the server never re-derives a seed — unit plans are built
once from the submitted scenario config exactly as the local runner
builds them, workers execute ``execute_unit_plan`` on the shipped
envelope, and the client aggregates payloads in global trial order.
Worker placement, retries, cache state and event interleaving therefore
change *where and when* a unit executes, never any byte of the canonical
result.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from .. import __version__
from ..orchestration.registry import get_scenario
from ..orchestration.runner import (
    UnitPlan,
    build_unit_plans,
    build_work_units,
    execute_unit_plan,
    unit_plan_to_wire,
)
from ..orchestration.scenario import (
    RESULT_SCHEMA_VERSION,
    Scenario,
    ScenarioError,
)
from ..orchestration.store import ResultStore, unit_checksum, valid_unit_payload
from ..resilience.breaker import CircuitBreaker
from .protocol import (
    DEFAULT_LIVENESS_TIMEOUT,
    HANDSHAKE_TIMEOUT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    handshake_mismatch,
    read_frame,
    write_frame,
)


class _UnitTask:
    """One unit's dispatch state inside one job."""

    __slots__ = ("job", "unit_key", "n_trials", "plan", "attempts", "state")

    def __init__(self, job: "_Job", plan: UnitPlan) -> None:
        self.job = job
        self.unit_key = plan.unit_key
        self.n_trials = plan.trial_hi - plan.trial_lo
        self.plan = plan
        self.attempts = 0
        self.state = "queued"  # queued | running | done | failed


class _Job:
    """One admitted submission and its streaming client connection."""

    def __init__(
        self,
        job_id: str,
        scenario: Scenario,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        use_cache: bool,
    ) -> None:
        self.job_id = job_id
        self.scenario = scenario
        self.writer = writer
        self.write_lock = write_lock
        self.use_cache = use_cache
        self.pending: Set[str] = set()
        self.cache_hits = 0
        self.executed = 0
        self.failed_reason: Optional[str] = None
        self.cancelled = False
        self.done = asyncio.Event()
        self.started = time.monotonic()

    @property
    def finished(self) -> bool:
        return self.done.is_set()


class JobServer:
    """Long-lived scenario-execution service over asyncio sockets.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` picks a free port; :meth:`start`
        returns the bound ``(host, port)``.
    cache / cache_dir / store:
        Result-store wiring, same semantics as
        :func:`~repro.orchestration.run_scenario`: with ``cache`` true
        (default) finished units are read from and written to the
        content-hash store, so repeat submissions are served without
        executing anything and a restarted server resumes where the
        previous one stopped.
    local_workers:
        In-process workers executing unit plans on the server's own
        machine (each occupies one executor thread while running a
        unit).  Remote workers can connect regardless; the two are
        interchangeable mid-job.
    unit_timeout:
        Seconds one dispatched unit may take on a remote worker before
        the attempt is written off and the unit re-queued.
    max_attempts:
        Dispatch budget per unit before its job fails.
    max_frame_bytes:
        Per-connection frame size ceiling (malformed peers are cut off).
    liveness_timeout:
        Seconds a mid-unit worker may stay *silent* (no heartbeat, no
        result) before being written off; ``None`` disables the liveness
        check and falls back to the plain unit timeout.
    breaker_threshold / breaker_cooldown:
        Per-worker circuit breaker: consecutive dispatch failures that
        trip quarantine, and how long quarantine lasts before the worker
        is probed with a single unit.
    degrade_to_local / degrade_after:
        With ``degrade_to_local`` true, a watchdog polling every
        ``degrade_after`` seconds executes queued units in-process
        whenever no worker (local, or remote with a non-open breaker) is
        available — jobs make progress with an empty pool instead of
        hanging.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: bool = True,
        cache_dir: Union[str, Path, None] = None,
        store: Optional[ResultStore] = None,
        local_workers: int = 0,
        unit_timeout: float = 600.0,
        max_attempts: int = 3,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        liveness_timeout: Optional[float] = DEFAULT_LIVENESS_TIMEOUT,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        degrade_to_local: bool = False,
        degrade_after: float = 1.0,
    ) -> None:
        if local_workers < 0:
            raise ValueError("local_workers must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if unit_timeout <= 0:
            raise ValueError("unit_timeout must be positive")
        if liveness_timeout is not None and liveness_timeout <= 0:
            raise ValueError("liveness_timeout must be positive (or None)")
        if degrade_after <= 0:
            raise ValueError("degrade_after must be positive")
        self.host = host
        self.port = port
        self.local_workers = int(local_workers)
        self.unit_timeout = float(unit_timeout)
        self.max_attempts = int(max_attempts)
        self.max_frame_bytes = int(max_frame_bytes)
        self.liveness_timeout = (
            None if liveness_timeout is None else float(liveness_timeout)
        )
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.degrade_to_local = bool(degrade_to_local)
        self.degrade_after = float(degrade_after)
        self._store: Optional[ResultStore] = None
        if cache:
            self._store = store if store is not None else ResultStore(cache_dir)
        self._queue: "asyncio.Queue[Optional[_UnitTask]]" = asyncio.Queue()
        self._jobs: Dict[str, _Job] = {}
        self._job_counter = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._local_tasks: List["asyncio.Task"] = []
        self._worker_writers: Set[asyncio.StreamWriter] = set()
        # Breakers are keyed by stable worker identity (hello frame's
        # ``worker`` field, peername as fallback) so reconnecting under
        # the same name inherits quarantine state; the writer map exists
        # only so availability counting can see each live connection's
        # breaker.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._writer_breakers: Dict[asyncio.StreamWriter, CircuitBreaker] = {}
        self._watchdog_task: Optional["asyncio.Task"] = None
        self._draining = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple:
        """Bind, start accepting connections; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=self.max_frame_bytes + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for index in range(self.local_workers):
            self._local_tasks.append(
                asyncio.get_running_loop().create_task(self._run_local_worker())
            )
        if self.degrade_to_local:
            self._watchdog_task = asyncio.get_running_loop().create_task(
                self._degrade_watchdog()
            )
        return self.host, self.port

    async def stop(self) -> None:
        """Shut down now: close the listener, cancel every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        extra = [self._watchdog_task] if self._watchdog_task is not None else []
        for task in list(self._conn_tasks) + self._local_tasks + extra:
            task.cancel()
        await asyncio.gather(
            *self._conn_tasks, *self._local_tasks, *extra, return_exceptions=True
        )
        self._conn_tasks.clear()
        self._local_tasks.clear()
        self._watchdog_task = None
        self._closed.set()

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: no new work, finish in-flight jobs, stop.

        New submissions and handshakes are rejected with a ``draining``
        reason the moment this is called; every already-admitted job runs
        to completion (its finished units persisting as they land), idle
        workers are told to disconnect, then the server closes.  With a
        ``timeout``, jobs still running when it expires are cut off (their
        finished units are already in the store, so nothing completed is
        lost).
        """
        self._draining = True
        active = [job for job in self._jobs.values() if not job.finished]
        if active:
            _, still_pending = await asyncio.wait(
                [asyncio.ensure_future(job.done.wait()) for job in active],
                timeout=timeout,
            )
            for waiter in still_pending:
                waiter.cancel()
        for writer in list(self._worker_writers):
            with contextlib.suppress(Exception):
                await write_frame(writer, {"type": "shutdown"}, self.max_frame_bytes)
        await self.stop()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop`/:meth:`drain` completes."""
        await self._closed.wait()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                hello = await asyncio.wait_for(
                    read_frame(reader, self.max_frame_bytes), HANDSHAKE_TIMEOUT
                )
            except (ProtocolError, asyncio.TimeoutError) as error:
                await self._best_effort(writer, {"type": "error", "reason": str(error)})
                return
            if hello is None:
                return
            reason = handshake_mismatch(hello)
            if reason is None and self._draining:
                reason = "server is draining"
            if reason is not None:
                await self._best_effort(writer, {"type": "reject", "reason": reason})
                return
            await write_frame(
                writer,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "schema": RESULT_SCHEMA_VERSION,
                    "package": __version__,
                    # The *bound* address: with port 0 this is where the
                    # ephemeral listener actually landed.
                    "host": self.host,
                    "port": self.port,
                },
                self.max_frame_bytes,
            )
            if hello["role"] == "worker":
                await self._serve_worker(reader, writer, hello)
            else:
                await self._serve_client(reader, writer)
        except ProtocolError as error:
            await self._best_effort(writer, {"type": "error", "reason": str(error)})
        except (OSError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; ending the task
            # cancelled would make asyncio.streams' connection_made
            # callback log a spurious traceback, so finish normally (the
            # transport closes below either way).
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    @staticmethod
    async def _best_effort(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        with contextlib.suppress(Exception):
            await write_frame(writer, frame)

    # ------------------------------------------------------------------
    # Client side: admission, cache, event streaming
    # ------------------------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        next_frame: Optional["asyncio.Task"] = None
        try:
            while True:
                if next_frame is None:
                    next_frame = asyncio.ensure_future(
                        read_frame(reader, self.max_frame_bytes)
                    )
                frame = await next_frame
                next_frame = None
                if frame is None:
                    return
                if frame.get("type") != "submit":
                    raise ProtocolError(
                        f"unexpected frame {frame.get('type')!r}; expected submit"
                    )
                job = await self._admit(frame, writer, write_lock)
                if job is None:
                    continue
                self._jobs[job.job_id] = job
                try:
                    await self._launch(job)
                    # Wait for the job while watching the connection: a
                    # client that disconnects mid-job abandons it (units
                    # already executing still persist to the store).
                    next_frame = asyncio.ensure_future(
                        read_frame(reader, self.max_frame_bytes)
                    )
                    done_wait = asyncio.ensure_future(job.done.wait())
                    finished, _ = await asyncio.wait(
                        {next_frame, done_wait}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if done_wait not in finished:
                        job.cancelled = True
                        job.done.set()
                        done_wait.cancel()
                        frame = await next_frame  # surfaces disconnects/errors
                        next_frame = None
                        if frame is not None:
                            raise ProtocolError(
                                f"unexpected frame {frame.get('type')!r} mid-job"
                            )
                        return
                    if job.failed_reason is not None:
                        await self._send(
                            job,
                            {
                                "type": "job-failed",
                                "job_id": job.job_id,
                                "reason": job.failed_reason,
                            },
                        )
                    else:
                        await self._send(
                            job,
                            {
                                "type": "job-done",
                                "job_id": job.job_id,
                                "total_units": job.cache_hits + job.executed,
                                "cache_hits": job.cache_hits,
                                "executed_units": job.executed,
                                "workers": len(self._worker_writers)
                                + len(self._local_tasks),
                                "wall_time_seconds": time.monotonic() - job.started,
                            },
                        )
                finally:
                    self._jobs.pop(job.job_id, None)
        finally:
            if next_frame is not None:
                next_frame.cancel()
                with contextlib.suppress(Exception):
                    await next_frame

    async def _admit(
        self,
        frame: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> Optional[_Job]:
        """Validate one submit frame; reply ``accepted`` or ``reject``."""
        try:
            if frame.get("config") is not None:
                scenario = Scenario.from_config(frame["config"])
            elif frame.get("name"):
                scenario = get_scenario(str(frame["name"]))
                overrides = frame.get("overrides") or {}
                if overrides:
                    scenario = scenario.with_overrides(**overrides)
            else:
                raise ScenarioError("submit needs a scenario 'config' or 'name'")
            if frame.get("threads") is not None:
                scenario = scenario.with_overrides(threads=int(frame["threads"]))
            if frame.get("shards") is not None:
                scenario = scenario.with_overrides(shards=int(frame["shards"]))
            if frame.get("shard_workers") is not None:
                scenario = scenario.with_overrides(
                    shard_workers=int(frame["shard_workers"])
                )
            scenario.validate()
        except (ScenarioError, KeyError, TypeError, ValueError) as error:
            await self._best_effort(writer, {"type": "reject", "reason": str(error)})
            return None
        if self._draining:
            await self._best_effort(
                writer, {"type": "reject", "reason": "server is draining"}
            )
            return None
        self._job_counter += 1
        job = _Job(
            job_id=f"job-{self._job_counter:06d}",
            scenario=scenario,
            writer=writer,
            write_lock=write_lock,
            use_cache=bool(frame.get("cache", True)) and self._store is not None,
        )
        units = build_work_units(scenario)
        job.pending = {unit.key for unit in units}
        await self._send(
            job,
            {
                "type": "accepted",
                "job_id": job.job_id,
                "total_units": len(units),
                "content_hash": scenario.content_hash(),
                "config": scenario.config_dict(),
            },
        )
        return job

    async def _launch(self, job: _Job) -> None:
        """Serve cache hits, queue the rest as dispatchable unit tasks."""
        units = build_work_units(job.scenario)
        misses = []
        for unit in units:
            stored = (
                self._store.load_unit(job.scenario, unit.key, unit.n_trials)
                if job.use_cache and self._store is not None
                else None
            )
            if stored is not None:
                job.cache_hits += 1
                job.pending.discard(unit.key)
                await self._send(
                    job,
                    {
                        "type": "event",
                        "job_id": job.job_id,
                        "unit": unit.key,
                        "state": "cached",
                        "attempts": 0,
                        "payload": stored,
                    },
                )
            else:
                misses.append(unit)
        if not job.pending:
            job.done.set()
            return
        for plan in build_unit_plans(job.scenario, misses):
            task = _UnitTask(job, plan)
            await self._send_event(task, "queued")
            self._queue.put_nowait(task)

    async def _send(self, job: _Job, frame: Dict[str, Any]) -> None:
        """Stream one frame to the job's client; a dead client cancels it."""
        if job.cancelled:
            return
        try:
            async with job.write_lock:
                await write_frame(job.writer, frame, self.max_frame_bytes)
        except (OSError, ConnectionError, ProtocolError):
            job.cancelled = True
            job.done.set()

    async def _send_event(self, task: _UnitTask, state: str, **extra: Any) -> None:
        frame = {
            "type": "event",
            "job_id": task.job.job_id,
            "unit": task.unit_key,
            "state": state,
            "attempts": task.attempts,
        }
        frame.update(extra)
        await self._send(task.job, frame)

    # ------------------------------------------------------------------
    # Dispatch: shared by local and remote workers
    # ------------------------------------------------------------------
    async def _next_task(self) -> Optional[_UnitTask]:
        """The next dispatchable unit (skips units of finished jobs)."""
        while True:
            task = await self._queue.get()
            if task is None:
                return None
            if task.state in ("done", "failed") or task.job.finished:
                continue
            return task

    async def _unit_finished(
        self, task: _UnitTask, payload: Any, wall_time: float
    ) -> bool:
        """Record one completed unit (idempotent; persists before emitting).

        Returns whether the payload was accepted — ``False`` only for an
        invalid payload (which is counted as a failed attempt here); the
        caller uses the verdict to feed its circuit breaker.
        """
        if task.state == "done":
            return True  # late duplicate after a timeout re-queue
        if not valid_unit_payload(payload, task.unit_key, task.n_trials):
            await self._attempt_failed(task, "worker returned an invalid payload")
            return False
        task.state = "done"
        job = task.job
        if job.use_cache and self._store is not None:
            # Lockfile-guarded and content-addressed: concurrent writers
            # of the same unit are harmless (identical bytes, one winner).
            self._store.save_unit(job.scenario, task.unit_key, payload)
        if job.finished:
            return True  # job failed/abandoned meanwhile; kept only for the store
        job.executed += 1
        await self._send_event(
            task, "done", payload=payload, wall_time_seconds=wall_time
        )
        job.pending.discard(task.unit_key)
        if not job.pending:
            job.done.set()
        return True

    async def _attempt_failed(self, task: _UnitTask, reason: str) -> None:
        """Re-queue a failed dispatch, or fail the job once retries run out."""
        if task.state in ("done", "failed") or task.job.finished:
            return
        if task.attempts >= self.max_attempts:
            task.state = "failed"
            await self._send_event(task, "failed", error=reason)
            job = task.job
            job.failed_reason = (
                f"unit {task.unit_key} failed after {task.attempts} attempts: {reason}"
            )
            job.done.set()
        else:
            task.state = "queued"
            await self._send_event(task, "queued", error=reason)
            self._queue.put_nowait(task)

    def _breaker_for(
        self, hello: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> CircuitBreaker:
        """The breaker keyed by this worker's stable identity."""
        label = hello.get("worker")
        if not isinstance(label, str) or not label:
            peer = writer.get_extra_info("peername")
            label = f"anon-{peer[0]}:{peer[1]}" if peer else "anon"
        return self._breakers.setdefault(
            label,
            CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                cooldown_seconds=self.breaker_cooldown,
            ),
        )

    async def _await_reply(
        self, reader: asyncio.StreamReader, task: _UnitTask
    ) -> Dict[str, Any]:
        """The dispatched unit's reply frame, under both deadlines.

        Heartbeat frames reset the liveness window; ``result`` /
        ``unit-error`` frames for *other* units (late replies from before
        a timeout re-queue) are discarded without counting against this
        dispatch.  Raises :class:`asyncio.TimeoutError` with the right
        story (liveness vs unit budget) attached as ``args[0]``.
        """
        loop = asyncio.get_running_loop()
        unit_deadline = loop.time() + self.unit_timeout
        while True:
            remaining = unit_deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"no reply within the {self.unit_timeout:g}s unit timeout"
                )
            window = (
                remaining
                if self.liveness_timeout is None
                else min(remaining, self.liveness_timeout)
            )
            try:
                reply = await asyncio.wait_for(
                    read_frame(reader, self.max_frame_bytes), timeout=window
                )
            except asyncio.TimeoutError:
                if window < remaining:
                    raise asyncio.TimeoutError(
                        "worker missed its liveness deadline "
                        f"({self.liveness_timeout:g}s with no heartbeat)"
                    ) from None
                raise asyncio.TimeoutError(
                    f"no reply within the {self.unit_timeout:g}s unit timeout"
                ) from None
            if reply is None:
                raise ConnectionResetError("worker disconnected mid-unit")
            reply_type = reply.get("type")
            if reply_type == "heartbeat":
                continue
            if (
                reply_type in ("result", "unit-error")
                and reply.get("unit") != task.unit_key
            ):
                continue  # late duplicate for a re-queued unit; void
            return reply

    async def _serve_worker(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: Dict[str, Any],
    ) -> None:
        """Feed one connected remote worker, one unit at a time."""
        breaker = self._breaker_for(hello, writer)
        self._worker_writers.add(writer)
        self._writer_breakers[writer] = breaker
        try:
            while True:
                while not breaker.allow():
                    await asyncio.sleep(min(0.05, max(breaker.retry_after(), 0.005)))
                task = await self._next_task()
                if task is None:
                    return
                task.attempts += 1
                task.state = "running"
                await self._send_event(task, "running")
                try:
                    await write_frame(
                        writer,
                        {
                            "type": "unit",
                            "unit": task.unit_key,
                            "plan": unit_plan_to_wire(task.plan),
                        },
                        self.max_frame_bytes,
                    )
                    reply = await self._await_reply(reader, task)
                except asyncio.TimeoutError as error:
                    breaker.record_failure()
                    await self._attempt_failed(task, str(error))
                    return  # drop the worker; its late reply is void
                except (ProtocolError, OSError, ConnectionError) as error:
                    breaker.record_failure()
                    await self._attempt_failed(
                        task, f"worker connection lost mid-unit: {error}"
                    )
                    return
                reply_type = reply.get("type")
                if reply_type == "result":
                    payload = reply.get("payload")
                    wire_checksum = reply.get("sha256")
                    if wire_checksum is not None and wire_checksum != unit_checksum(
                        payload
                    ):
                        breaker.record_failure()
                        await self._attempt_failed(
                            task, "result payload failed its sha256 checksum"
                        )
                        return  # the stream is suspect; drop the worker
                    accepted = await self._unit_finished(
                        task,
                        payload,
                        float(reply.get("wall_time_seconds") or 0.0),
                    )
                    if accepted:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
                elif reply_type == "unit-error":
                    breaker.record_failure()
                    await self._attempt_failed(
                        task, str(reply.get("error", "unit execution failed"))
                    )
                else:
                    breaker.record_failure()
                    await self._attempt_failed(
                        task, f"unexpected worker reply {reply_type!r}"
                    )
                    return
        finally:
            self._worker_writers.discard(writer)
            self._writer_breakers.pop(writer, None)

    async def _execute_task_locally(self, task: _UnitTask) -> None:
        """Run one already-claimed unit on an executor thread."""
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            payload = await loop.run_in_executor(None, execute_unit_plan, task.plan)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — any unit failure retries
            await self._attempt_failed(
                task, f"local worker: {type(error).__name__}: {error}"
            )
            return
        await self._unit_finished(task, payload, time.perf_counter() - start)

    async def _run_local_worker(self) -> None:
        """In-process worker: same dispatch loop, executor-thread execution."""
        while True:
            task = await self._next_task()
            if task is None:
                return
            task.attempts += 1
            task.state = "running"
            await self._send_event(task, "running")
            await self._execute_task_locally(task)

    def _available_workers(self) -> int:
        """Workers that could plausibly take a unit right now."""
        remote = sum(
            1
            for writer in self._worker_writers
            if self._writer_breakers.get(writer) is None
            or self._writer_breakers[writer].state != "open"
        )
        return len(self._local_tasks) + remote

    async def _degrade_watchdog(self) -> None:
        """Execute queued units in-process when the worker pool is empty.

        The safety net under ``degrade_to_local``: without it, a server
        whose remote workers all died or tripped their breakers would
        hold queued units forever.  Correctness is unaffected — a unit
        computes the same bytes wherever it runs — so degradation only
        trades the wait for local CPU time.
        """
        while True:
            await asyncio.sleep(self.degrade_after)
            if self._queue.qsize() == 0 or self._available_workers() > 0:
                continue
            while self._available_workers() == 0:
                try:
                    task = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if task is None or task.state in ("done", "failed") or task.job.finished:
                    continue
                task.attempts += 1
                task.state = "running"
                await self._send_event(task, "running")
                await self._execute_task_locally(task)
