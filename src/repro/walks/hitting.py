"""Hitting-time relations and bounds used by Theorem 16.

Ties together the classic-walk and population-model-walk computations:

* Lemma 17: ``H_P(G) <= 27 n · H(G)``,
* Lemma 18: ``M(u, v) <= 2 · H_P(G)``,
* Theorem 16's time bound ``O(H(G) · n log n)`` for the constant-state
  protocol,
* Proposition 20: ``H(G) ∈ O(n)`` w.h.p. for dense Erdős–Rényi graphs,
* the classic facts ``H(G) ∈ O(n^3)`` in general and ``O(n^2)`` on regular
  graphs [35].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..graphs.graph import Graph
from .classic import worst_case_hitting_time
from .population_walk import (
    exact_meeting_times,
    population_worst_case_hitting_time,
)


@dataclass(frozen=True)
class HittingTimeReport:
    """Exact hitting-time quantities for a graph plus the paper's relations."""

    classic_worst_case: float
    population_worst_case: float
    lemma17_bound: float
    max_meeting_time: Optional[float]
    lemma18_bound: Optional[float]

    @property
    def lemma17_holds(self) -> bool:
        """Whether ``H_P(G) <= 27 n H(G)`` held on this graph."""
        return self.population_worst_case <= self.lemma17_bound + 1e-9

    @property
    def lemma18_holds(self) -> Optional[bool]:
        """Whether ``max M(u,v) <= 2 H_P(G)`` held (``None`` if not computed)."""
        if self.max_meeting_time is None or self.lemma18_bound is None:
            return None
        return self.max_meeting_time <= self.lemma18_bound + 1e-9


def hitting_time_report(graph: Graph, include_meeting_times: bool = True) -> HittingTimeReport:
    """Compute ``H(G)``, ``H_P(G)`` and (optionally) meeting times exactly."""
    classic = worst_case_hitting_time(graph)
    population = population_worst_case_hitting_time(graph)
    lemma17 = 27.0 * graph.n_nodes * classic
    max_meeting = None
    lemma18 = None
    if include_meeting_times and graph.n_nodes <= 45:
        meeting = exact_meeting_times(graph)
        off_diagonal = [
            meeting[u, v]
            for u in range(graph.n_nodes)
            for v in range(graph.n_nodes)
            if u != v
        ]
        max_meeting = float(max(off_diagonal)) if off_diagonal else 0.0
        lemma18 = 2.0 * population
    return HittingTimeReport(
        classic_worst_case=classic,
        population_worst_case=population,
        lemma17_bound=lemma17,
        max_meeting_time=max_meeting,
        lemma18_bound=lemma18,
    )


def theorem16_step_bound(graph: Graph, constant: float = 108.0) -> float:
    """The ``O(H(G)·n·log n)`` stabilization bound of Theorem 16, in steps.

    The proof of Lemma 19 covers the execution with ``k log n`` intervals of
    ``108·n·H(G)`` scheduler steps each (``H_P(G) <= 27 n H(G)`` by
    Lemma 17, doubled twice for Markov + meeting); ``constant`` controls the
    leading factor the benchmarks use when comparing measured stabilization
    times against this shape.
    """
    n = graph.n_nodes
    if n <= 1:
        return 0.0
    return constant * worst_case_hitting_time(graph) * n * math.log(n)


def general_graph_hitting_upper_bound(n: int) -> float:
    """Classic fact: ``H(G) ∈ O(n^3)`` for any connected graph ([35])."""
    return float(n) ** 3


def regular_graph_hitting_upper_bound(n: int) -> float:
    """Classic fact: ``H(G) ∈ O(n^2)`` for connected regular graphs ([35])."""
    return float(n) ** 2


def dense_random_graph_hitting_order(n: int) -> float:
    """Proposition 20: ``H(G) ∈ O(n)`` w.h.p. for ``G(n, p)`` with constant p."""
    return float(n)
