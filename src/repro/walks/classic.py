"""Classic random walks on graphs (Section 4.1).

The paper's baseline (Theorem 16) is parameterised by the worst-case
expected hitting time ``H(G)`` of a *classic* random walk — the walk that,
at every step, moves to a uniformly random neighbour of its current
position.  This module provides exact hitting times via linear solves,
simulation of walk trajectories, and cover-time estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng

_EXACT_HITTING_NODE_LIMIT = 400


def transition_matrix(graph: Graph) -> np.ndarray:
    """Transition matrix ``P`` of the classic random walk (rows sum to 1)."""
    n = graph.n_nodes
    p = np.zeros((n, n), dtype=np.float64)
    for v in range(n):
        neighbors = graph.neighbors(v)
        if not neighbors:
            p[v, v] = 1.0
            continue
        weight = 1.0 / len(neighbors)
        for w in neighbors:
            p[v, w] = weight
    return p


def hitting_times_to(graph: Graph, target: int) -> np.ndarray:
    """Exact expected hitting times ``H(u, target)`` for all start nodes ``u``.

    Solves the linear system ``h(u) = 1 + (1/deg(u)) Σ_{w ~ u} h(w)`` with
    ``h(target) = 0``.
    """
    n = graph.n_nodes
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if n > _EXACT_HITTING_NODE_LIMIT:
        raise ValueError(
            f"exact hitting times limited to n <= {_EXACT_HITTING_NODE_LIMIT}"
        )
    if n == 1:
        return np.zeros(1)
    # Assemble I - P restricted to the non-target nodes with array ops
    # (the entries are identical to the per-edge construction: each
    # neighbour w of v contributes -1/deg(v)).
    probabilities = np.zeros((n, n), dtype=np.float64)
    inverse_degree = 1.0 / np.asarray(
        [max(graph.degree(v), 1) for v in range(n)], dtype=np.float64
    )
    edges_u = graph.edges_u
    edges_v = graph.edges_v
    probabilities[edges_u, edges_v] = inverse_degree[edges_u]
    probabilities[edges_v, edges_u] = inverse_degree[edges_v]
    keep = np.arange(n) != target
    a = np.eye(n - 1, dtype=np.float64) - probabilities[np.ix_(keep, keep)]
    b = np.ones(n - 1, dtype=np.float64)
    solution = np.linalg.solve(a, b)
    result = np.zeros(n, dtype=np.float64)
    result[keep] = solution
    return result


def worst_case_hitting_time(graph: Graph) -> float:
    """``H(G) = max_{u,v} H(u, v)`` computed exactly via linear solves."""
    n = graph.n_nodes
    if n == 1:
        return 0.0
    worst = 0.0
    for target in range(n):
        times = hitting_times_to(graph, target)
        worst = max(worst, float(times.max()))
    return worst


def hitting_time(graph: Graph, start: int, target: int) -> float:
    """Exact expected hitting time ``H(start, target)``."""
    return float(hitting_times_to(graph, target)[start])


@dataclass(frozen=True)
class WalkTrajectory:
    """A simulated walk: visited nodes plus the step at which all were covered."""

    positions: Tuple[int, ...]
    cover_step: Optional[int]


def simulate_walk(
    graph: Graph,
    start: int,
    steps: int,
    rng: RngLike = None,
    record_positions: bool = False,
) -> WalkTrajectory:
    """Simulate ``steps`` moves of the classic random walk from ``start``."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    generator = as_rng(rng)
    position = int(start)
    visited = {position}
    n = graph.n_nodes
    cover_step: Optional[int] = 0 if n == 1 else None
    positions: List[int] = [position] if record_positions else []
    for step in range(1, steps + 1):
        neighbors = graph.neighbors(position)
        position = int(neighbors[generator.integers(0, len(neighbors))])
        if record_positions:
            positions.append(position)
        if cover_step is None:
            visited.add(position)
            if len(visited) == n:
                cover_step = step
    return WalkTrajectory(
        positions=tuple(positions) if record_positions else (int(start),),
        cover_step=cover_step,
    )


def estimate_cover_time(
    graph: Graph,
    start: int = 0,
    repetitions: int = 10,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the cover time of the classic walk from ``start``.

    The cover time upper-bounds all hitting times and appears in the
    refined ``O(C(G)·n log n)`` bound for the constant-state protocol
    mentioned in Section 1.3.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_rng(rng)
    n = graph.n_nodes
    if max_steps is None:
        max_steps = 64 * n**3 + 1000
    total = 0.0
    for _ in range(repetitions):
        position = int(start)
        visited = {position}
        step = 0
        while len(visited) < n:
            step += 1
            if step > max_steps:
                raise RuntimeError("cover time exceeded the step budget")
            neighbors = graph.neighbors(position)
            position = int(neighbors[generator.integers(0, len(neighbors))])
            visited.add(position)
        total += step
    return total / repetitions


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Stationary distribution ``π(v) = deg(v) / 2m`` of the classic walk."""
    degrees = graph.degrees.astype(np.float64)
    total = degrees.sum()
    if total == 0:
        return np.full(graph.n_nodes, 1.0 / max(graph.n_nodes, 1))
    return degrees / total
