"""Random-walk substrate (Section 4.1 of the paper)."""

from .classic import (
    WalkTrajectory,
    estimate_cover_time,
    hitting_time,
    hitting_times_to,
    simulate_walk,
    stationary_distribution,
    transition_matrix,
    worst_case_hitting_time,
)
from .hitting import (
    HittingTimeReport,
    dense_random_graph_hitting_order,
    general_graph_hitting_upper_bound,
    hitting_time_report,
    regular_graph_hitting_upper_bound,
    theorem16_step_bound,
)
from .population_walk import (
    TokenWalkResult,
    exact_meeting_times,
    population_hitting_times_to,
    population_worst_case_hitting_time,
    simulate_meeting_time,
    simulate_meeting_times,
    simulate_population_hitting_time,
    simulate_population_hitting_times,
)

__all__ = [
    "HittingTimeReport",
    "TokenWalkResult",
    "WalkTrajectory",
    "dense_random_graph_hitting_order",
    "estimate_cover_time",
    "exact_meeting_times",
    "general_graph_hitting_upper_bound",
    "hitting_time",
    "hitting_time_report",
    "hitting_times_to",
    "population_hitting_times_to",
    "population_worst_case_hitting_time",
    "regular_graph_hitting_upper_bound",
    "simulate_meeting_time",
    "simulate_meeting_times",
    "simulate_population_hitting_time",
    "simulate_population_hitting_times",
    "simulate_walk",
    "stationary_distribution",
    "theorem16_step_bound",
    "transition_matrix",
    "worst_case_hitting_time",
]
