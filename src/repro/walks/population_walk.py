"""Random walks in the population model (Section 4.1).

A token performing a random walk in the population model moves whenever the
scheduler samples an edge incident to its current position — it then jumps
to the other endpoint.  The jump chain is therefore the classic random walk,
but the holding time at a node ``v`` is geometric with mean ``m / deg(v)``:
high-degree nodes move more often.

The constant-state protocol of Theorem 16 is analysed through the hitting
and meeting times of these walks (Lemmas 17–19); this module provides both
exact linear-algebra computations and Monte-Carlo estimators for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from ..core.scheduler import RandomScheduler

_EXACT_NODE_LIMIT = 400
_EXACT_MEETING_NODE_LIMIT = 45


def population_hitting_times_to(graph: Graph, target: int) -> np.ndarray:
    """Exact ``H_P(u, target)`` for all ``u`` (population-model walk).

    System: ``h(u) = m/deg(u) + (1/deg(u)) Σ_{w ~ u} h(w)`` for ``u != target``.
    """
    n = graph.n_nodes
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if n > _EXACT_NODE_LIMIT:
        raise ValueError(f"exact computation limited to n <= {_EXACT_NODE_LIMIT}")
    if n == 1:
        return np.zeros(1)
    m = graph.n_edges
    others = [v for v in range(n) if v != target]
    index = {v: i for i, v in enumerate(others)}
    size = n - 1
    a = np.zeros((size, size), dtype=np.float64)
    b = np.zeros(size, dtype=np.float64)
    for v in others:
        i = index[v]
        degree = graph.degree(v)
        a[i, i] = 1.0
        b[i] = m / degree
        for w in graph.neighbors(v):
            if w == target:
                continue
            a[i, index[w]] -= 1.0 / degree
    solution = np.linalg.solve(a, b)
    result = np.zeros(n, dtype=np.float64)
    for v in others:
        result[v] = solution[index[v]]
    return result


def population_worst_case_hitting_time(graph: Graph) -> float:
    """``H_P(G) = max_{u,v} H_P(u, v)``."""
    n = graph.n_nodes
    if n == 1:
        return 0.0
    worst = 0.0
    for target in range(n):
        worst = max(worst, float(population_hitting_times_to(graph, target).max()))
    return worst


def exact_meeting_times(graph: Graph) -> np.ndarray:
    """Exact expected meeting times ``M(u, v)`` of two population-model walks.

    Two walks *meet* at step ``t`` when the sampled edge ``e_t`` has the two
    walks at its endpoints (Section 4.1).  The pair process is a Markov
    chain on ordered pairs of distinct positions, absorbed when the edge
    joining the two walks fires; a single sampled edge can never merge two
    distinct walks onto the same node without such a meeting, so diagonal
    states are unreachable and set to zero.  Solving the ``n^2``-dimensional
    linear system directly limits this to small graphs; it is used to
    validate the Monte-Carlo estimator and Lemma 18.
    """
    n = graph.n_nodes
    if n > _EXACT_MEETING_NODE_LIMIT:
        raise ValueError(
            f"exact meeting times limited to n <= {_EXACT_MEETING_NODE_LIMIT}"
        )
    m = graph.n_edges
    size = n * n
    a = np.eye(size, dtype=np.float64)
    b = np.zeros(size, dtype=np.float64)

    def idx(x: int, y: int) -> int:
        return x * n + y

    for x in range(n):
        for y in range(n):
            row = idx(x, y)
            if x == y:
                # Unreachable from distinct starting positions; define as 0.
                continue
            b[row] = 1.0
            for u, v in graph.edges():
                prob = 1.0 / m
                if (x == u and y == v) or (x == v and y == u):
                    # The joining edge fired: the walks meet (absorption).
                    continue
                new_x, new_y = x, y
                if x == u:
                    new_x = v
                elif x == v:
                    new_x = u
                if y == u:
                    new_y = v
                elif y == v:
                    new_y = u
                a[row, idx(new_x, new_y)] -= prob
    solution = np.linalg.solve(a, b)
    return solution.reshape(n, n)


@dataclass(frozen=True)
class TokenWalkResult:
    """Monte-Carlo estimates for token walks started at every node."""

    mean_pairwise_meeting_steps: float
    max_pairwise_meeting_steps: float
    repetitions: int


def simulate_meeting_time(
    graph: Graph,
    start_a: int,
    start_b: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until two population-model walks meet (single trajectory)."""
    if start_a == start_b:
        # Any edge incident to the shared node is a meeting.
        pass
    generator = as_rng(rng)
    if max_steps is None:
        max_steps = 200 * graph.n_nodes * graph.n_edges + 1000
    scheduler = RandomScheduler(graph, rng=generator)
    pos_a, pos_b = int(start_a), int(start_b)
    step = 0
    while step < max_steps:
        batch = min(8192, max_steps - step)
        for u, v in scheduler.next_batch(batch):
            step += 1
            a_on_edge = pos_a == u or pos_a == v
            b_on_edge = pos_b == u or pos_b == v
            if a_on_edge and b_on_edge:
                return step
            if a_on_edge:
                pos_a = v if pos_a == u else u
            if b_on_edge:
                pos_b = v if pos_b == u else u
    return None


def simulate_population_hitting_time(
    graph: Graph,
    start: int,
    target: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until a population-model walk from ``start`` reaches ``target``."""
    if start == target:
        return 0
    generator = as_rng(rng)
    if max_steps is None:
        max_steps = 200 * graph.n_nodes * graph.n_edges + 1000
    scheduler = RandomScheduler(graph, rng=generator)
    position = int(start)
    step = 0
    while step < max_steps:
        batch = min(8192, max_steps - step)
        for u, v in scheduler.next_batch(batch):
            step += 1
            if position == u:
                position = v
            elif position == v:
                position = u
            if position == target:
                return step
    return None
