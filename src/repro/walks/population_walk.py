"""Random walks in the population model (Section 4.1).

A token performing a random walk in the population model moves whenever the
scheduler samples an edge incident to its current position — it then jumps
to the other endpoint.  The jump chain is therefore the classic random walk,
but the holding time at a node ``v`` is geometric with mean ``m / deg(v)``:
high-degree nodes move more often.

The constant-state protocol of Theorem 16 is analysed through the hitting
and meeting times of these walks (Lemmas 17–19); this module provides both
exact linear-algebra computations (assembled with vectorized NumPy
indexing over the edge arrays) and Monte-Carlo estimators.  The
estimators run on the replica-batched analytics engine
(:mod:`repro.analytics.walks`): positions advance one interaction block
at a time with event-skipping — the walk jumps straight between the
block's incident interactions — instead of replaying every step in a
Python loop, and the batched forms run all trajectories in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..analytics.estimators import HITTING_TAG, MEETING_TAG
from ..analytics.streams import TrajectoryStream, resolve_base_seed
from ..analytics.walks import (
    default_walk_budget,
    run_hitting_batch,
    run_meeting_batch,
    run_single_hitting,
    run_single_meeting,
)
from ..core.seeds import derive_seed
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng

_EXACT_NODE_LIMIT = 400
_EXACT_MEETING_NODE_LIMIT = 45


def population_hitting_times_to(graph: Graph, target: int) -> np.ndarray:
    """Exact ``H_P(u, target)`` for all ``u`` (population-model walk).

    System: ``h(u) = m/deg(u) + (1/deg(u)) Σ_{w ~ u} h(w)`` for ``u != target``.
    The coefficient matrix is assembled in one pass over the edge arrays.
    """
    n = graph.n_nodes
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if n > _EXACT_NODE_LIMIT:
        raise ValueError(f"exact computation limited to n <= {_EXACT_NODE_LIMIT}")
    if n == 1:
        return np.zeros(1)
    m = graph.n_edges
    degrees = graph.degrees.astype(np.float64)
    # Row/column index of each non-target node in the reduced system.
    index = np.full(n, -1, dtype=np.int64)
    others = np.flatnonzero(np.arange(n) != target)
    index[others] = np.arange(n - 1)
    a = np.eye(n - 1, dtype=np.float64)
    edges_u = graph.edges_u
    edges_v = graph.edges_v
    keep = (edges_u != target) & (edges_v != target)
    rows = index[edges_u[keep]]
    cols = index[edges_v[keep]]
    # Simple graph: each (row, col) pair appears once, so plain fancy
    # assignment of both orientations is exact.
    a[rows, cols] -= 1.0 / degrees[edges_u[keep]]
    a[cols, rows] -= 1.0 / degrees[edges_v[keep]]
    b = m / degrees[others]
    solution = np.linalg.solve(a, b)
    result = np.zeros(n, dtype=np.float64)
    result[others] = solution
    return result


def population_worst_case_hitting_time(graph: Graph) -> float:
    """``H_P(G) = max_{u,v} H_P(u, v)``."""
    n = graph.n_nodes
    if n == 1:
        return 0.0
    worst = 0.0
    for target in range(n):
        worst = max(worst, float(population_hitting_times_to(graph, target).max()))
    return worst


def exact_meeting_times(graph: Graph) -> np.ndarray:
    """Exact expected meeting times ``M(u, v)`` of two population-model walks.

    Two walks *meet* at step ``t`` when the sampled edge ``e_t`` has the two
    walks at its endpoints (Section 4.1).  The pair process is a Markov
    chain on ordered pairs of distinct positions, absorbed when the edge
    joining the two walks fires; a single sampled edge can never merge two
    distinct walks onto the same node without such a meeting, so diagonal
    states are unreachable and set to zero.  Solving the ``n^2``-dimensional
    linear system directly limits this to small graphs; it is used to
    validate the Monte-Carlo estimator and Lemma 18.

    The system is assembled one edge at a time with vectorized operations
    over all ``n^2`` pair states (each edge defines one transposition of
    the node set applied to both walk coordinates).
    """
    n = graph.n_nodes
    if n > _EXACT_MEETING_NODE_LIMIT:
        raise ValueError(
            f"exact meeting times limited to n <= {_EXACT_MEETING_NODE_LIMIT}"
        )
    m = graph.n_edges
    size = n * n
    a = np.eye(size, dtype=np.float64)
    b = np.zeros(size, dtype=np.float64)
    x = np.repeat(np.arange(n), n)
    y = np.tile(np.arange(n), n)
    live = x != y  # diagonal states are unreachable: identity rows, b = 0
    b[live] = 1.0
    rows = np.arange(size)
    prob = 1.0 / m
    for u, v in zip(graph.edges_u.tolist(), graph.edges_v.tolist()):
        swap = np.arange(n)
        swap[u] = v
        swap[v] = u
        # Absorbing event: the sampled edge joins the two walks.
        meets = ((x == u) & (y == v)) | ((x == v) & (y == u))
        moves = live & ~meets
        targets = swap[x[moves]] * n + swap[y[moves]]
        # Distinct edges can map a state onto the same successor, so
        # accumulate (np.add.at) rather than assign.
        np.add.at(a, (rows[moves], targets), -prob)
    solution = np.linalg.solve(a, b)
    return solution.reshape(n, n)


@dataclass(frozen=True)
class TokenWalkResult:
    """Monte-Carlo estimates for token walks started at every node."""

    mean_pairwise_meeting_steps: float
    max_pairwise_meeting_steps: float
    repetitions: int


def simulate_meeting_time(
    graph: Graph,
    start_a: int,
    start_b: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until two population-model walks meet (single trajectory).

    Coincident starts are fine: the first sampled edge incident to the
    shared node is a meeting.
    """
    generator = as_rng(rng)
    if max_steps is None:
        max_steps = default_walk_budget(graph)
    stream = TrajectoryStream(graph, generator)
    return run_single_meeting(graph, int(start_a), int(start_b), stream, max_steps)


def simulate_population_hitting_time(
    graph: Graph,
    start: int,
    target: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until a population-model walk from ``start`` reaches ``target``."""
    if start == target:
        return 0
    generator = as_rng(rng)
    if max_steps is None:
        max_steps = default_walk_budget(graph)
    stream = TrajectoryStream(graph, generator)
    return run_single_hitting(graph, int(start), int(target), stream, max_steps)


def simulate_population_hitting_times(
    graph: Graph,
    pairs: Sequence[Tuple[int, int]],
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> np.ndarray:
    """Replica-batched hitting-time samples, one per ``(start, target)`` pair.

    Trajectory ``t`` reads the stream seeded by ``derive_seed(base,
    "hit", t)`` where ``base`` resolves from ``rng`` — so each sample is
    a pure function of ``(base, t)``, bit-identical for any
    ``replica_batch`` width.  Budget-exhausted trajectories report -1.
    """
    base = resolve_base_seed(rng)
    seeds = [derive_seed(base, HITTING_TAG, t) for t in range(len(pairs))]
    return run_hitting_batch(
        graph, pairs, seeds, max_steps=max_steps, replica_batch=replica_batch
    )


def simulate_meeting_times(
    graph: Graph,
    pairs: Sequence[Tuple[int, int]],
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> np.ndarray:
    """Replica-batched meeting-time samples, one per ``(start_a, start_b)`` pair."""
    base = resolve_base_seed(rng)
    seeds = [derive_seed(base, MEETING_TAG, t) for t in range(len(pairs))]
    return run_meeting_batch(
        graph, pairs, seeds, max_steps=max_steps, replica_batch=replica_batch
    )
