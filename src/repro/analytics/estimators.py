"""High-level replica-batched Monte-Carlo estimators.

The ``B(G)`` estimator enumerates all ``R = |sources| × repetitions``
epidemics of one estimate — and, in the multi-base form the experiment
harness uses for the fast protocol, of *several* estimates at once — into
a single replica stack for :func:`repro.analytics.epidemics.run_epidemic_batch`.

Trajectory seeds are derived as ``derive_seed(base, "bcast", source,
repetition)``: a pure function of the estimate's base seed and the
trajectory's identity, independent of the source sample, of the
replica-batch width and of which other estimates share the stack.  A
batched multi-trial run therefore reproduces each trial's standalone
estimate bit for bit — the invariant that lets the orchestrator shard
fast-protocol trials arbitrarily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.seeds import derive_seed
from ..graphs.graph import Graph
from .epidemics import run_epidemic_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule

#: Domain tags for trajectory-seed derivation (see repro.core.seeds).
BROADCAST_TAG = "bcast"
SOURCES_TAG = "bcast-sources"
FULL_INFORMATION_TAG = "fullinfo"
DISTANCE_K_TAG = "distk"
HITTING_TAG = "hit"
MEETING_TAG = "meet"


def select_sources(graph: Graph, max_sources: int, base: int) -> List[int]:
    """The estimate's source sample: all nodes, or a degree-stratified draw.

    The maximiser of ``E[T(v)]`` tends to be a low-degree, peripheral
    node, so the sample always includes the minimum/maximum-degree and
    maximum-eccentricity nodes; the remainder is drawn from a dedicated
    child stream so the sample depends only on ``(graph, max_sources,
    base)``.
    """
    n = graph.n_nodes
    if n <= max_sources:
        return list(range(n))
    degrees = graph.degrees
    eccentricities = graph.eccentricities()
    forced = {
        int(np.argmin(degrees)),
        int(np.argmax(degrees)),
        int(np.argmax(eccentricities)),
    }
    remaining = [v for v in range(n) if v not in forced]
    extra_count = max(max_sources - len(forced), 0)
    if remaining and extra_count:
        rng = np.random.default_rng(derive_seed(base, SOURCES_TAG))
        extra = rng.choice(
            remaining, size=min(extra_count, len(remaining)), replace=False
        ).tolist()
    else:
        extra = []
    return sorted(forced | set(int(v) for v in extra))


def broadcast_trajectory_seed(base: int, source: int, repetition: int) -> int:
    """Seed of one epidemic of a ``B(G)`` estimate (pure in its arguments)."""
    return derive_seed(base, BROADCAST_TAG, source, repetition)


def batched_broadcast_samples(
    graph: Graph,
    sources: Sequence[int],
    repetitions: int,
    base: int,
    max_steps: int,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> Dict[int, np.ndarray]:
    """Per-source arrays of broadcast-step samples, one replica stack.

    Raises :class:`RuntimeError` if any trajectory exhausts ``max_steps``
    (matching the serial estimators' budget contract).  ``schedule`` runs
    the epidemics on a time-varying topology (see
    :func:`repro.analytics.epidemics.run_epidemic_batch`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    for source in sources:
        if not (0 <= int(source) < graph.n_nodes):
            raise ValueError("source out of range")
    trajectory_sources: List[int] = []
    seeds: List[int] = []
    for source in sources:
        for repetition in range(repetitions):
            trajectory_sources.append(int(source))
            seeds.append(broadcast_trajectory_seed(base, int(source), repetition))
    steps = run_epidemic_batch(
        graph,
        trajectory_sources,
        seeds,
        max_steps,
        replica_batch=replica_batch,
        schedule=schedule,
    )
    if (steps < 0).any():
        raise RuntimeError(
            "broadcast did not complete within the step budget; increase max_steps"
        )
    by_source: Dict[int, np.ndarray] = {}
    for position, source in enumerate(sources):
        lo = position * repetitions
        by_source[int(source)] = steps[lo : lo + repetitions].astype(np.float64)
    return by_source


#: Plain-data form of one ``B(G)`` estimate: (value, per-source means,
#: sources, repetitions).  The dataclass lives in
#: :mod:`repro.propagation.broadcast` (the public API home).
EstimateData = Tuple[float, Dict[int, float], Tuple[int, ...], int]


def batched_broadcast_estimates(
    graph: Graph,
    bases: Sequence[int],
    repetitions: int,
    max_sources: int,
    max_steps: int,
    replica_batch: Optional[int] = None,
) -> List[EstimateData]:
    """``B(G)`` estimates for several base seeds in one replica stack.

    This is the harness's fast-protocol hot path: one measurement's
    ``trials × sources × repetitions`` epidemics all advance in lockstep.
    Entry ``i`` is bit-identical to the estimate a standalone call with
    ``bases[i]`` produces.
    """
    plans: List[Tuple[int, List[int]]] = []
    trajectory_sources: List[int] = []
    seeds: List[int] = []
    for base in bases:
        sources = select_sources(graph, max_sources, int(base))
        plans.append((int(base), sources))
        for source in sources:
            for repetition in range(repetitions):
                trajectory_sources.append(source)
                seeds.append(broadcast_trajectory_seed(int(base), source, repetition))
    steps = run_epidemic_batch(
        graph, trajectory_sources, seeds, max_steps, replica_batch=replica_batch
    )
    if (steps < 0).any():
        raise RuntimeError(
            "broadcast did not complete within the step budget; increase max_steps"
        )
    estimates: List[EstimateData] = []
    cursor = 0
    for _base, sources in plans:
        per_source: Dict[int, float] = {}
        for source in sources:
            samples = steps[cursor : cursor + repetitions]
            per_source[source] = float(samples.mean())
            cursor += repetitions
        estimates.append(
            (max(per_source.values()), per_source, tuple(sources), repetitions)
        )
    return estimates
