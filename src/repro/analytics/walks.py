"""Replica-batched population-model walks (hitting and meeting times).

A population-model walk only moves when the scheduler samples an edge
incident to its current position — an expected ``deg(pos)/m`` fraction of
all interactions.  Instead of replaying every interaction in a Python
loop, each trajectory consumes its stream one block at a time and *skips
between touch events*: the block's interactions are indexed by endpoint
(one ``lexsort``), and the walk jumps straight from one incident
interaction to the next with two binary searches.  Per block the work is
``O(block log block)`` for the index plus ``O(moves · log block)`` — and
the number of touch events equals the number of moves, so the cost scales
with how often the walk actually moves, not with the raw step count.

Trajectory streams, block schedule, budget conventions and replica-batch
semantics match :mod:`repro.analytics.epidemics`: ``R`` walks advance in
lockstep as position vectors, finished walks are compacted out of the
stack, and results are bit-identical for any replica-batch width.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from .epidemics import BUDGET_EXHAUSTED
from .streams import TrajectoryStream, block_size, iter_width_chunks, make_streams


def default_walk_budget(graph: Graph) -> int:
    """The walk estimators' historical step budget (``200·n·m + 1000``)."""
    return 200 * graph.n_nodes * graph.n_edges + 1000


def _touch_index(iu: np.ndarray, iv: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Block interactions grouped by endpoint, step-sorted within a node."""
    block = iu.shape[0]
    nodes = np.concatenate((iu, iv))
    steps = np.concatenate((np.arange(block, dtype=np.int64),) * 2)
    order = np.lexsort((steps, nodes))
    return nodes[order], steps[order]


def _next_touch(snodes: np.ndarray, ssteps: np.ndarray, node: int, after: int) -> int:
    """First step index > ``after`` whose interaction touches ``node`` (-1: none)."""
    lo = np.searchsorted(snodes, node, "left")
    hi = np.searchsorted(snodes, node, "right")
    segment = ssteps[lo:hi]
    j = np.searchsorted(segment, after + 1, "left")
    if j == segment.shape[0]:
        return -1
    return int(segment[j])


def _hitting_block(
    iu: np.ndarray, iv: np.ndarray, position: int, target: int
) -> Tuple[int, int]:
    """Advance one walk through one block; returns (position, finish offset)."""
    snodes, ssteps = _touch_index(iu, iv)
    cursor = -1
    while True:
        event = _next_touch(snodes, ssteps, position, cursor)
        if event < 0:
            return position, -1
        position = int(iu[event] + iv[event] - position)
        if position == target:
            return position, event + 1
        cursor = event


def _meeting_block(
    iu: np.ndarray, iv: np.ndarray, pos_a: int, pos_b: int
) -> Tuple[int, int, int]:
    """Advance one walk pair through one block; returns (a, b, finish offset)."""
    snodes, ssteps = _touch_index(iu, iv)
    cursor = -1
    while True:
        next_a = _next_touch(snodes, ssteps, pos_a, cursor)
        next_b = next_a if pos_a == pos_b else _next_touch(snodes, ssteps, pos_b, cursor)
        if next_a < 0 and next_b < 0:
            return pos_a, pos_b, -1
        if next_a == next_b:
            # One interaction touching both walks can only be the edge
            # joining them (or any edge at a shared node): a meeting.
            return pos_a, pos_b, next_a + 1
        if next_b < 0 or (0 <= next_a < next_b):
            pos_a = int(iu[next_a] + iv[next_a] - pos_a)
            cursor = next_a
        else:
            pos_b = int(iu[next_b] + iv[next_b] - pos_b)
            cursor = next_b


# ----------------------------------------------------------------------
# Batched drivers
# ----------------------------------------------------------------------
def run_hitting_batch(
    graph: Graph,
    pairs: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> np.ndarray:
    """Hitting steps for ``R`` walks; ``pairs[t]`` is ``(start, target)``.

    Walks starting on their target report 0.  Same return conventions as
    :func:`repro.analytics.epidemics.run_epidemic_batch`.
    """
    count = len(pairs)
    if len(seeds) != count:
        raise ValueError("need exactly one seed per trajectory")
    if max_steps is None:
        max_steps = default_walk_budget(graph)
    results = np.full(count, BUDGET_EXHAUSTED, dtype=np.int64)
    for chunk in iter_width_chunks(count, replica_batch):
        live: List[Tuple[int, TrajectoryStream, int, int]] = []
        for t in chunk:
            start, target = int(pairs[t][0]), int(pairs[t][1])
            if start == target:
                results[t] = 0
                continue
            scheduler = make_streams(graph, [seeds[t]])[0]
            live.append((t, scheduler, start, target))
        _drain_walks(live, max_steps, results, meeting=False)
    return results


def run_meeting_batch(
    graph: Graph,
    pairs: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> np.ndarray:
    """Meeting steps for ``R`` walk pairs; ``pairs[t]`` is ``(start_a, start_b)``."""
    count = len(pairs)
    if len(seeds) != count:
        raise ValueError("need exactly one seed per trajectory")
    if max_steps is None:
        max_steps = default_walk_budget(graph)
    results = np.full(count, BUDGET_EXHAUSTED, dtype=np.int64)
    for chunk in iter_width_chunks(count, replica_batch):
        live = [
            (t, make_streams(graph, [seeds[t]])[0], int(pairs[t][0]), int(pairs[t][1]))
            for t in chunk
        ]
        _drain_walks(live, max_steps, results, meeting=True)
    return results


def _drain_walks(
    live: List[Tuple[int, TrajectoryStream, int, int]],
    max_steps: int,
    results: np.ndarray,
    meeting: bool,
) -> None:
    """Run one wave of walks in lockstep blocks until finished or budget."""
    consumed = 0
    round_index = 0
    while live and consumed < max_steps:
        block = min(block_size(round_index), max_steps - consumed)
        survivors: List[Tuple[int, TrajectoryStream, int, int]] = []
        for index, stream, first, second in live:
            iu = np.empty(block, dtype=np.int64)
            iv = np.empty(block, dtype=np.int64)
            stream.next_into(iu, iv)
            if meeting:
                first, second, finish = _meeting_block(iu, iv, first, second)
            else:
                first, finish = _hitting_block(iu, iv, first, second)
            if finish >= 0:
                results[index] = consumed + finish
            else:
                survivors.append((index, stream, first, second))
        live = survivors
        consumed += block
        round_index += 1


# ----------------------------------------------------------------------
# Single-stream wrappers (shared-generator call sites)
# ----------------------------------------------------------------------
def run_single_hitting(
    graph: Graph,
    start: int,
    target: int,
    stream: TrajectoryStream,
    max_steps: int,
) -> Optional[int]:
    """One hitting-time trajectory on a caller-provided stream."""
    results = np.full(1, BUDGET_EXHAUSTED, dtype=np.int64)
    _drain_walks([(0, stream, int(start), int(target))], max_steps, results, meeting=False)
    steps = int(results[0])
    return None if steps == BUDGET_EXHAUSTED else steps


def run_single_meeting(
    graph: Graph,
    start_a: int,
    start_b: int,
    stream: TrajectoryStream,
    max_steps: int,
) -> Optional[int]:
    """One meeting-time trajectory on a caller-provided stream."""
    results = np.full(1, BUDGET_EXHAUSTED, dtype=np.int64)
    _drain_walks([(0, stream, int(start_a), int(start_b))], max_steps, results, meeting=True)
    steps = int(results[0])
    return None if steps == BUDGET_EXHAUSTED else steps
