"""Replica-batched one-way epidemics and influence processes.

The Monte-Carlo analytics floor of the experiment harness — ``B(G)``
estimates, full-information times, distance-``k`` propagation times — is
built from two stochastic processes:

* the **single-source epidemic**: one informed bit per node, spread along
  sampled interactions until all ``n`` nodes (or a stop set) are reached;
* the **all-pairs influence process**: one ``n``-bit influencer set per
  node, merged pairwise until every node is influenced by every node.

This module runs ``R`` independent trajectories of either process in
lockstep: epidemics as an ``(R, n)`` uint8 informed matrix, influence as
an ``(R, n, ⌈n/64⌉)`` packed uint64 bitset tensor.  Each trajectory reads
its private scheduler stream (:mod:`repro.analytics.streams`), one block
per round, and finished replicas are compacted out of the stack so
stabilized stragglers do not drag the batch.

Three execution paths produce bit-identical results:

* the multi-replica C kernels (:func:`repro.engine.native.get_broadcast_multi_kernel`,
  :func:`~repro.engine.native.get_influence_multi_kernel`) — interpreter-free
  inner loops over the whole ``(R, block)`` matrix;
* a vectorized NumPy path — a Python loop over the block's steps with all
  replica-axis work done in array operations (the no-compiler fallback);
* a scalar path for tiny stacks (``R < 4``), where per-element NumPy
  overhead would exceed a plain Python loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.native import (
    RNG_STATE_WORDS,
    get_broadcast_epoch_kernel,
    get_broadcast_multi_kernel,
    get_influence_epoch_kernel,
    get_influence_multi_kernel,
    kernel_thread_count,
)
from ..graphs.graph import Graph
from ..runtime.source import pack_generator_state, unpack_generator_state
from .streams import (
    TrajectoryStream,
    block_size,
    directed_pairs,
    fill_draw_rows,
    iter_width_chunks,
    make_streams,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule

#: Below this many co-resident replicas the scalar Python loop beats the
#: per-step fancy-indexing overhead of the NumPy path.  Dispatch only —
#: all paths compute identical results.
_SCALAR_MAX_REPLICAS = 4

BUDGET_EXHAUSTED = -1


def _pack_stream_states(streams: Sequence[TrajectoryStream]) -> Optional[np.ndarray]:
    """Export the streams' PCG64 states into kernel RNG rows.

    Returns ``None`` (keeping the stream on the NumPy draw path) if any
    stream rides a bit generator the kernel cannot continue.
    """
    rows = np.zeros((len(streams), RNG_STATE_WORDS), dtype=np.uint64)
    try:
        for j, stream in enumerate(streams):
            pack_generator_state(stream.generator, rows[j])
    except (KeyError, TypeError, ValueError):
        return None
    return rows


def _writeback_stream_states(
    streams: Sequence[TrajectoryStream], rows: np.ndarray, mask: np.ndarray
) -> None:
    """Import kernel RNG rows back into the streams selected by ``mask``.

    The v6 kernels burn a finished replica's remaining block draws, so
    the written-back generator state is exactly where the NumPy path
    (which pre-draws whole blocks) would have left it.
    """
    for j, stream in enumerate(streams):
        if mask[j]:
            unpack_generator_state(stream.generator, rows[j])


def _active_tables(
    graph: Graph,
    schedule: Optional["TopologySchedule"],
    consumed: int,
    block: int,
) -> Tuple[np.ndarray, np.ndarray, Optional[int], int]:
    """Directed endpoint tables + draw bound for the block at ``consumed``.

    On a static run (``schedule is None``) this is the graph's own tables
    and the block size is untouched.  On a dynamic run the block is
    clipped at the next epoch boundary, so every draw in it is made — and
    decoded — against one epoch's edge table, and all co-resident
    replicas cross the epoch switch together (they share ``consumed``).
    """
    if schedule is None:
        directed_u, directed_v = directed_pairs(graph)
        return directed_u, directed_v, None, block
    index, _, end = schedule.epoch_at(consumed)
    if end is not None:
        block = min(block, end - consumed)
    directed_u, directed_v = directed_pairs(schedule.epoch_graph(index))
    return directed_u, directed_v, int(directed_u.shape[0]), block


# ----------------------------------------------------------------------
# Single-source epidemics
# ----------------------------------------------------------------------
def run_epidemic_batch(
    graph: Graph,
    sources: Sequence[int],
    seeds: Sequence[int],
    max_steps: int,
    stopmasks: Optional[np.ndarray] = None,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> np.ndarray:
    """Steps until completion for ``R`` independent epidemics.

    Trajectory ``t`` starts at ``sources[t]`` and reads the stream seeded
    by ``seeds[t]``.  Without ``stopmasks`` an epidemic completes when all
    ``n`` nodes are informed; with ``stopmasks`` (an ``(R, n)`` uint8
    matrix) it completes when a newly informed node has its mask bit set
    (distance-``k`` propagation).  Returns an int64 array with the 1-based
    completion step per trajectory, or :data:`BUDGET_EXHAUSTED` where
    ``max_steps`` ran out.  ``replica_batch`` caps how many trajectories
    are co-resident; it never changes the results.

    ``schedule`` runs the epidemics on a time-varying topology: blocks
    are clipped at epoch boundaries so all co-resident trajectories
    advance through epoch switches in lockstep, and every draw samples
    the active epoch's ordered-pair table.  A single-epoch schedule
    reproduces the static run bit for bit.
    """
    count = len(sources)
    if len(seeds) != count:
        raise ValueError("need exactly one seed per trajectory")
    if schedule is not None and schedule.n_nodes != graph.n_nodes:
        raise ValueError("schedule universe does not match the graph")
    for source in sources:
        if not (0 <= int(source) < graph.n_nodes):
            raise ValueError("source out of range")
    results = np.full(count, BUDGET_EXHAUSTED, dtype=np.int64)
    for chunk in iter_width_chunks(count, replica_batch):
        schedulers = make_streams(graph, [seeds[t] for t in chunk])
        chunk_sources = [int(sources[t]) for t in chunk]
        chunk_masks = None if stopmasks is None else stopmasks[list(chunk)]
        _run_epidemic_stack(
            graph,
            schedulers,
            chunk_sources,
            chunk_masks,
            max_steps,
            results,
            chunk.start,
            schedule,
        )
    return results


def run_single_epidemic(
    graph: Graph,
    source: int,
    stream: TrajectoryStream,
    max_steps: int,
    stopmask: Optional[np.ndarray] = None,
) -> Optional[int]:
    """One epidemic on a caller-provided stream (shared-generator wrappers).

    Consumes the stream with the same block schedule as the batched
    engine, so e.g. a distance-``k`` run and a full broadcast with the
    same seed share their interaction schedule step for step.
    """
    results = np.full(1, BUDGET_EXHAUSTED, dtype=np.int64)
    masks = None if stopmask is None else np.ascontiguousarray(stopmask, dtype=np.uint8)[None, :]
    _run_epidemic_stack(graph, [stream], [int(source)], masks, max_steps, results, 0)
    steps = int(results[0])
    return None if steps == BUDGET_EXHAUSTED else steps


def _run_epidemic_stack(
    graph: Graph,
    schedulers: List[TrajectoryStream],
    sources: List[int],
    stopmasks: Optional[np.ndarray],
    max_steps: int,
    results: np.ndarray,
    result_offset: int,
    schedule: Optional["TopologySchedule"] = None,
) -> None:
    """Run one wave of co-resident epidemics to completion or budget."""
    n = graph.n_nodes
    active = len(schedulers)
    informed = np.zeros((active, n), dtype=np.uint8)
    informed[np.arange(active), np.asarray(sources, dtype=np.int64)] = 1
    counts = np.ones(active, dtype=np.int64)
    indices = np.arange(result_offset, result_offset + active, dtype=np.int64)
    masks = (
        None
        if stopmasks is None
        else np.ascontiguousarray(stopmasks, dtype=np.uint8)
    )
    kernel = get_broadcast_multi_kernel()
    epoch_kernel = get_broadcast_epoch_kernel()
    # v6: draw inside the kernel.  Stream states move into RNG rows and
    # are written back whenever a stream leaves the stack, so callers
    # holding the stream (run_single_epidemic) observe exactly the state
    # the NumPy draw path would have left.
    rng_rows = None if epoch_kernel is None else _pack_stream_states(schedulers)
    threads = kernel_thread_count()
    consumed = 0
    round_index = 0
    while schedulers and consumed < max_steps:
        block = min(block_size(round_index), max_steps - consumed)
        directed_u, directed_v, pair_count, block = _active_tables(
            graph, schedule, consumed, block
        )
        a = len(schedulers)
        finish = np.full(a, -1, dtype=np.int64)
        if rng_rows is not None:
            bound = 2 * graph.n_edges if pair_count is None else pair_count
            epoch_kernel(
                informed.ctypes.data,
                rng_rows.ctypes.data,
                directed_u.ctypes.data,
                directed_v.ctypes.data,
                bound,
                a,
                block,
                n,
                masks.ctypes.data if masks is not None else None,
                counts.ctypes.data,
                finish.ctypes.data,
                threads,
            )
        else:
            draws = np.empty((a, block), dtype=np.int64)
            fill_draw_rows(schedulers, draws, pair_count)
            if kernel is not None:
                kernel(
                    informed.ctypes.data,
                    draws.ctypes.data,
                    directed_u.ctypes.data,
                    directed_v.ctypes.data,
                    a,
                    block,
                    n,
                    masks.ctypes.data if masks is not None else None,
                    counts.ctypes.data,
                    finish.ctypes.data,
                )
            elif a >= _SCALAR_MAX_REPLICAS:
                iu = directed_u.take(draws)
                iv = directed_v.take(draws)
                _numpy_epidemic_block(informed, iu, iv, counts, finish, n, masks)
            else:
                _scalar_epidemic_block(
                    informed, draws, directed_u, directed_v, counts, finish, n, masks
                )
        done = finish >= 0
        if done.any():
            results[indices[done]] = consumed + finish[done]
            keep = ~done
            if rng_rows is not None:
                _writeback_stream_states(schedulers, rng_rows, done)
                rng_rows = np.ascontiguousarray(rng_rows[keep])
            informed = np.ascontiguousarray(informed[keep])
            counts = counts[keep]
            indices = indices[keep]
            if masks is not None:
                masks = np.ascontiguousarray(masks[keep])
            schedulers = [s for s, k in zip(schedulers, keep) if k]
        consumed += block
        round_index += 1
    if rng_rows is not None and schedulers:
        _writeback_stream_states(
            schedulers, rng_rows, np.ones(len(schedulers), dtype=bool)
        )


def _numpy_epidemic_block(
    informed: np.ndarray,
    iu: np.ndarray,
    iv: np.ndarray,
    counts: np.ndarray,
    finish: np.ndarray,
    n: int,
    masks: Optional[np.ndarray],
) -> None:
    a, block = iu.shape
    rows = np.arange(a)
    active = np.ones(a, dtype=bool)
    for i in range(block):
        u = iu[:, i]
        v = iv[:, i]
        informed_u = informed[rows, u]
        spread = (informed_u != informed[rows, v]) & active
        if not spread.any():
            continue
        touched = rows[spread]
        informed[touched, u[spread]] = 1
        informed[touched, v[spread]] = 1
        counts[spread] += 1
        if masks is None:
            hit = counts[spread] == n
        else:
            fresh = np.where(informed_u[spread] == 1, v[spread], u[spread])
            hit = masks[touched, fresh] == 1
        if hit.any():
            finish[touched[hit]] = i + 1
            active[touched[hit]] = False
            if not active.any():
                return


def _scalar_epidemic_block(
    informed: np.ndarray,
    draws: np.ndarray,
    directed_u: np.ndarray,
    directed_v: np.ndarray,
    counts: np.ndarray,
    finish: np.ndarray,
    n: int,
    masks: Optional[np.ndarray],
) -> None:
    a, block = draws.shape
    for r in range(a):
        inf = informed[r]
        stop = None if masks is None else masks[r]
        count = int(counts[r])
        row_u = directed_u.take(draws[r]).tolist()
        row_v = directed_v.take(draws[r]).tolist()
        for i in range(block):
            u = row_u[i]
            v = row_v[i]
            a_informed = inf[u]
            if a_informed != inf[v]:
                fresh = v if a_informed else u
                inf[u] = 1
                inf[v] = 1
                count += 1
                if (stop[fresh] if stop is not None else count == n):
                    finish[r] = i + 1
                    break
        counts[r] = count


# ----------------------------------------------------------------------
# All-pairs influence (full-information time)
# ----------------------------------------------------------------------
def run_influence_batch(
    graph: Graph,
    seeds: Sequence[int],
    max_steps: int,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> np.ndarray:
    """Steps until every node is influenced by every node, per trajectory.

    Influencer sets are packed 64 sources per uint64 word; one interaction
    is a ``⌈n/64⌉``-word OR applied to both endpoints.  Same return
    conventions, batching semantics and ``schedule`` behaviour as
    :func:`run_epidemic_batch`.
    """
    count = len(seeds)
    if schedule is not None and schedule.n_nodes != graph.n_nodes:
        raise ValueError("schedule universe does not match the graph")
    results = np.full(count, BUDGET_EXHAUSTED, dtype=np.int64)
    for chunk in iter_width_chunks(count, replica_batch):
        chunk_seeds = [int(seeds[t]) for t in chunk]
        _run_influence_stack(graph, chunk_seeds, max_steps, results, chunk.start, schedule)
    return results


def _run_influence_stack(
    graph: Graph,
    seeds: List[int],
    max_steps: int,
    results: np.ndarray,
    result_offset: int,
    schedule: Optional["TopologySchedule"] = None,
) -> None:
    n = graph.n_nodes
    kernel = get_influence_multi_kernel()
    if kernel is None and len(seeds) < _SCALAR_MAX_REPLICAS and schedule is None:
        # The tiny-stack fallback decodes draws through its stream's own
        # static tables, so dynamic runs take the generic path instead.
        _scalar_influence(graph, seeds, max_steps, results, result_offset)
        return
    schedulers = make_streams(graph, seeds)
    active = len(schedulers)
    words = (n + 63) // 64
    bits = np.zeros((active, n, words), dtype=np.uint64)
    node_ids = np.arange(n)
    bits[:, node_ids, node_ids // 64] = np.uint64(1) << (node_ids % 64).astype(np.uint64)
    # Buffered fancy-index |= would drop duplicate word indices; build the
    # full mask (low n bits set) word by word instead.
    full = np.array(
        [(1 << min(64, n - 64 * j)) - 1 for j in range(words)], dtype=np.uint64
    )
    flags = np.zeros((active, n), dtype=np.uint8)
    counts = np.zeros(active, dtype=np.int64)
    indices = np.arange(result_offset, result_offset + active, dtype=np.int64)
    epoch_kernel = get_influence_epoch_kernel()
    rng_rows = None if epoch_kernel is None else _pack_stream_states(schedulers)
    threads = kernel_thread_count()
    consumed = 0
    round_index = 0
    while schedulers and consumed < max_steps:
        block = min(block_size(round_index), max_steps - consumed)
        directed_u, directed_v, pair_count, block = _active_tables(
            graph, schedule, consumed, block
        )
        a = len(schedulers)
        finish = np.full(a, -1, dtype=np.int64)
        if rng_rows is not None:
            bound = 2 * graph.n_edges if pair_count is None else pair_count
            epoch_kernel(
                bits.ctypes.data,
                rng_rows.ctypes.data,
                directed_u.ctypes.data,
                directed_v.ctypes.data,
                bound,
                a,
                block,
                n,
                words,
                full.ctypes.data,
                flags.ctypes.data,
                counts.ctypes.data,
                finish.ctypes.data,
                threads,
            )
        else:
            draws = np.empty((a, block), dtype=np.int64)
            fill_draw_rows(schedulers, draws, pair_count)
            if kernel is not None:
                kernel(
                    bits.ctypes.data,
                    draws.ctypes.data,
                    directed_u.ctypes.data,
                    directed_v.ctypes.data,
                    a,
                    block,
                    n,
                    words,
                    full.ctypes.data,
                    flags.ctypes.data,
                    counts.ctypes.data,
                    finish.ctypes.data,
                )
            else:
                iu = directed_u.take(draws)
                iv = directed_v.take(draws)
                _numpy_influence_block(bits, iu, iv, full, flags, counts, finish, n)
        done = finish >= 0
        if done.any():
            results[indices[done]] = consumed + finish[done]
            keep = ~done
            if rng_rows is not None:
                rng_rows = np.ascontiguousarray(rng_rows[keep])
            bits = np.ascontiguousarray(bits[keep])
            flags = np.ascontiguousarray(flags[keep])
            counts = counts[keep]
            indices = indices[keep]
            schedulers = [s for s, k in zip(schedulers, keep) if k]
        consumed += block
        round_index += 1


def _numpy_influence_block(
    bits: np.ndarray,
    iu: np.ndarray,
    iv: np.ndarray,
    full: np.ndarray,
    flags: np.ndarray,
    counts: np.ndarray,
    finish: np.ndarray,
    n: int,
) -> None:
    a, block = iu.shape
    rows = np.arange(a)
    active = np.ones(a, dtype=bool)
    for i in range(block):
        u = iu[:, i]
        v = iv[:, i]
        merged = bits[rows, u] | bits[rows, v]
        bits[rows, u] = merged
        bits[rows, v] = merged
        newly_full = (merged == full).all(axis=1) & active
        if not newly_full.any():
            continue
        flag_u = flags[rows, u]
        flag_v = flags[rows, v]
        counts[newly_full] += (
            (1 - flag_u[newly_full].astype(np.int64))
            + (1 - flag_v[newly_full].astype(np.int64))
        )
        touched = rows[newly_full]
        flags[touched, u[newly_full]] = 1
        flags[touched, v[newly_full]] = 1
        hit = active & (counts == n)
        if hit.any():
            finish[hit] = i + 1
            active &= ~hit
            if not active.any():
                return


def _scalar_influence(
    graph: Graph,
    seeds: List[int],
    max_steps: int,
    results: np.ndarray,
    result_offset: int,
) -> None:
    """Tiny-stack fallback: Python-int bitsets on the same streams/schedule."""
    n = graph.n_nodes
    full_mask = (1 << n) - 1
    for offset, seed in enumerate(seeds):
        stream = make_streams(graph, [seed])[0]
        bitsets = [1 << v for v in range(n)]
        full_count = 1 if n == 1 else 0
        consumed = 0
        round_index = 0
        while consumed < max_steps:
            block = min(block_size(round_index), max_steps - consumed)
            iu = np.empty(block, dtype=np.int64)
            iv = np.empty(block, dtype=np.int64)
            stream.next_into(iu, iv)
            finish = -1
            for i, (u, v) in enumerate(zip(iu.tolist(), iv.tolist()), start=1):
                merged = bitsets[u] | bitsets[v]
                if merged == full_mask:
                    full_count += (bitsets[u] != full_mask) + (bitsets[v] != full_mask)
                bitsets[u] = merged
                bitsets[v] = merged
                if full_count == n:
                    finish = i
                    break
            if finish >= 0:
                results[result_offset + offset] = consumed + finish
                break
            consumed += block
            round_index += 1
