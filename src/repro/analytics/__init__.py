"""Replica-batched Monte-Carlo analytics engine.

Runs all ``R`` trajectories of a Monte-Carlo estimator — one-way
epidemics for ``B(G)``, all-pairs influence for ``T(G)``, population
walks for hitting and meeting times — in lockstep, each trajectory on a
private SplitMix64-child-seeded scheduler stream.  Results are a pure
function of ``(base seed, trajectory identity)``: bit-identical for any
replica-batch width and identical across the C-kernel, NumPy and scalar
execution paths.

The public estimators stay where they always were
(:mod:`repro.propagation.broadcast`, :mod:`repro.propagation.influence`,
:mod:`repro.walks.population_walk`); this package is the engine they are
wired onto, plus the batched multi-trial entry points the experiment
harness uses directly.
"""

from .epidemics import (
    BUDGET_EXHAUSTED,
    run_epidemic_batch,
    run_influence_batch,
    run_single_epidemic,
)
from .estimators import (
    batched_broadcast_estimates,
    batched_broadcast_samples,
    broadcast_trajectory_seed,
    select_sources,
)
from .streams import (
    TrajectoryStream,
    block_size,
    directed_pairs,
    iter_width_chunks,
    make_streams,
    resolve_base_seed,
)
from .walks import (
    default_walk_budget,
    run_hitting_batch,
    run_meeting_batch,
    run_single_hitting,
    run_single_meeting,
)

__all__ = [
    "BUDGET_EXHAUSTED",
    "TrajectoryStream",
    "batched_broadcast_estimates",
    "batched_broadcast_samples",
    "block_size",
    "broadcast_trajectory_seed",
    "directed_pairs",
    "default_walk_budget",
    "iter_width_chunks",
    "make_streams",
    "resolve_base_seed",
    "run_epidemic_batch",
    "run_hitting_batch",
    "run_influence_batch",
    "run_meeting_batch",
    "run_single_epidemic",
    "run_single_hitting",
    "run_single_meeting",
    "select_sources",
]
