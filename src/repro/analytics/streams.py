"""Per-trajectory interaction streams for the replica-batched engine.

Every Monte-Carlo estimator in :mod:`repro.analytics` runs ``R``
trajectories in lockstep, and each trajectory owns a private
:class:`TrajectoryStream` derived from a SplitMix64 child seed
(:mod:`repro.core.seeds`).  Determinism rests on two invariants:

1. **Seed purity** — the stream of trajectory ``t`` is a pure function of
   ``(base seed, domain tag, trajectory identity)``, never of how many
   trajectories run alongside it.  Replica-batch width, compaction of
   finished replicas and the scalar/NumPy/C execution paths therefore all
   produce bit-identical results.
2. **Fixed block schedule** — all engine paths consume a stream in the
   same global round schedule (1024, 2048, then 4096 forever), so a
   trajectory reads the same draw sequence whether it runs alone, in a
   width-3 wave or in a full stack.  (NumPy's bounded ``integers`` is
   additionally prefix-stable — one draw of ``n`` equals concatenated
   smaller draws — which makes the stream robust to the schedule itself.)

A ``TrajectoryStream`` is the *directed dialect* of the runtime's
unified :class:`~repro.runtime.source.InteractionSource`: one
bounded-integers draw over ``[0, 2m)`` per block, decoded (when needed
at all — the C kernels decode themselves) through the shared directed
endpoint tables of :mod:`repro.runtime.pairs`.  That is ~3 array
operations per block against the general scheduler's seven, and draws
are demand-sized — a trajectory that finishes after 900 steps has
sampled ~1.5k interactions, not a full pre-sample buffer.  Protocol
simulations keep the scheduler dialect (``RandomScheduler`` and its
refill contract) unchanged; both dialects are defined in
:mod:`repro.runtime.source`.

The warm-up schedule exists for exactly that reason: epidemics on
well-connected graphs finish in ``Θ(n log n)`` steps, so the first blocks
stay small and the block size only doubles up to 4096 for the
long-running tail (cycles, renitent constructions).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from ..runtime.pairs import directed_tables
from ..runtime.source import InteractionSource

_FIRST_BLOCK = 1024
_MAX_BLOCK = 4096

#: Default replica-batch wave width.  A wave's draws matrix is
#: ``width × block`` int64 (plus an equally sized iu/iv decode on the
#: NumPy fallback), so an uncapped wave of e.g. 20 trials × 24 sources ×
#: 8 repetitions would transiently allocate hundreds of MB.  512 replicas
#: amortize per-round overhead just as well and bound the footprint at
#: ~16 MB per matrix; results are width-invariant either way.
_DEFAULT_WAVE = 512


def block_size(round_index: int) -> int:
    """Size of the ``round_index``-th lockstep block (1024 doubling to 4096).

    The first block covers a clique-style ``Θ(n log n)`` epidemic at the
    benchmark sizes in a single draw; long-running trajectories (cycles,
    renitent constructions) double up to the maximal block.
    """
    return min(_FIRST_BLOCK << min(round_index, 2), _MAX_BLOCK)


def resolve_base_seed(rng: RngLike) -> int:
    """Reduce an ``rng`` argument to one 63-bit base seed.

    Integers pass through, ``None`` draws fresh OS entropy, and an
    existing :class:`numpy.random.Generator` contributes a single draw —
    so estimators called with a shared generator stay deterministic in
    that generator's state while their trajectories still get
    batch-width-independent child streams.
    """
    if rng is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0] >> 1)
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 1 << 63))
    return int(rng)


def directed_pairs(graph: Graph):
    """The ``2m`` ordered scheduler pairs as two parallel endpoint tables.

    Re-exported from :func:`repro.runtime.pairs.directed_tables`, the
    single home of the directed pair encoding.
    """
    return directed_tables(graph)


class TrajectoryStream(InteractionSource):
    """One trajectory's private, demand-sized interaction stream."""

    def __init__(self, graph: Graph, rng: RngLike) -> None:
        super().__init__(graph, rng=rng)

    def draws_into(self, out: np.ndarray, count: Optional[int] = None) -> None:
        """Fill a preallocated row with raw ordered-pair indices.

        The undecoded form: the C kernels decode indices through the
        directed endpoint tables themselves, saving two Python-level
        gathers per stream per block.  ``count`` overrides the draw bound
        (the dynamic-topology stacks pass the active epoch's ``2m_k``);
        the default is the stream graph's own ``2m``.
        """
        self.draw_pair_indices(out, count)

    def next_into(self, initiators: np.ndarray, responders: np.ndarray) -> None:
        """Fill two preallocated arrays with the next ``len`` ordered pairs."""
        self.draw_pairs_into(initiators, responders)


def make_streams(graph: Graph, seeds: Sequence[int]) -> List[TrajectoryStream]:
    """One private stream per trajectory seed."""
    return [TrajectoryStream(graph, np.random.default_rng(int(seed))) for seed in seeds]


def fill_draw_rows(
    streams: Sequence[TrajectoryStream],
    draws: np.ndarray,
    count: Optional[int] = None,
) -> None:
    """Fill row ``j`` of the ``(R, block)`` draws matrix from stream ``j``.

    ``count`` overrides the per-draw bound (active epoch's ``2m_k`` on
    dynamic topologies); ``None`` keeps each stream's own bound.
    """
    for j, stream in enumerate(streams):
        stream.draws_into(draws[j], count)


def iter_width_chunks(count: int, width: Optional[int]) -> Iterator[range]:
    """Split ``range(count)`` into replica-batch waves of at most ``width``.

    ``width=None`` applies the default wave cap (:data:`_DEFAULT_WAVE`).
    Because trajectory streams are private, the chunking affects
    scheduling and memory only — never the per-trajectory results.
    """
    if width is None:
        width = min(count, _DEFAULT_WAVE) or 1
    if width < 1:
        raise ValueError("replica_batch width must be positive")
    for lo in range(0, count, width):
        yield range(lo, min(lo + width, count))
