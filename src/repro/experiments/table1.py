"""Drivers that regenerate the rows of the paper's Table 1.

Table 1 summarises, per graph family, the expected stabilization time and
state complexity of (a) the identifier protocol (Theorem 21), (b) the fast
space-efficient protocol (Theorem 24), and (c) the 6-state token protocol
(Theorem 16), plus the trivial protocol on stars and the ``Ω(B(G))`` lower
bound on renitent graphs.  Each driver here produces the measured analogue
of one row group: for every protocol a sweep over population sizes, the
fitted growth exponent, and the analytic quantity the paper parameterises
the bound with (``B(G)``, ``H(G)``, conductance) so the two can be printed
side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.scaling import PowerLawFit
from ..graphs.graph import Graph
from ..graphs.properties import conductance, edge_expansion_estimate
from ..propagation.broadcast import broadcast_time_estimate
from ..walks.classic import worst_case_hitting_time
from .harness import (
    DegenerateSweepError,
    ProtocolSpec,
    SweepResult,
    default_protocol_specs,
    default_step_budget,
    star_protocol_spec,
    sweep_protocol_over_sizes,
)
from .reporting import render_table
from .workloads import Workload, get_workload


@dataclass
class Table1Row:
    """One measured row of Table 1: a protocol on a graph family."""

    family: str
    protocol: str
    paper_bound: str
    sizes: List[int]
    mean_steps: List[float]
    fitted_exponent: float
    fit_r_squared: float
    states_observed: int
    success_rate: float

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "protocol": self.protocol,
            "paper_bound": self.paper_bound,
            "sizes": "/".join(str(s) for s in self.sizes),
            "mean_steps": "/".join(f"{v:.0f}" for v in self.mean_steps),
            "exponent": round(self.fitted_exponent, 2),
            "r2": round(self.fit_r_squared, 3),
            "states": self.states_observed,
            "success": self.success_rate,
        }


@dataclass
class Table1RowGroup:
    """All protocols measured on one graph family, plus graph parameters."""

    family: str
    rows: List[Table1Row]
    graph_parameters: Dict[str, float]

    def render(self) -> str:
        """Fixed-width text rendering of this row group."""
        params = ", ".join(
            f"{key}={value:.3g}" for key, value in sorted(self.graph_parameters.items())
        )
        title = f"Table 1 — {self.family} ({params})"
        return render_table([row.as_dict() for row in self.rows], title=title)


def graph_parameters_for(graph: Graph, estimate_broadcast: bool = True, seed: int = 0) -> Dict[str, float]:
    """The analytic quantities Table 1 parameterises its bounds with."""
    params: Dict[str, float] = {
        "n": float(graph.n_nodes),
        "m": float(graph.n_edges),
        "D": float(graph.diameter()),
    }
    expansion = edge_expansion_estimate(graph)
    params["beta"] = expansion.value
    params["phi"] = conductance(graph, expansion.value)
    if graph.n_nodes <= 200:
        params["H(G)"] = worst_case_hitting_time(graph)
    if estimate_broadcast:
        params["B(G)"] = broadcast_time_estimate(
            graph, repetitions=4, max_sources=6, rng=seed
        ).value
    return params


def run_table1_family(
    family: str,
    sizes: Sequence[int],
    specs: Optional[Sequence[ProtocolSpec]] = None,
    repetitions: int = 3,
    seed: int = 0,
    step_budget_multiplier: float = 60.0,
    engine: str = "auto",
    backend: str = "auto",
    jobs: int = 1,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> Table1RowGroup:
    """Measure all protocols on one Table 1 graph family.

    Parameters
    ----------
    family:
        Workload name (see :mod:`repro.experiments.workloads`).
    sizes:
        Population sizes to sweep (at least two for the scaling fit).
    specs:
        Protocol specifications; defaults to the three Table 1 protocols.
    repetitions:
        Monte-Carlo repetitions per (protocol, size).
    seed:
        Base seed for reproducibility.
    step_budget_multiplier:
        Scales the per-run step budget (see ``default_step_budget``).
    engine / backend:
        Execution engine for the simulations (see
        :class:`~repro.core.simulator.Simulator`).  The default ``"auto"``
        uses the compiled engine where possible; measured values are
        identical to the reference interpreter for any given seed.
    jobs / cache / cache_dir:
        Forwarded to :func:`repro.orchestration.run_scenario`: worker
        processes to shard the trials over, and whether to reuse / persist
        finished shards in the result store.  Any combination produces the
        same measured values as the serial, uncached path.  Caching is off
        by default here because benchmarks call this driver to *measure*
        wall-clock.

    The sweep itself runs through the orchestration layer
    (:mod:`repro.orchestration`) when every spec is declarative (all the
    bundled spec builders are); raw-factory specs fall back to the
    in-process harness loop, which only supports ``jobs=1``.
    """
    if len(sizes) < 2:
        raise ValueError("need at least two sizes for a scaling fit")
    workload = get_workload(family)
    if specs is None:
        specs = default_protocol_specs()
    sweeps = _run_family_sweeps(
        family,
        sizes,
        specs,
        repetitions,
        seed,
        step_budget_multiplier,
        engine,
        backend,
        jobs,
        cache,
        cache_dir,
    )
    rows = [
        _row_from_sweep(family, spec, sweep) for spec, sweep in zip(specs, sweeps)
    ]
    from ..core.seeds import graph_seed

    reference_graph = workload.build(sizes[-1], seed=graph_seed(seed, len(sizes) - 1))
    return Table1RowGroup(
        family=family,
        rows=rows,
        graph_parameters=graph_parameters_for(reference_graph, seed=seed),
    )


def _run_family_sweeps(
    family: str,
    sizes: Sequence[int],
    specs: Sequence[ProtocolSpec],
    repetitions: int,
    seed: int,
    step_budget_multiplier: float,
    engine: str,
    backend: str,
    jobs: int,
    cache: bool,
    cache_dir: Optional[str],
) -> List[SweepResult]:
    """One sweep per spec, via the orchestrator when the specs allow it."""
    declarative = all(spec.spec_config is not None for spec in specs)
    if not declarative:
        if jobs != 1 or cache:
            raise ValueError(
                "jobs > 1 / cache=True require declarative protocol specs "
                "(built via the token/identifier/fast/star spec builders)"
            )
        workload = get_workload(family)
        return [
            sweep_protocol_over_sizes(
                spec,
                workload,
                sizes,
                repetitions=repetitions,
                seed=seed,
                max_steps_fn=lambda graph: default_step_budget(
                    graph, multiplier=step_budget_multiplier
                ),
                engine=engine,
                backend=backend,
            )
            for spec in specs
        ]
    from ..orchestration import Scenario, run_scenario

    scenario = Scenario.from_specs(
        name=f"table1-{family}",
        workload=family,
        sizes=sizes,
        specs=specs,
        repetitions=repetitions,
        seed=seed,
        step_budget_multiplier=step_budget_multiplier,
        engine=engine,
        backend=backend,
    )
    return run_scenario(scenario, jobs=jobs, cache=cache, cache_dir=cache_dir).sweeps


def _row_from_sweep(family: str, spec: ProtocolSpec, sweep: SweepResult) -> Table1Row:
    try:
        fit: Optional[PowerLawFit] = sweep.fit(log_exponent=0.0)
    except DegenerateSweepError:
        # Workload rounding can collapse nominally distinct sizes (tori
        # snap to square side lengths, hypercubes to powers of two); the
        # row is still reported, just without a growth exponent.
        fit = None
    return Table1Row(
        family=family,
        protocol=spec.name,
        paper_bound=spec.paper_bound,
        sizes=[m.n_nodes for m in sweep.measurements],
        mean_steps=sweep.mean_steps(),
        fitted_exponent=fit.exponent if fit is not None else float("nan"),
        fit_r_squared=fit.r_squared if fit is not None else float("nan"),
        states_observed=max(m.max_states_observed for m in sweep.measurements),
        success_rate=min(m.success_rate for m in sweep.measurements),
    )


def run_star_row(
    sizes: Sequence[int],
    repetitions: int = 5,
    seed: int = 0,
    engine: str = "auto",
    backend: str = "auto",
) -> Table1RowGroup:
    """The "Stars: O(1) time, O(1) states" row, using the trivial protocol."""
    return run_table1_family(
        "star",
        sizes,
        specs=[star_protocol_spec()],
        repetitions=repetitions,
        seed=seed,
        engine=engine,
        backend=backend,
    )


def expected_exponents() -> Dict[str, Dict[str, float]]:
    """The growth exponents (in ``n``, ignoring polylog factors) Table 1 predicts.

    Used by benchmarks and EXPERIMENTS.md as the "paper" column: e.g. on
    cliques the identifier protocol is ``Θ(n log n)`` → exponent 1, and the
    token protocol is ``Θ(n^2)`` → exponent 2.
    """
    return {
        "clique": {
            "identifier-broadcast": 1.0,
            "fast-space-efficient": 1.0,
            "token-6state": 2.0,
        },
        "dense-gnp": {
            "identifier-broadcast": 1.0,
            "fast-space-efficient": 1.0,
            "token-6state": 2.0,
        },
        "cycle": {
            # B(G) ∈ Θ(n^2) and H(G) ∈ Θ(n^2) on cycles.
            "identifier-broadcast": 2.0,
            "fast-space-efficient": 2.0,
            "token-6state": 3.0,
        },
        "star": {
            "star-trivial": 0.0,
        },
        "random-regular": {
            # Constant conductance: B(G) ∈ Θ(n log n), H(G) ∈ Θ(n).
            "identifier-broadcast": 1.0,
            "fast-space-efficient": 1.0,
            "token-6state": 2.0,
        },
        "torus": {
            # B(G) ∈ Θ(n^{3/2}), H(G) ∈ Θ(n log n) on 2-D tori.
            "identifier-broadcast": 1.5,
            "fast-space-efficient": 1.5,
            "token-6state": 2.0,
        },
        "renitent-star": {
            # The Lemma 38 construction with ℓ ∈ Θ(n), m ∈ Θ(n): B ∈ Θ(n^2).
            "identifier-broadcast": 2.0,
            "fast-space-efficient": 2.0,
            "token-6state": 2.0,
        },
    }
