"""Workload generators: the graph families evaluated in Table 1.

Each workload is a named factory mapping a target population size ``n`` (and
a seed, for random families) to a concrete graph.  The benchmark harness
sweeps these factories over a range of sizes; keeping them in one registry
makes the benchmark files declarative and lets the CLI list what is
available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..graphs import families, random_graphs
from ..graphs.graph import Graph
from ..graphs.renitent import RenitentConstruction, four_copies_construction

WorkloadFactory = Callable[[int, Optional[int]], Graph]


@dataclass(frozen=True)
class Workload:
    """A named graph-family workload.

    Attributes
    ----------
    name:
        Registry key (also used in benchmark output).
    description:
        What Table 1 row / graph family this corresponds to.
    factory:
        Callable ``(n, seed) -> Graph``.  The returned graph has *about*
        ``n`` nodes (families with structural constraints round as needed).
    regular:
        Whether the family produces regular graphs (affects the identifier
        protocol's parameterisation).
    """

    name: str
    description: str
    factory: WorkloadFactory
    regular: bool = False

    def build(self, n: int, seed: Optional[int] = None) -> Graph:
        """Construct the workload graph for the requested size."""
        return self.factory(n, seed)


def _clique(n: int, seed: Optional[int]) -> Graph:
    return families.clique(max(n, 2))


def _cycle(n: int, seed: Optional[int]) -> Graph:
    return families.cycle(max(n, 3))


def _star(n: int, seed: Optional[int]) -> Graph:
    return families.star(max(n, 2))


def _path(n: int, seed: Optional[int]) -> Graph:
    return families.path(max(n, 2))


def _torus(n: int, seed: Optional[int]) -> Graph:
    side = max(int(round(math.sqrt(max(n, 9)))), 3)
    return families.torus(side, side)


def _hypercube(n: int, seed: Optional[int]) -> Graph:
    dimension = max(int(round(math.log2(max(n, 2)))), 1)
    return families.hypercube(dimension)


def _dense_gnp(n: int, seed: Optional[int]) -> Graph:
    return random_graphs.erdos_renyi(max(n, 4), p=0.5, rng=seed)


def _sparse_gnp(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 8)
    p = min(4.0 * math.log(n) / n, 1.0)
    return random_graphs.erdos_renyi(n, p=p, rng=seed)


def _random_regular(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 6)
    if n % 2:
        n += 1
    return random_graphs.random_regular(n, degree=4, rng=seed)


def _lollipop(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 6)
    clique_size = max(n // 2, 3)
    return families.lollipop(clique_size, n - clique_size)


def _barbell(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 8)
    clique_size = max(n // 3, 3)
    bridge = max(n - 2 * clique_size, 1)
    return families.barbell(clique_size, bridge)


def _cycle_chords(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 8)
    return families.cycle_with_chords(n, chord_step=max(n // 4, 2))


def _pref_attach(n: int, seed: Optional[int]) -> Graph:
    return random_graphs.preferential_attachment(max(n, 4), attachments=2, rng=seed)


def _geometric(n: int, seed: Optional[int]) -> Graph:
    n = max(n, 8)
    # Radius ~ sqrt(4 ln n / (pi n)) keeps the graph connected w.h.p.
    # while staying sparse.
    radius = min(math.sqrt(4.0 * math.log(n) / (math.pi * n)), 1.0)
    return random_graphs.random_geometric(n, radius=radius, rng=seed)


def _renitent_star(n: int, seed: Optional[int]) -> Graph:
    return renitent_star_construction(n).graph


def renitent_star_construction(n: int) -> RenitentConstruction:
    """The Lemma 38 construction on a star base, sized to roughly ``n`` nodes.

    Four copies of a star on ``n/8`` nodes joined by paths of ``2ℓ`` edges
    with ``ℓ ≈ n/16``; total size ``≈ n/2 + n/2 = n``.  Broadcast and leader
    election on this family are both ``Θ(ℓ·m) = Θ(n^2)``-ish at these sizes.
    """
    n = max(n, 32)
    base = families.star(max(n // 8, 3))
    ell = max(n // 16, base.diameter(), 2)
    return four_copies_construction(base, ell)


_REGISTRY: Dict[str, Workload] = {}


def _register(workload: Workload) -> Workload:
    _REGISTRY[workload.name] = workload
    return workload


_register(Workload("clique", "Complete graph (Table 1: Cliques)", _clique, regular=True))
_register(Workload("cycle", "Cycle (Table 1: Regular, low conductance)", _cycle, regular=True))
_register(Workload("star", "Star (Table 1: Stars)", _star))
_register(Workload("path", "Path (sparse general graph)", _path))
_register(Workload("torus", "2D torus (Table 1: Regular)", _torus, regular=True))
_register(Workload("hypercube", "Hypercube (Table 1: Regular, expander)", _hypercube, regular=True))
_register(Workload("dense-gnp", "Erdős–Rényi G(n, 1/2) (Table 1: Dense random)", _dense_gnp))
_register(Workload("sparse-gnp", "Erdős–Rényi near the connectivity threshold", _sparse_gnp))
_register(Workload("random-regular", "Random 4-regular graph (Table 1: Regular)", _random_regular, regular=True))
_register(Workload("lollipop", "Lollipop (Table 1: General, worst-case hitting time)", _lollipop))
_register(Workload("barbell", "Barbell (Table 1: General, low conductance)", _barbell))
_register(Workload("cycle-chords", "Cycle with chords (Table 1: General)", _cycle_chords))
_register(Workload("pref-attach", "Barabási–Albert preferential attachment (scale-free hubs)", _pref_attach))
_register(Workload("geometric", "Random geometric graph on the unit square (sensor networks)", _geometric))
_register(Workload("renitent-star", "Lemma 38 renitent construction (Table 1: Renitent)", _renitent_star))


def get_workload(name: str) -> Workload:
    """Look up a workload by name; raises ``KeyError`` with suggestions."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    return _REGISTRY[name]


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    return sorted(_REGISTRY)
