"""Scaling-series ("figure") generators and CSV export.

The paper contains no data plots, but its Table 1 is naturally visualised
as a family of scaling curves: stabilization steps vs population size per
(protocol, graph family), broadcast time vs size per family, and space
usage vs size per protocol.  This module produces those series as plain
lists of dictionaries — ready to be dumped to CSV (:func:`write_csv`) or
rendered with any plotting tool — and is what the `repro-popsim`-driven
reproducibility workflow uses to archive raw numbers behind EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..analysis.scaling import fit_power_law
from ..core.seeds import graph_seed, measure_seed
from ..propagation.broadcast import broadcast_time_estimate
from ..walks.classic import worst_case_hitting_time
from .harness import (
    ProtocolSpec,
    default_protocol_specs,
    default_step_budget,
    measure_protocol_on_graph,
)
from .workloads import get_workload

PathLike = Union[str, Path]


def stabilization_scaling_series(
    family: str,
    sizes: Sequence[int],
    specs: Optional[Sequence[ProtocolSpec]] = None,
    repetitions: int = 3,
    seed: int = 0,
    step_budget_multiplier: float = 100.0,
    engine: str = "auto",
) -> List[Dict[str, object]]:
    """Stabilization steps vs population size for every protocol.

    Returns one row per (protocol, size) with mean/q90 steps, success rate
    and observed state counts — the raw data behind a Table 1 row group.
    """
    workload = get_workload(family)
    if specs is None:
        specs = default_protocol_specs()
    rows: List[Dict[str, object]] = []
    for index, size in enumerate(sizes):
        graph = workload.build(size, seed=graph_seed(seed, index))
        budget = default_step_budget(graph, multiplier=step_budget_multiplier)
        for spec in specs:
            measurement = measure_protocol_on_graph(
                spec,
                graph,
                repetitions=repetitions,
                seed=measure_seed(seed, index),
                max_steps=budget,
                engine=engine,
            )
            rows.append(
                {
                    "family": family,
                    "protocol": spec.name,
                    "n": graph.n_nodes,
                    "m": graph.n_edges,
                    "mean_steps": measurement.stabilization_steps.mean,
                    "q90_steps": measurement.stabilization_steps.q90,
                    "success_rate": measurement.success_rate,
                    "states_observed": measurement.max_states_observed,
                }
            )
    return rows


def broadcast_scaling_series(
    families: Sequence[str],
    sizes: Sequence[int],
    repetitions: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured ``B(G)`` vs population size for the given workload families."""
    rows: List[Dict[str, object]] = []
    for family in families:
        workload = get_workload(family)
        for index, size in enumerate(sizes):
            graph = workload.build(size, seed=graph_seed(seed, index))
            estimate = broadcast_time_estimate(
                graph, repetitions=repetitions, max_sources=6, rng=measure_seed(seed, index)
            )
            rows.append(
                {
                    "family": family,
                    "n": graph.n_nodes,
                    "m": graph.n_edges,
                    "broadcast_time": estimate.value,
                }
            )
    return rows


def hitting_time_scaling_series(
    families: Sequence[str],
    sizes: Sequence[int],
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Exact worst-case hitting time ``H(G)`` vs size per family."""
    rows: List[Dict[str, object]] = []
    for family in families:
        workload = get_workload(family)
        for index, size in enumerate(sizes):
            graph = workload.build(size, seed=graph_seed(seed, index))
            rows.append(
                {
                    "family": family,
                    "n": graph.n_nodes,
                    "hitting_time": worst_case_hitting_time(graph),
                }
            )
    return rows


def fit_series_exponents(
    rows: Sequence[Dict[str, object]],
    value_key: str,
    group_keys: Sequence[str] = ("family", "protocol"),
) -> List[Dict[str, object]]:
    """Fit a power law in ``n`` to each group of a scaling series.

    Groups rows by ``group_keys``, fits ``value_key ~ C·n^a`` and returns
    one summary row per group with the fitted exponent and R².
    """
    groups: Dict[tuple, List[Dict[str, object]]] = {}
    for row in rows:
        key = tuple(row.get(k) for k in group_keys if k in row)
        groups.setdefault(key, []).append(row)
    summaries: List[Dict[str, object]] = []
    for key, members in groups.items():
        sizes = [float(member["n"]) for member in members]
        values = [float(member[value_key]) for member in members]
        if len(sizes) < 2:
            continue
        fit = fit_power_law(sizes, values)
        summary: Dict[str, object] = {
            k: v for k, v in zip([g for g in group_keys if g in members[0]], key)
        }
        summary.update(
            {
                "points": len(members),
                "exponent": fit.exponent,
                "constant": fit.constant,
                "r_squared": fit.r_squared,
            }
        )
        summaries.append(summary)
    return summaries


def write_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write a scaling series to CSV (columns = union of row keys)."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty series")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return destination


def write_json(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write a scaling series to JSON (list of row objects)."""
    rows = list(rows)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(rows, indent=2, default=float))
    return destination


def read_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read a series back from CSV (values come back as strings)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))
