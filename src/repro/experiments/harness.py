"""Experiment harness: repeated measurements, sweeps and scaling fits.

This is the layer the benchmarks and the CLI are built on.  It knows how to

* instantiate each of the paper's protocols for a given graph (the fast
  protocol needs a broadcast-time estimate, the identifier protocol needs
  ``n``),
* run repeated leader-election measurements and aggregate them,
* sweep a workload over a range of population sizes and fit the measured
  stabilization times to a power law for comparison against Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..analysis.scaling import PowerLawFit, fit_power_law
from ..core.protocol import PopulationProtocol
from ..core.seeds import graph_seed, measure_seed, trial_seed
from ..core.simulator import SimulationResult, default_max_steps
from ..graphs.graph import Graph
from ..propagation.broadcast import broadcast_time_estimate
from ..protocols.fast import FastLeaderElection
from ..protocols.identifier import IdentifierLeaderElection
from ..protocols.star import StarLeaderElection
from ..protocols.tokens import TokenLeaderElection
from .workloads import Workload

ProtocolFactory = Callable[[Graph, Optional[int]], PopulationProtocol]
ProtocolBatchFactory = Callable[
    [Graph, Sequence[Optional[int]]], List[PopulationProtocol]
]


@dataclass(frozen=True)
class ProtocolSpec:
    """A named way of instantiating a protocol for a graph.

    ``spec_config`` is the declarative form of the spec — the builder name
    plus the keyword arguments that produced it.  The orchestrator
    (:mod:`repro.orchestration`) ships this plain data to worker processes
    and hashes it into scenario cache keys; specs constructed from a raw
    factory (``spec_config=None``) cannot be orchestrated or cached.

    ``batch_factory``, when present, instantiates one protocol per trial
    seed in a single call and MUST produce, for each seed, exactly the
    protocol ``factory`` would produce for that seed alone.  The fast
    protocol uses it to run all trials' ``B(G)`` epidemics in one
    replica-batched stack (:mod:`repro.analytics`); the per-seed purity
    requirement is what keeps orchestrator shards bit-identical to the
    serial path.
    """

    name: str
    factory: ProtocolFactory
    paper_bound: str = ""
    spec_config: Optional[tuple] = None
    batch_factory: Optional[ProtocolBatchFactory] = None


def token_protocol_spec() -> ProtocolSpec:
    """Theorem 16: the 6-state token protocol."""
    return ProtocolSpec(
        name="token-6state",
        factory=lambda graph, seed: TokenLeaderElection(),
        paper_bound="O(H(G) n log n) steps, O(1) states",
        spec_config=("token", ()),
    )


def identifier_protocol_spec(identifier_bits: Optional[int] = None) -> ProtocolSpec:
    """Theorem 21: the identifier-broadcast protocol."""

    def factory(graph: Graph, seed: Optional[int]) -> PopulationProtocol:
        return IdentifierLeaderElection(
            graph.n_nodes,
            identifier_bits=identifier_bits,
            regular=graph.is_regular(),
        )

    return ProtocolSpec(
        name="identifier-broadcast",
        factory=factory,
        paper_bound="O(B(G) + n log n) steps, O(n^4) states",
        spec_config=("identifier", (("identifier_bits", identifier_bits),)),
    )


def fast_protocol_spec(
    tau: float = 0.5,
    h_offset: int = 1,
    alpha: float = 3.0,
    broadcast_repetitions: int = 4,
) -> ProtocolSpec:
    """Theorem 24: the fast space-efficient protocol.

    Uses simulation-scale constants by default (see
    :class:`~repro.protocols.clocks.ClockParameters`); pass ``h_offset=8``
    and ``tau>=1`` for the paper's parameterisation.
    """

    def build(graph: Graph, broadcast_time: float) -> PopulationProtocol:
        return FastLeaderElection.for_graph(
            graph,
            broadcast_time=max(broadcast_time, 1.0),
            tau=tau,
            h_offset=h_offset,
            alpha=alpha,
        )

    def factory(graph: Graph, seed: Optional[int]) -> PopulationProtocol:
        estimate = broadcast_time_estimate(
            graph,
            repetitions=broadcast_repetitions,
            max_sources=6,
            rng=seed,
        )
        return build(graph, estimate.value)

    def batch_factory(
        graph: Graph, seeds: Sequence[Optional[int]]
    ) -> List[PopulationProtocol]:
        # One replica stack for every trial's sources × repetitions
        # epidemics.  Each trial's estimate is a pure function of its own
        # seed (trajectory seeds derive from it), so entry i is
        # bit-identical to factory(graph, seeds[i]).
        if graph.n_nodes == 1:
            return [build(graph, 0.0) for _ in seeds]
        from ..analytics.estimators import batched_broadcast_estimates
        from ..analytics.streams import resolve_base_seed
        from ..propagation.broadcast import default_broadcast_budget

        bases = [resolve_base_seed(seed) for seed in seeds]
        estimates = batched_broadcast_estimates(
            graph,
            bases,
            repetitions=broadcast_repetitions,
            max_sources=6,
            max_steps=default_broadcast_budget(graph),
        )
        return [build(graph, value) for value, _, _, _ in estimates]

    return ProtocolSpec(
        name="fast-space-efficient",
        factory=factory,
        paper_bound="O(B(G) log n) steps, O(log^2 n) states",
        spec_config=(
            "fast",
            (
                ("alpha", alpha),
                ("broadcast_repetitions", broadcast_repetitions),
                ("h_offset", h_offset),
                ("tau", tau),
            ),
        ),
        batch_factory=batch_factory,
    )


def star_protocol_spec() -> ProtocolSpec:
    """The trivial constant-state protocol for stars (Table 1, last row)."""
    return ProtocolSpec(
        name="star-trivial",
        factory=lambda graph, seed: StarLeaderElection(),
        paper_bound="O(1) steps, O(1) states (stars only)",
        spec_config=("star", ()),
    )


def default_protocol_specs() -> List[ProtocolSpec]:
    """The three protocols compared throughout Table 1."""
    return [token_protocol_spec(), identifier_protocol_spec(), fast_protocol_spec()]


@dataclass
class Measurement:
    """Aggregated repeated runs of one protocol on one graph."""

    protocol_name: str
    graph_name: str
    n_nodes: int
    n_edges: int
    stabilization_steps: SummaryStatistics
    certified_steps: SummaryStatistics
    success_rate: float
    max_states_observed: int
    state_space_size: Optional[int]
    results: List[SimulationResult] = field(default_factory=list)
    #: Total wall-clock seconds spent executing the trials (sum of the
    #: per-trial ``wall_time_seconds``; replicas run in a batched stack
    #: report the stack's wall time split evenly).  Provenance, not a
    #: measured value — excluded from canonical scenario aggregates.
    wall_time_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Flat dictionary used by the report renderer."""
        return {
            "protocol": self.protocol_name,
            "graph": self.graph_name,
            "n": self.n_nodes,
            "m": self.n_edges,
            "mean_steps": self.stabilization_steps.mean,
            "q90_steps": self.stabilization_steps.q90,
            "success_rate": self.success_rate,
            "states_observed": self.max_states_observed,
            "state_space_size": self.state_space_size,
            "wall_time_seconds": self.wall_time_seconds,
        }


#: JSON-native per-trial record, the unit the orchestrator's result store
#: persists.  Aggregating these in global trial order reproduces the
#: in-process :class:`Measurement` bit for bit.
TrialRecord = dict


def trial_record_from_result(result: SimulationResult) -> TrialRecord:
    """Reduce one :class:`SimulationResult` to its JSON-native record.

    ``wall_time_seconds`` (added in result schema v3) is provenance: it
    is persisted per trial and surfaced through
    :attr:`Measurement.wall_time_seconds`, but never enters canonical
    scenario aggregates, which must stay byte-identical across execution
    plans.
    """
    return {
        "stabilization_step": int(result.stabilization_step),
        "certified_step": int(result.certified_step),
        "steps_executed": int(result.steps_executed),
        "stabilized": bool(result.stabilized),
        "leaders": int(result.leaders),
        "distinct_states": int(result.distinct_states_observed),
        "wall_time_seconds": float(result.wall_time_seconds),
    }


TRIAL_RECORD_FIELDS = (
    "stabilization_step",
    "certified_step",
    "steps_executed",
    "stabilized",
    "leaders",
    "distinct_states",
    "wall_time_seconds",
)


def measurement_from_records(
    protocol_name: str,
    graph: Graph,
    records: Sequence[TrialRecord],
    state_space_size: Optional[int],
    results: Optional[List[SimulationResult]] = None,
) -> Measurement:
    """Aggregate per-trial records (in global trial order) into a measurement."""
    if not records:
        raise ValueError("need at least one trial record")
    stabilization = [float(max(r["stabilization_step"], 1)) for r in records]
    certified = [float(max(r["certified_step"], 1)) for r in records]
    successes = sum(int(r["stabilized"] and r["leaders"] == 1) for r in records)
    wall = sum(float(r.get("wall_time_seconds", 0.0)) for r in records)
    return Measurement(
        protocol_name=protocol_name,
        graph_name=graph.name,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        stabilization_steps=summarize_samples(stabilization),
        certified_steps=summarize_samples(certified),
        success_rate=successes / len(records),
        max_states_observed=max(r["distinct_states"] for r in records),
        state_space_size=state_space_size,
        results=list(results) if results is not None else [],
        wall_time_seconds=wall,
    )


def run_measurement_trials(
    spec: ProtocolSpec,
    graph: Graph,
    trial_indices: Sequence[int],
    seed: int = 0,
    max_steps: Optional[int] = None,
    engine: str = "auto",
    backend: str = "auto",
    schedule: Optional["TopologySchedule"] = None,
    threads: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Tuple[List[SimulationResult], Optional[int]]:
    """Execute an arbitrary subset of a measurement's trials.

    Trial ``t`` receives the scheduler seed ``trial_seed(seed, t)`` — a
    pure function of the measurement base seed and the *global* trial
    index (see :mod:`repro.core.seeds`), so any partition of the index set
    (batches, shards, worker processes) reproduces exactly the trials a
    serial full run would execute.  With a ``schedule`` every trial runs
    on the time-varying topology (the same schedule object across trials;
    trial seeds only drive the interaction sampling, so shard invariance
    is untouched).

    Returns the per-trial results plus the protocol's declared state-space
    size (the second half of a :class:`Measurement`; the orchestrator
    persists it alongside the trial records).
    """
    run_seeds = [trial_seed(seed, index) for index in trial_indices]
    return run_trials_with_seeds(
        spec,
        graph,
        run_seeds,
        max_steps=max_steps,
        engine=engine,
        backend=backend,
        schedule=schedule,
        threads=threads,
        shards=shards,
        shard_workers=shard_workers,
    )


def run_trials_with_seeds(
    spec: ProtocolSpec,
    graph: Graph,
    run_seeds: Sequence[int],
    max_steps: Optional[int] = None,
    engine: str = "auto",
    backend: str = "auto",
    schedule: Optional["TopologySchedule"] = None,
    threads: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Tuple[List[SimulationResult], Optional[int]]:
    """Execute trials whose scheduler seeds are already derived.

    This is the seed-level entry point the orchestrator ships to its
    worker shards (a unit plan carries explicit seeds, so workers never
    re-derive them); :func:`run_measurement_trials` is the index-level
    wrapper.  Protocol instantiation still happens here — the fast
    protocol's ``batch_factory`` runs all trials' ``B(G)`` epidemics in
    one replica stack — and execution goes through a single
    :class:`~repro.runtime.plan.ExecutionPlan`: one engine resolution,
    one shared table set, and by default the replica-batched stack that
    advances every trial of the measurement in lockstep blocks
    (heterogeneous protocol instances, dynamic topologies and the
    reference engine fall back to per-trial execution inside the same
    plan).  Results are bit-identical for every execution strategy.
    """
    run_seeds = list(run_seeds)
    if spec.batch_factory is not None and len(run_seeds) > 1:
        protocols = spec.batch_factory(graph, run_seeds)
    else:
        protocols = [spec.factory(graph, run_seed) for run_seed in run_seeds]
    state_space = protocols[0].state_space_size() if protocols else None
    if not protocols:
        return [], state_space
    from ..runtime import compile_plan, execute_plan

    budget = max_steps if max_steps is not None else default_max_steps(graph.n_nodes)
    plan = compile_plan(
        protocols,
        graph,
        run_seeds,
        max_steps=budget,
        engine=engine,
        backend=backend,
        schedule=schedule,
        threads=threads,
        shards=shards,
        shard_workers=shard_workers,
    )
    return execute_plan(plan), state_space


def measure_protocol_on_graph(
    spec: ProtocolSpec,
    graph: Graph,
    repetitions: int = 5,
    seed: int = 0,
    max_steps: Optional[int] = None,
    keep_results: bool = False,
    engine: str = "auto",
    backend: str = "auto",
    schedule: Optional["TopologySchedule"] = None,
    threads: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Measurement:
    """Run ``spec`` on ``graph`` ``repetitions`` times and aggregate.

    ``engine`` selects the execution engine (see
    :class:`~repro.core.simulator.Simulator`); results are identical across
    engines for a given ``seed``.  The repetitions execute as one
    :class:`~repro.runtime.plan.ExecutionPlan`: with a non-reference
    engine, trials whose protocol instances share a transition table
    (equal ``compile_key``) advance together through the replica-batched
    stack (:mod:`repro.runtime.execute`), reusing one compiled table set
    across all trials.

    Trial ``t`` runs with seed ``trial_seed(seed, t)``, a pure function of
    the base seed and the global trial index — independent of batch size
    and of how the orchestrator shards the trials (see
    :mod:`repro.core.seeds`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    results, state_space = run_measurement_trials(
        spec,
        graph,
        range(repetitions),
        seed=seed,
        max_steps=max_steps,
        engine=engine,
        backend=backend,
        schedule=schedule,
        threads=threads,
        shards=shards,
        shard_workers=shard_workers,
    )
    return measurement_from_records(
        spec.name,
        graph,
        [trial_record_from_result(result) for result in results],
        state_space,
        results=results if keep_results else None,
    )


class DegenerateSweepError(ValueError):
    """The sweep grid cannot support a scaling fit (see :meth:`SweepResult.fit`)."""


@dataclass
class SweepResult:
    """A protocol measured across a sweep of population sizes."""

    protocol_name: str
    workload_name: str
    sizes: List[int]
    measurements: List[Measurement]

    def mean_steps(self) -> List[float]:
        """Mean stabilization steps per size."""
        return [m.stabilization_steps.mean for m in self.measurements]

    def fit(self, log_exponent: Optional[float] = 0.0) -> PowerLawFit:
        """Power-law fit of mean stabilization steps vs the actual graph sizes.

        Raises :class:`DegenerateSweepError` when the grid cannot support a
        fit — fewer than two *distinct* actual sizes (workload rounding can
        collapse nominally different sizes, e.g. hypercubes), or a
        non-positive / non-finite mean (a size whose every trial exhausted
        the budget at step 0).  Without the guard these cases surface as a
        numpy ``lstsq`` warning and a garbage exponent.
        """
        actual_sizes = [m.n_nodes for m in self.measurements]
        means = self.mean_steps()
        if len(set(actual_sizes)) < 2:
            raise DegenerateSweepError(
                f"{self.protocol_name} on {self.workload_name}: scaling fit needs at "
                f"least two distinct graph sizes, got {sorted(set(actual_sizes))} "
                f"(requested grid {self.sizes})"
            )
        bad = [
            (size, mean)
            for size, mean in zip(actual_sizes, means)
            if not math.isfinite(mean) or mean <= 0.0
        ]
        if bad:
            raise DegenerateSweepError(
                f"{self.protocol_name} on {self.workload_name}: scaling fit needs "
                f"positive finite mean steps at every size; offending (size, mean) "
                f"pairs: {bad}"
            )
        return fit_power_law(actual_sizes, means, log_exponent=log_exponent)


def sweep_protocol_over_sizes(
    spec: ProtocolSpec,
    workload: Workload,
    sizes: Sequence[int],
    repetitions: int = 3,
    seed: int = 0,
    max_steps_fn: Optional[Callable[[Graph], int]] = None,
    engine: str = "auto",
    backend: str = "auto",
    threads: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> SweepResult:
    """Measure a protocol on a workload for each population size in ``sizes``.

    Size index ``i`` builds its graph with ``graph_seed(seed, i)`` and
    measures with base seed ``measure_seed(seed, i)`` (see
    :mod:`repro.core.seeds`) — the same derivation the parallel
    orchestrator uses, so orchestrated sweeps reproduce this function's
    measurements exactly.
    """
    measurements: List[Measurement] = []
    for index, size in enumerate(sizes):
        graph = workload.build(size, seed=graph_seed(seed, index))
        max_steps = max_steps_fn(graph) if max_steps_fn is not None else None
        measurements.append(
            measure_protocol_on_graph(
                spec,
                graph,
                repetitions=repetitions,
                seed=measure_seed(seed, index),
                max_steps=max_steps,
                engine=engine,
                backend=backend,
                threads=threads,
                shards=shards,
                shard_workers=shard_workers,
            )
        )
    return SweepResult(
        protocol_name=spec.name,
        workload_name=workload.name,
        sizes=list(sizes),
        measurements=measurements,
    )


def compare_protocols_on_graph(
    specs: Sequence[ProtocolSpec],
    graph: Graph,
    repetitions: int = 3,
    seed: int = 0,
    max_steps: Optional[int] = None,
    engine: str = "auto",
    backend: str = "auto",
) -> Dict[str, Measurement]:
    """Measure several protocols on the same graph (the per-row comparison)."""
    return {
        spec.name: measure_protocol_on_graph(
            spec,
            graph,
            repetitions=repetitions,
            seed=seed,
            max_steps=max_steps,
            engine=engine,
            backend=backend,
        )
        for spec in specs
    }


def default_step_budget(graph: Graph, multiplier: float = 60.0) -> int:
    """A step budget safely above the constant-state protocol's bound.

    ``multiplier · n^2 · log n`` covers ``O(H(G)·n log n)`` on the benchmark
    families at benchmark sizes (regular and dense graphs have
    ``H(G) ∈ O(n^2)`` / ``O(n)``); pathological families (lollipops) are
    given more room by the caller.
    """
    n = graph.n_nodes
    return int(multiplier * n * n * max(math.log(max(n, 2)), 1.0)) + 10_000
