"""Plain-text rendering of experiment results.

The paper's evaluation artefact is a table (Table 1); the harness renders
its measurements in the same spirit: one row per (graph family, protocol),
columns for population size, measured steps, fitted exponent and the paper
bound the row should be compared against.  Everything is plain
fixed-width / markdown text so benchmark output is readable in CI logs and
can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_number(value: object, precision: int = 1) -> str:
    """Human-friendly formatting: thousands separators, short floats."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value:.2e}"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body: List[List[str]] = []
    for row in rows:
        body.append([format_number(row.get(c)) for c in columns])
    widths = [len(h) for h in header]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    parts.append("  ".join("-" * w for w in widths))
    for line in body:
        parts.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(parts)


def render_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_number(row.get(c)) for c in columns) + " |"
        )
    return "\n".join(lines)


def render_comparison(
    title: str,
    measurements: Mapping[str, object],
    extra_columns: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> str:
    """Render a protocol-comparison block (one graph, several protocols)."""
    rows = []
    for name, measurement in measurements.items():
        row = dict(measurement.as_dict()) if hasattr(measurement, "as_dict") else dict(measurement)
        if extra_columns and name in extra_columns:
            row.update(extra_columns[name])
        rows.append(row)
    return render_table(rows, title=title)
