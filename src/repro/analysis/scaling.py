"""Scaling-law fits for comparing measurements against asymptotic bounds.

The paper's results are asymptotic (``Θ(n log n)``, ``Θ(n^2)``,
``Θ(B(G) log n)`` ...).  To reproduce the *shape* of Table 1 we measure a
quantity over a sweep of ``n``, fit ``T(n) ≈ C · n^a · (log n)^b`` on a
log–log scale, and compare the fitted exponent against the paper's.  The
fit with an explicit polylog correction term keeps ``Θ(n log n)`` from
being misread as ``n^{1.1}`` at small ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``T(n) = C · n^exponent`` (optionally ``· log^log_exponent n``).

    Attributes
    ----------
    exponent:
        The fitted power of ``n``.
    log_exponent:
        The fitted (or fixed) power of ``ln n``.
    constant:
        The multiplicative constant ``C``.
    r_squared:
        Coefficient of determination of the fit in log space.
    """

    exponent: float
    log_exponent: float
    constant: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted value at population size ``n``."""
        if n <= 1:
            raise ValueError("prediction requires n > 1")
        return self.constant * n**self.exponent * math.log(n) ** self.log_exponent


def fit_power_law(
    sizes: Sequence[float],
    values: Sequence[float],
    log_exponent: Optional[float] = 0.0,
) -> PowerLawFit:
    """Fit ``values ≈ C · sizes^a · (ln sizes)^b`` in log space.

    Parameters
    ----------
    sizes, values:
        Matching sequences of positive numbers (at least two points, three
        when ``log_exponent`` is fitted).
    log_exponent:
        If a number, the power of ``ln n`` is fixed to that value and only
        ``a`` and ``C`` are fitted.  If ``None``, ``b`` is fitted as well.
    """
    x = np.asarray(list(sizes), dtype=np.float64)
    y = np.asarray(list(values), dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("sizes and values must have the same length")
    if x.size < 2:
        raise ValueError("need at least two points to fit a power law")
    if (x <= 1).any() or (y <= 0).any():
        raise ValueError("sizes must exceed 1 and values must be positive")
    log_x = np.log(x)
    log_log_x = np.log(np.log(x))
    log_y = np.log(y)

    if log_exponent is None:
        if x.size < 3:
            raise ValueError("need at least three points to also fit the log power")
        design = np.column_stack([log_x, log_log_x, np.ones_like(log_x)])
    else:
        design = np.column_stack([log_x, np.ones_like(log_x)])
        log_y = log_y - float(log_exponent) * log_log_x

    coeffs, _, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
    predictions = design @ coeffs
    residual = log_y - predictions
    total = log_y - log_y.mean()
    denom = float(total @ total)
    r_squared = 1.0 - float(residual @ residual) / denom if denom > 0 else 1.0

    if log_exponent is None:
        exponent, fitted_log_exponent, intercept = coeffs
    else:
        exponent, intercept = coeffs
        fitted_log_exponent = float(log_exponent)
    return PowerLawFit(
        exponent=float(exponent),
        log_exponent=float(fitted_log_exponent),
        constant=float(math.exp(intercept)),
        r_squared=float(r_squared),
    )


def exponent_matches(
    fit: PowerLawFit, expected_exponent: float, tolerance: float = 0.35
) -> bool:
    """Whether the fitted exponent is within ``tolerance`` of the paper's.

    The default tolerance is deliberately loose: at the population sizes a
    pure-Python simulator can reach, lower-order terms shift measured
    exponents by a few tenths.  What the reproduction checks is the
    *ordering* of protocols and the rough growth rate, per the shape
    criterion in DESIGN.md.
    """
    return abs(fit.exponent - expected_exponent) <= tolerance


def compare_orderings(values_by_name: dict) -> list:
    """Sort ``{name: measured value}`` ascending — the "who wins" check."""
    return sorted(values_by_name, key=lambda name: values_by_name[name])


def normalized_growth(sizes: Sequence[float], values: Sequence[float]) -> list:
    """Successive ratios ``T(n_{i+1}) / T(n_i)`` — a constant-free shape check."""
    x = list(sizes)
    y = list(values)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need matching sequences with at least two points")
    return [y[i + 1] / y[i] for i in range(len(y) - 1)]
