"""Probability toolkit and statistical estimators (Section 2.3 + harness)."""

from .concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    edge_sequence_expected_steps,
    edge_sequence_lower_tail,
    edge_sequence_upper_tail,
    geometric_sum_deviation_rate,
    geometric_sum_lower_tail,
    geometric_sum_upper_tail,
    harmonic_number,
    poisson_lower_tail,
    poisson_upper_tail,
    walds_identity,
)
from .estimators import (
    SummaryStatistics,
    bootstrap_mean_interval,
    empirical_tail_probability,
    geometric_mean,
    ratio_to_bound,
    summarize_samples,
)
from .scaling import (
    PowerLawFit,
    compare_orderings,
    exponent_matches,
    fit_power_law,
    normalized_growth,
)

__all__ = [
    "PowerLawFit",
    "SummaryStatistics",
    "bootstrap_mean_interval",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "compare_orderings",
    "edge_sequence_expected_steps",
    "edge_sequence_lower_tail",
    "edge_sequence_upper_tail",
    "empirical_tail_probability",
    "exponent_matches",
    "fit_power_law",
    "geometric_mean",
    "geometric_sum_deviation_rate",
    "geometric_sum_lower_tail",
    "geometric_sum_upper_tail",
    "harmonic_number",
    "normalized_growth",
    "poisson_lower_tail",
    "poisson_upper_tail",
    "ratio_to_bound",
    "summarize_samples",
    "walds_identity",
]
