"""Statistical estimators used by the experiment harness.

The paper's claims are about expected values and with-high-probability
bounds of random stabilization/broadcast times.  The harness repeats each
measurement several times and needs: sample means with confidence
intervals, quantiles, and helpers for comparing measured values against
analytic bounds (the "paper-vs-measured" columns of EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of a sample of repeated measurements.

    Attributes
    ----------
    n_samples:
        Number of repetitions.
    mean, std:
        Sample mean and (unbiased) standard deviation.
    ci_low, ci_high:
        A normal-approximation 95% confidence interval for the mean.
    median, minimum, maximum, q90:
        Robust location/scale descriptors.
    """

    n_samples: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    median: float
    minimum: float
    maximum: float
    q90: float

    def as_dict(self) -> dict:
        """Plain-dict view for report rendering."""
        return {
            "n_samples": self.n_samples,
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "q90": self.q90,
        }


def summarize_samples(samples: Sequence[float]) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for a non-empty sample."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    half_width = 1.96 * std / math.sqrt(data.size) if data.size > 1 else 0.0
    return SummaryStatistics(
        n_samples=int(data.size),
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        median=float(np.median(data)),
        minimum=float(data.min()),
        maximum=float(data.max()),
        q90=float(np.quantile(data, 0.9)),
    )


def empirical_tail_probability(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples ``>= threshold`` — for checking w.h.p. claims."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot compute a tail probability of an empty sample")
    return float((data >= threshold).mean())


def ratio_to_bound(measured: float, bound: float) -> float:
    """``measured / bound`` — <= 1 means the bound holds with slack."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    return measured / bound


def geometric_mean(samples: Iterable[float]) -> float:
    """Geometric mean of positive samples (used for ratio aggregation)."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if (data <= 0).any():
        raise ValueError("geometric mean requires positive samples")
    return float(np.exp(np.log(data).mean()))


def bootstrap_mean_interval(
    samples: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple:
    """Bootstrap confidence interval for the mean (non-normal samples).

    Stabilization times are heavy-tailed on low-conductance graphs, so the
    harness uses the bootstrap interval when sample sizes are small.
    """
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))
