"""Probability-theoretic tools of Section 2.3 of the paper.

These are the tail bounds the paper's analysis is built on:

* Lemma 1 — Poisson tail bounds,
* Lemma 2 — multiplicative Chernoff bounds for sums of Bernoulli variables,
* Lemma 3 — Janson's tail bounds for sums of independent geometric
  variables,
* Lemma 4 — Wald's identity for random sums,
* Lemma 5 — the bound on the time the scheduler needs to sample a fixed
  edge sequence in order (a direct corollary of Lemma 3).

The functions return the *bound* (a probability upper bound or an expected
value), so tests and benchmarks can compare them against Monte-Carlo
estimates and verify the inequalities empirically.
"""

from __future__ import annotations

import math
from typing import Sequence


def _validate_probability_inputs(value: float, name: str) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


def poisson_upper_tail(mean: float, factor: float) -> float:
    """Lemma 1(a): ``Pr[X >= c·λ] <= exp(-λ (c-1)^2 / c)`` for ``c >= 1``."""
    if mean < 0:
        raise ValueError("Poisson mean must be non-negative")
    if factor < 1:
        raise ValueError("factor c must be at least 1")
    _validate_probability_inputs(mean, "mean")
    if factor == 0:
        return 1.0
    exponent = -mean * (factor - 1.0) ** 2 / factor
    return min(1.0, math.exp(exponent))


def poisson_lower_tail(mean: float, factor: float) -> float:
    """Lemma 1(b): ``Pr[X <= c·λ] <= exp(-λ (1-c)^2 / (2-c))`` for ``c <= 1``."""
    if mean < 0:
        raise ValueError("Poisson mean must be non-negative")
    if not (0 <= factor <= 1):
        raise ValueError("factor c must lie in [0, 1]")
    exponent = -mean * (1.0 - factor) ** 2 / (2.0 - factor)
    return min(1.0, math.exp(exponent))


def chernoff_upper_tail(expectation: float, relative_deviation: float) -> float:
    """Lemma 2(a): ``Pr[X >= (1+λ) E[X]] <= exp(-E[X] λ^2 / 3)`` for ``λ >= 1``.

    The paper states the bound for ``λ >= 1``; it also holds (in the weaker
    form with ``/3``) for ``0 <= λ <= 1``, which is how Lemma 48 uses it, so
    we accept any non-negative deviation.
    """
    if expectation < 0:
        raise ValueError("expectation must be non-negative")
    if relative_deviation < 0:
        raise ValueError("relative deviation must be non-negative")
    exponent = -expectation * relative_deviation**2 / 3.0
    return min(1.0, math.exp(exponent))


def chernoff_lower_tail(expectation: float, relative_deviation: float) -> float:
    """Lemma 2(b): ``Pr[X <= (1-λ) E[X]] <= exp(-E[X] λ^2 / 2)`` for ``λ <= 1``."""
    if expectation < 0:
        raise ValueError("expectation must be non-negative")
    if not (0 <= relative_deviation <= 1):
        raise ValueError("relative deviation must lie in [0, 1]")
    exponent = -expectation * relative_deviation**2 / 2.0
    return min(1.0, math.exp(exponent))


def geometric_sum_deviation_rate(factor: float) -> float:
    """The rate function ``c(λ) = λ - 1 - ln λ`` of Lemma 3."""
    if factor <= 0:
        raise ValueError("factor λ must be positive")
    return factor - 1.0 - math.log(factor)


def geometric_sum_upper_tail(
    success_probabilities: Sequence[float], factor: float
) -> float:
    """Lemma 3(a): ``Pr[X >= λ E[X]] <= exp(-p* E[X] c(λ))`` for ``λ >= 1``.

    ``success_probabilities`` are the parameters ``p_i`` of the independent
    geometric summands; ``p*`` is their minimum.
    """
    if factor < 1:
        raise ValueError("factor λ must be at least 1 for the upper tail")
    p_min, expectation = _geometric_sum_parameters(success_probabilities)
    exponent = -p_min * expectation * geometric_sum_deviation_rate(factor)
    return min(1.0, math.exp(exponent))


def geometric_sum_lower_tail(
    success_probabilities: Sequence[float], factor: float
) -> float:
    """Lemma 3(b): ``Pr[X <= λ E[X]] <= exp(-p* E[X] c(λ))`` for ``0 < λ <= 1``."""
    if not (0 < factor <= 1):
        raise ValueError("factor λ must lie in (0, 1] for the lower tail")
    p_min, expectation = _geometric_sum_parameters(success_probabilities)
    exponent = -p_min * expectation * geometric_sum_deviation_rate(factor)
    return min(1.0, math.exp(exponent))


def _geometric_sum_parameters(success_probabilities: Sequence[float]) -> tuple:
    probs = list(success_probabilities)
    if not probs:
        raise ValueError("need at least one geometric summand")
    for p in probs:
        if not (0 < p <= 1):
            raise ValueError("geometric success probabilities must lie in (0, 1]")
    p_min = min(probs)
    expectation = sum(1.0 / p for p in probs)
    return p_min, expectation


def walds_identity(expected_count: float, expected_summand: float) -> float:
    """Lemma 4: ``E[X_1 + ... + X_N] = E[N] · E[X_1]`` for independent ``N``."""
    if expected_count < 0:
        raise ValueError("expected count must be non-negative")
    return expected_count * expected_summand


def edge_sequence_expected_steps(sequence_length: int, n_edges: int) -> float:
    """Lemma 5: the scheduler needs ``k·m`` expected steps to realise a
    fixed sequence of ``k`` edges in order."""
    if sequence_length < 0:
        raise ValueError("sequence length must be non-negative")
    if n_edges < 1:
        raise ValueError("graph must have at least one edge")
    return float(sequence_length * n_edges)


def edge_sequence_upper_tail(sequence_length: int, n_edges: int, factor: float) -> float:
    """Lemma 5(a): ``Pr[X(ρ) > λ k m] <= exp(-k c(λ))`` for ``λ >= 1``."""
    if factor < 1:
        raise ValueError("factor λ must be at least 1")
    if sequence_length < 1:
        return 1.0
    exponent = -sequence_length * geometric_sum_deviation_rate(factor)
    return min(1.0, math.exp(exponent))


def edge_sequence_lower_tail(sequence_length: int, n_edges: int, factor: float) -> float:
    """Lemma 5(b): ``Pr[X(ρ) < λ k m] <= exp(-k c(λ))`` for ``0 < λ <= 1``."""
    if not (0 < factor <= 1):
        raise ValueError("factor λ must lie in (0, 1]")
    if sequence_length < 1:
        return 1.0
    exponent = -sequence_length * geometric_sum_deviation_rate(factor)
    return min(1.0, math.exp(exponent))


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n`` (appears in Lemma 9 and 12)."""
    if n < 0:
        raise ValueError("harmonic number defined for n >= 0")
    return float(sum(1.0 / i for i in range(1, n + 1)))
