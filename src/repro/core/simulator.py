"""Execution engine facade for population protocols on graphs.

The simulator drives a protocol with a scheduler (Section 2.2): it applies
the transition function to the sampled (initiator, responder) pairs, keeps
track of when node outputs last changed, and periodically evaluates the
protocol's stability certificate.  The *stabilization time* reported in the
paper is the minimum step ``t`` such that the configuration after ``t``
interactions is stable and correct; the simulator reports

* ``last_output_change_step`` — the last interaction at which any node's
  output changed.  For the leader-election protocols in this package the
  configuration cannot be stable before this step, and it is the primary
  measurement used by the benchmark harness, and
* ``certified_step`` — the (interval-aligned) step at which the protocol's
  stability certificate first held, an upper bound on stabilization time.

The gap between the two is at most one checking interval plus the slack of
the certificate; the tests cross-validate both against an exhaustive
reachability check on small instances.

Since the runtime refactor, :class:`Simulator` is a thin facade: ``run``
compiles a single-replica :class:`~repro.runtime.plan.ExecutionPlan` and
hands it to the runtime executors (:mod:`repro.runtime.execute`), which
own both the reference interpreter and the compiled block loops.  Engine
selection, streams and certificate cadence are therefore resolved in
exactly one place for single runs, replica stacks, harness measurements
and orchestrated sweeps alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from .configuration import Configuration
from .protocol import PopulationProtocol
from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule


@dataclass
class SimulationResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    stabilized:
        Whether the stability certificate held before the step budget ran
        out.
    certified_step:
        Step at which the certificate first held (interval resolution), or
        the total steps executed when not stabilized.
    last_output_change_step:
        Last step at which some node's output changed (0 if never).
    steps_executed:
        Total interactions simulated.
    leaders:
        Number of leaders in the final configuration.
    final_configuration:
        The final :class:`Configuration`.
    distinct_states_observed:
        Number of distinct states seen over the whole execution — the
        empirical space complexity.
    leader_trace:
        Optional ``(step, leader_count)`` checkpoints.
    wall_time_seconds:
        Wall-clock duration of the run.  Replicas executed in a batched
        stack report the stack's wall time divided evenly across its
        replicas; the sharded executor times each replica individually.
    shard_stats:
        Optional per-shard observability from the sharded executor
        (steps applied per shard, boundary-pair count, local-run length
        histogram, exchange-queue accounting).  Populated only when the
        plan opts in (``collect_shard_stats=True``) and deliberately
        excluded from trial records and canonical aggregates — it is
        diagnostics, never a measured value.
    """

    stabilized: bool
    certified_step: int
    last_output_change_step: int
    steps_executed: int
    leaders: int
    final_configuration: Configuration
    distinct_states_observed: int
    leader_trace: List[Tuple[int, int]] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    shard_stats: Optional[dict] = None

    @property
    def stabilization_step(self) -> int:
        """Best estimate of the stabilization time (see module docstring)."""
        if not self.stabilized:
            return self.steps_executed
        return max(self.last_output_change_step, 0)


#: Engines accepted by :class:`Simulator`.
ENGINES = ("reference", "compiled", "auto")


def default_check_interval(graph: Graph) -> int:
    """Default certificate-checking cadence: ``max(1, m // 4)``, ≤ 4096.

    Shared by the reference interpreter, the compiled engine and the
    multi-replica runner — all three must use the same cadence (and hence
    the same scheduler batch sizes) for their results to stay
    bit-identical.
    """
    return min(max(1, graph.n_edges // 4), 4096)


class Simulator:
    """Runs population protocols on a graph.

    Parameters
    ----------
    graph:
        The interaction graph.
    protocol:
        The protocol to execute.
    rng:
        Seed or generator for the stochastic scheduler.
    engine:
        Default execution engine for :meth:`run`:

        * ``"reference"`` — the pure-Python interpreter (the semantic
          reference; see :mod:`repro.runtime.execute`);
        * ``"compiled"`` — the table-driven engine (:mod:`repro.engine`),
          which produces bit-identical results and is typically 3–100×
          faster; raises if the protocol cannot be compiled;
        * ``"auto"`` — compiled when possible, reference otherwise.
    backend:
        Compiled-engine backend (``"auto"``, ``"native"``, ``"vector"``,
        ``"scalar"``); see :class:`repro.engine.stepper.CompiledRun`.
    max_states:
        Bound on the compiled state table size (default
        :data:`repro.engine.compiler.DEFAULT_MAX_STATES`).
    """

    def __init__(
        self,
        graph: Graph,
        protocol: PopulationProtocol,
        rng: RngLike = None,
        engine: str = "reference",
        backend: str = "auto",
        max_states: Optional[int] = None,
    ) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must be non-empty")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.graph = graph
        self.protocol = protocol
        self.engine = engine
        self.backend = backend
        self.max_states = max_states
        self._rng = rng

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        inputs: Optional[Sequence[Any]] = None,
        check_interval: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        record_leader_trace: bool = False,
        trace_resolution: int = 64,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
        max_states: Optional[int] = None,
        schedule: Optional["TopologySchedule"] = None,
    ) -> SimulationResult:
        """Execute until the stability certificate holds or ``max_steps``.

        Parameters
        ----------
        max_steps:
            Hard budget on the number of interactions.
        inputs:
            Optional per-node input symbols (defaults to the uniform
            ``None`` input of stable leader election).
        check_interval:
            How often (in steps) to evaluate the stability certificate.
            Defaults to ``max(1, m // 4)``, clamped to at most 4096.
        scheduler:
            Override the default :class:`RandomScheduler` (used by replay
            and lower-bound experiments).
        record_leader_trace:
            If true, record ``(step, leader_count)`` checkpoints.
        trace_resolution:
            Approximate number of trace checkpoints to record.
        engine / backend / max_states:
            Override the simulator-level engine selection (see
            :class:`Simulator`).  The compiled engine consumes the same
            scheduler stream and reproduces the reference results exactly.
        schedule:
            Optional :class:`~repro.dynamics.schedule.TopologySchedule`:
            interactions are sampled from the epoch graph active at the
            current step (via :class:`~repro.dynamics.scheduler.DynamicScheduler`)
            and the stability certificate is evaluated against the
            schedule's union graph, which keeps certification sound under
            topology change.  A single-epoch schedule reproduces the
            equivalent static run bit for bit.  Mutually exclusive with
            ``scheduler``.
        """
        from ..runtime import compile_plan, execute_plan

        engine = self.engine if engine is None else engine
        backend = self.backend if backend is None else backend
        max_states = self.max_states if max_states is None else max_states
        plan = compile_plan(
            [self.protocol],
            self.graph,
            [self._rng],
            max_steps=max_steps,
            engine=engine,
            backend=backend,
            check_interval=check_interval,
            schedule=schedule,
            inputs=inputs,
            max_states=max_states,
            scheduler=scheduler,
            record_leader_trace=record_leader_trace,
            trace_resolution=trace_resolution,
        )
        return execute_plan(plan)[0]

    def run_fixed_schedule(
        self,
        interactions: Sequence[Tuple[int, int]],
        inputs: Optional[Sequence[Any]] = None,
    ) -> SimulationResult:
        """Execute a specific interaction sequence (deterministic replay)."""
        from .scheduler import SequenceScheduler

        scheduler = SequenceScheduler(self.graph, interactions)
        return self.run(
            max_steps=len(list(interactions)),
            inputs=inputs,
            check_interval=max(len(list(interactions)), 1),
            scheduler=scheduler,
        )


def default_max_steps(n_nodes: int) -> int:
    """The generous default step budget used by :func:`run_leader_election`.

    ``50 · n² · max(log2 n, 1) + 10^4`` covers the constant-state
    protocol's ``O(H(G) n log n)`` bound on the benchmark graph sizes.
    """
    import math

    n = n_nodes
    return int(50 * n * n * max(math.log2(max(n, 2)), 1.0)) + 10_000


def run_leader_election(
    protocol: PopulationProtocol,
    graph: Graph,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    inputs: Optional[Sequence[Any]] = None,
    check_interval: Optional[int] = None,
    record_leader_trace: bool = False,
    engine: str = "reference",
    backend: str = "auto",
    schedule: Optional["TopologySchedule"] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``protocol`` on ``graph`` until stable.

    ``max_steps`` defaults to a generous ``50 * n^2 * max(log2 n, 1) + 10^4``
    budget, which covers the constant-state protocol's ``O(H(G) n log n)``
    bound on the benchmark graph sizes.  ``engine`` selects the execution
    engine (see :class:`Simulator`); results are identical across engines
    for the same ``rng`` seed.  ``schedule`` runs the election on a
    time-varying topology (see :meth:`Simulator.run`); ``graph`` then
    names the node universe and the defaults (step budget, certificate
    cadence) are derived from it.
    """
    if max_steps is None:
        max_steps = default_max_steps(graph.n_nodes)
    simulator = Simulator(graph, protocol, rng=rng, engine=engine, backend=backend)
    return simulator.run(
        max_steps=max_steps,
        inputs=inputs,
        check_interval=check_interval,
        record_leader_trace=record_leader_trace,
        schedule=schedule,
    )
