"""Execution engine for population protocols on graphs.

The simulator drives a protocol with a scheduler (Section 2.2): it applies
the transition function to the sampled (initiator, responder) pairs, keeps
track of when node outputs last changed, and periodically evaluates the
protocol's stability certificate.  The *stabilization time* reported in the
paper is the minimum step ``t`` such that the configuration after ``t``
interactions is stable and correct; the simulator reports

* ``last_output_change_step`` — the last interaction at which any node's
  output changed.  For the leader-election protocols in this package the
  configuration cannot be stable before this step, and it is the primary
  measurement used by the benchmark harness, and
* ``certified_step`` — the (interval-aligned) step at which the protocol's
  stability certificate first held, an upper bound on stabilization time.

The gap between the two is at most one checking interval plus the slack of
the certificate; the tests cross-validate both against an exhaustive
reachability check on small instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from .configuration import Configuration
from .protocol import LEADER, PopulationProtocol
from .scheduler import RandomScheduler, Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule


@dataclass
class SimulationResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    stabilized:
        Whether the stability certificate held before the step budget ran
        out.
    certified_step:
        Step at which the certificate first held (interval resolution), or
        the total steps executed when not stabilized.
    last_output_change_step:
        Last step at which some node's output changed (0 if never).
    steps_executed:
        Total interactions simulated.
    leaders:
        Number of leaders in the final configuration.
    final_configuration:
        The final :class:`Configuration`.
    distinct_states_observed:
        Number of distinct states seen over the whole execution — the
        empirical space complexity.
    leader_trace:
        Optional ``(step, leader_count)`` checkpoints.
    wall_time_seconds:
        Wall-clock duration of the run.
    """

    stabilized: bool
    certified_step: int
    last_output_change_step: int
    steps_executed: int
    leaders: int
    final_configuration: Configuration
    distinct_states_observed: int
    leader_trace: List[Tuple[int, int]] = field(default_factory=list)
    wall_time_seconds: float = 0.0

    @property
    def stabilization_step(self) -> int:
        """Best estimate of the stabilization time (see module docstring)."""
        if not self.stabilized:
            return self.steps_executed
        return max(self.last_output_change_step, 0)


#: Engines accepted by :class:`Simulator`.
ENGINES = ("reference", "compiled", "auto")


def default_check_interval(graph: Graph) -> int:
    """Default certificate-checking cadence: ``max(1, m // 4)``, ≤ 4096.

    Shared by the reference interpreter, the compiled engine and the
    multi-replica runner — all three must use the same cadence (and hence
    the same scheduler batch sizes) for their results to stay
    bit-identical.
    """
    return min(max(1, graph.n_edges // 4), 4096)


class Simulator:
    """Runs population protocols on a graph.

    Parameters
    ----------
    graph:
        The interaction graph.
    protocol:
        The protocol to execute.
    rng:
        Seed or generator for the stochastic scheduler.
    engine:
        Default execution engine for :meth:`run`:

        * ``"reference"`` — the pure-Python interpreter below, the
          semantic reference;
        * ``"compiled"`` — the table-driven engine (:mod:`repro.engine`),
          which produces bit-identical results and is typically 3–100×
          faster; raises if the protocol cannot be compiled;
        * ``"auto"`` — compiled when possible, reference otherwise.
    backend:
        Compiled-engine backend (``"auto"``, ``"native"``, ``"vector"``,
        ``"scalar"``); see :class:`repro.engine.stepper.CompiledRun`.
    max_states:
        Bound on the compiled state table size (default
        :data:`repro.engine.compiler.DEFAULT_MAX_STATES`).
    """

    def __init__(
        self,
        graph: Graph,
        protocol: PopulationProtocol,
        rng: RngLike = None,
        engine: str = "reference",
        backend: str = "auto",
        max_states: Optional[int] = None,
    ) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must be non-empty")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.graph = graph
        self.protocol = protocol
        self.engine = engine
        self.backend = backend
        self.max_states = max_states
        self._rng = rng

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        inputs: Optional[Sequence[Any]] = None,
        check_interval: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        record_leader_trace: bool = False,
        trace_resolution: int = 64,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
        max_states: Optional[int] = None,
        schedule: Optional["TopologySchedule"] = None,
    ) -> SimulationResult:
        """Execute until the stability certificate holds or ``max_steps``.

        Parameters
        ----------
        max_steps:
            Hard budget on the number of interactions.
        inputs:
            Optional per-node input symbols (defaults to the uniform
            ``None`` input of stable leader election).
        check_interval:
            How often (in steps) to evaluate the stability certificate.
            Defaults to ``max(1, m // 4)``, clamped to at most 4096.
        scheduler:
            Override the default :class:`RandomScheduler` (used by replay
            and lower-bound experiments).
        record_leader_trace:
            If true, record ``(step, leader_count)`` checkpoints.
        trace_resolution:
            Approximate number of trace checkpoints to record.
        engine / backend / max_states:
            Override the simulator-level engine selection (see
            :class:`Simulator`).  The compiled engine consumes the same
            scheduler stream and reproduces the reference results exactly.
        schedule:
            Optional :class:`~repro.dynamics.schedule.TopologySchedule`:
            interactions are sampled from the epoch graph active at the
            current step (via :class:`~repro.dynamics.scheduler.DynamicScheduler`)
            and the stability certificate is evaluated against the
            schedule's union graph, which keeps certification sound under
            topology changes.  A single-epoch schedule reproduces the
            equivalent static run bit for bit.  Mutually exclusive with
            ``scheduler``.
        """
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if schedule is not None:
            if scheduler is not None:
                raise ValueError("pass either schedule or scheduler, not both")
            if schedule.n_nodes != self.graph.n_nodes:
                raise ValueError(
                    f"schedule universe has {schedule.n_nodes} nodes, "
                    f"graph has {self.graph.n_nodes}"
                )
        engine = self.engine if engine is None else engine
        backend = self.backend if backend is None else backend
        max_states = self.max_states if max_states is None else max_states
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if engine != "reference":
            scheduler_ok = scheduler is None or hasattr(scheduler, "next_arrays")
            if not scheduler_ok and engine == "compiled":
                raise ValueError(
                    "engine='compiled' requires a scheduler with next_arrays(); "
                    "use the reference engine for replayed schedules"
                )
            if engine == "auto" and not self._auto_prefers_compiled(max_states):
                scheduler_ok = False
            if scheduler_ok:
                from ..engine.compiler import ProtocolCompilationError

                # A mid-run compilation failure cannot fall back cleanly when
                # the scheduler stream is not re-creatable from a seed.
                import numpy as _np

                replayable = scheduler is None and not isinstance(
                    self._rng, _np.random.Generator
                )
                try:
                    return self._run_compiled(
                        max_steps=max_steps,
                        inputs=inputs,
                        check_interval=check_interval,
                        scheduler=scheduler,
                        record_leader_trace=record_leader_trace,
                        trace_resolution=trace_resolution,
                        backend=backend,
                        max_states=max_states,
                        schedule=schedule,
                    )
                except ProtocolCompilationError:
                    if engine == "compiled" or not replayable:
                        raise
        graph = self.graph
        certificate_graph = schedule.union_graph() if schedule is not None else graph
        protocol = self.protocol
        n = graph.n_nodes
        if inputs is None:
            states: List[Hashable] = [protocol.initial_state(None)] * n
        else:
            if len(inputs) != n:
                raise ValueError("inputs must provide one symbol per node")
            states = [protocol.initial_state(symbol) for symbol in inputs]
        if check_interval is None:
            check_interval = default_check_interval(graph)
        check_interval = max(1, int(check_interval))

        transition = protocol.transition
        output = protocol.output
        use_cache = protocol.cacheable_transitions
        transition_cache: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, Hashable]] = {}

        observed_states = set(states)
        outputs = [output(s) for s in states]
        last_output_change = 0
        leader_count = sum(1 for o in outputs if o == LEADER)
        trace: List[Tuple[int, int]] = []
        trace_every = max(1, max_steps // max(trace_resolution, 1)) if record_leader_trace else 0
        next_trace_step = 0

        start_time = time.perf_counter()
        step = 0
        stabilized = False
        certified_step = 0

        if record_leader_trace:
            trace.append((0, leader_count))
            next_trace_step = trace_every

        # Check the initial configuration too (stars stabilize in one step,
        # and n == 1 graphs are stable immediately).
        if protocol.is_output_stable_configuration(states, certificate_graph):
            stabilized = True
            certified_step = 0

        if not stabilized and step < max_steps and scheduler is None:
            # Created lazily so that trivially-stable single-node runs do not
            # require a schedulable (edge-carrying) graph.
            scheduler = self._make_scheduler(schedule)

        while not stabilized and step < max_steps:
            batch = min(check_interval, max_steps - step)
            interactions = scheduler.next_batch(batch)
            for initiator, responder in interactions:
                step += 1
                a = states[initiator]
                b = states[responder]
                if use_cache:
                    key = (a, b)
                    cached = transition_cache.get(key)
                    if cached is None:
                        cached = transition(a, b)
                        transition_cache[key] = cached
                    new_a, new_b = cached
                else:
                    new_a, new_b = transition(a, b)
                if new_a is not a:
                    states[initiator] = new_a
                    observed_states.add(new_a)
                    out_a = output(new_a)
                    if out_a != outputs[initiator]:
                        if out_a == LEADER:
                            leader_count += 1
                        elif outputs[initiator] == LEADER:
                            leader_count -= 1
                        outputs[initiator] = out_a
                        last_output_change = step
                if new_b is not b:
                    states[responder] = new_b
                    observed_states.add(new_b)
                    out_b = output(new_b)
                    if out_b != outputs[responder]:
                        if out_b == LEADER:
                            leader_count += 1
                        elif outputs[responder] == LEADER:
                            leader_count -= 1
                        outputs[responder] = out_b
                        last_output_change = step
                if record_leader_trace and step >= next_trace_step:
                    trace.append((step, leader_count))
                    next_trace_step += trace_every
            if protocol.is_output_stable_configuration(states, certificate_graph):
                stabilized = True
                certified_step = step

        wall = time.perf_counter() - start_time
        final = Configuration(states, step=step)
        if record_leader_trace and (not trace or trace[-1][0] != step):
            trace.append((step, leader_count))
        return SimulationResult(
            stabilized=stabilized,
            certified_step=certified_step if stabilized else step,
            last_output_change_step=last_output_change,
            steps_executed=step,
            leaders=leader_count,
            final_configuration=final,
            distinct_states_observed=len(observed_states),
            leader_trace=trace,
            wall_time_seconds=wall,
        )

    def _make_scheduler(self, schedule: Optional["TopologySchedule"]) -> Scheduler:
        """The default scheduler: dynamic when a schedule is given."""
        if schedule is not None:
            from ..dynamics.scheduler import DynamicScheduler

            return DynamicScheduler(schedule, rng=self._rng)
        return RandomScheduler(self.graph, rng=self._rng)

    def _auto_prefers_compiled(self, max_states: Optional[int]) -> bool:
        """Whether ``engine="auto"`` should try the compiled engine.

        See :func:`repro.engine.compiler.compilation_worthwhile`;
        ``engine="compiled"`` bypasses this heuristic.
        """
        from ..engine.compiler import compilation_worthwhile

        return compilation_worthwhile(self.protocol, max_states)

    def _run_compiled(
        self,
        max_steps: int,
        inputs: Optional[Sequence[Any]],
        check_interval: Optional[int],
        scheduler: Optional[Scheduler],
        record_leader_trace: bool,
        trace_resolution: int,
        backend: str,
        max_states: Optional[int],
        schedule: Optional["TopologySchedule"] = None,
    ) -> SimulationResult:
        """Compiled-engine twin of :meth:`run` (identical semantics).

        The loop structure mirrors the reference interpreter exactly: same
        initial certificate check, same lazily created scheduler, same
        ``min(check_interval, remaining)`` batch sizes (so the scheduler's
        RNG stream is consumed identically), and the same certificate
        cadence.  Only the inner per-interaction application is replaced by
        :class:`repro.engine.stepper.CompiledRun`.
        """
        from ..engine.compiler import DEFAULT_MAX_STATES, get_compiled
        from ..engine.stepper import CompiledRun

        graph = self.graph
        protocol = self.protocol
        n = graph.n_nodes
        if inputs is None:
            states: List[Hashable] = [protocol.initial_state(None)] * n
        else:
            if len(inputs) != n:
                raise ValueError("inputs must provide one symbol per node")
            states = [protocol.initial_state(symbol) for symbol in inputs]
        if check_interval is None:
            check_interval = default_check_interval(graph)
        check_interval = max(1, int(check_interval))

        compiled = get_compiled(
            protocol, max_states=max_states if max_states is not None else DEFAULT_MAX_STATES
        )
        start_time = time.perf_counter()
        trace_every = (
            max(1, max_steps // max(trace_resolution, 1)) if record_leader_trace else 0
        )
        run = CompiledRun(
            compiled,
            compiled.encode(states),
            backend=backend,
            record_trace=record_leader_trace,
            trace_every=trace_every,
        )

        stabilized = False
        certified_step = 0
        certificate_graph = schedule.union_graph() if schedule is not None else graph
        if protocol.is_output_stable_configuration(states, certificate_graph):
            stabilized = True

        if not stabilized and run.step < max_steps and scheduler is None:
            scheduler = self._make_scheduler(schedule)

        while not stabilized and run.step < max_steps:
            batch = min(check_interval, max_steps - run.step)
            initiators, responders = scheduler.next_arrays(batch)
            run.apply_block(initiators, responders)
            if protocol.is_output_stable_configuration(run.current_states(), certificate_graph):
                stabilized = True
                certified_step = run.step

        wall = time.perf_counter() - start_time
        final = Configuration(run.current_states(), step=run.step)
        trace = run.trace
        if record_leader_trace and (not trace or trace[-1][0] != run.step):
            trace.append((run.step, run.leader_count))
        return SimulationResult(
            stabilized=stabilized,
            certified_step=certified_step if stabilized else run.step,
            last_output_change_step=run.last_change,
            steps_executed=run.step,
            leaders=run.leader_count,
            final_configuration=final,
            distinct_states_observed=run.distinct_observed(),
            leader_trace=trace,
            wall_time_seconds=wall,
        )

    def run_fixed_schedule(
        self,
        interactions: Sequence[Tuple[int, int]],
        inputs: Optional[Sequence[Any]] = None,
    ) -> SimulationResult:
        """Execute a specific interaction sequence (deterministic replay)."""
        from .scheduler import SequenceScheduler

        scheduler = SequenceScheduler(self.graph, interactions)
        return self.run(
            max_steps=len(list(interactions)),
            inputs=inputs,
            check_interval=max(len(list(interactions)), 1),
            scheduler=scheduler,
        )


def default_max_steps(n_nodes: int) -> int:
    """The generous default step budget used by :func:`run_leader_election`.

    ``50 · n² · max(log2 n, 1) + 10^4`` covers the constant-state
    protocol's ``O(H(G) n log n)`` bound on the benchmark graph sizes.
    """
    import math

    n = n_nodes
    return int(50 * n * n * max(math.log2(max(n, 2)), 1.0)) + 10_000


def run_leader_election(
    protocol: PopulationProtocol,
    graph: Graph,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    inputs: Optional[Sequence[Any]] = None,
    check_interval: Optional[int] = None,
    record_leader_trace: bool = False,
    engine: str = "reference",
    backend: str = "auto",
    schedule: Optional["TopologySchedule"] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``protocol`` on ``graph`` until stable.

    ``max_steps`` defaults to a generous ``50 * n^2 * max(log2 n, 1) + 10^4``
    budget, which covers the constant-state protocol's ``O(H(G) n log n)``
    bound on the benchmark graph sizes.  ``engine`` selects the execution
    engine (see :class:`Simulator`); results are identical across engines
    for the same ``rng`` seed.  ``schedule`` runs the election on a
    time-varying topology (see :meth:`Simulator.run`); ``graph`` then
    names the node universe and the defaults (step budget, certificate
    cadence) are derived from it.
    """
    if max_steps is None:
        max_steps = default_max_steps(graph.n_nodes)
    simulator = Simulator(graph, protocol, rng=rng, engine=engine, backend=backend)
    return simulator.run(
        max_steps=max_steps,
        inputs=inputs,
        check_interval=check_interval,
        record_leader_trace=record_leader_trace,
        schedule=schedule,
    )
