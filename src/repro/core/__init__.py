"""Core population-protocol machinery: protocols, schedulers, simulator.

This package implements the stochastic population model of Section 2.2 of
the paper: anonymous finite-state agents on a connected interaction graph,
activated in ordered pairs by a uniform edge-sampling scheduler.
"""

from .configuration import (
    Configuration,
    initial_configuration_from_inputs,
    uniform_initial_configuration,
)
from .protocol import FOLLOWER, LEADER, LeaderElectionProtocol, PopulationProtocol
from .scheduler import (
    Interaction,
    RandomScheduler,
    Scheduler,
    SequenceScheduler,
    all_ordered_pairs,
)
from .seeds import derive_seed, graph_seed, measure_seed, trial_seed, trial_seeds
from .simulator import SimulationResult, Simulator, run_leader_election
from .stability import (
    StabilityVerdict,
    StateSpaceTooLarge,
    always_reaches_single_leader,
    certificate_is_sound_on,
    check_stability_by_reachability,
    reachable_configurations,
)

__all__ = [
    "Configuration",
    "FOLLOWER",
    "Interaction",
    "LEADER",
    "LeaderElectionProtocol",
    "PopulationProtocol",
    "RandomScheduler",
    "Scheduler",
    "SequenceScheduler",
    "SimulationResult",
    "Simulator",
    "StabilityVerdict",
    "StateSpaceTooLarge",
    "all_ordered_pairs",
    "always_reaches_single_leader",
    "certificate_is_sound_on",
    "check_stability_by_reachability",
    "derive_seed",
    "graph_seed",
    "initial_configuration_from_inputs",
    "measure_seed",
    "trial_seed",
    "trial_seeds",
    "reachable_configurations",
    "run_leader_election",
    "uniform_initial_configuration",
]
