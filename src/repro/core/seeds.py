"""Deterministic seed-stream derivation for Monte-Carlo experiments.

Every repeated measurement in this package draws its per-trial scheduler
seeds from one *base* seed.  The derivation scheme below is the single
source of truth for how that happens, and it is designed around one
invariant:

    **the seed of trial ``t`` is a pure function of (base seed, domain
    tag, trial index) — never of the batch size, the shard size, the
    number of worker processes, or how many trials run in total.**

This is what lets the parallel orchestrator
(:mod:`repro.orchestration.runner`) split a ``k``-trial measurement into
arbitrary shards and still produce results bit-identical to the serial
path: shard boundaries change which process *executes* trial ``t``, but
never which seed trial ``t`` receives.

Earlier revisions derived trial seeds as ``base + 7919 * t`` and graph
seeds as ``base + 101 * i``.  Those affine streams are batch-independent
but collide across purposes and across nearby base seeds (``base=0,
t=1`` equals ``base=7919, t=0``; a graph seed can equal a trial seed).
:func:`derive_seed` instead mixes the base seed, a domain tag and the
indices through SplitMix64, a 64-bit finalizer with full avalanche
(every input bit flips each output bit with probability ~1/2), so
streams for different purposes are statistically independent.

The scheme, documented also in ``docs/ARCHITECTURE.md``:

* graph build for size index ``i``:        ``derive_seed(base, "graph", i)``
* measurement base for size index ``i``:   ``derive_seed(base, "measure", i)``
* scheduler seed of trial ``t``:           ``derive_seed(measure_base, "trial", t)``

All derived seeds are integers in ``[0, 2^63)`` and feed
``numpy.random.default_rng`` directly.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Union

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

SeedWord = Union[int, str]


def _splitmix64(x: int) -> int:
    """The SplitMix64 finalizer (Steele, Lea & Flood 2014)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _word_to_int(word: SeedWord) -> int:
    if isinstance(word, str):
        # Stable across processes and Python versions (unlike hash()).
        return zlib.crc32(word.encode("utf-8"))
    return int(word) & _MASK64


def derive_seed(base: SeedWord, *words: SeedWord) -> int:
    """Mix ``base`` and ``words`` into one well-spread 63-bit seed.

    ``words`` are domain tags (strings) and indices (integers); the result
    is a pure function of its arguments.  Clearing the top bit keeps the
    value a valid seed for every consumer (numpy accepts any non-negative
    integer).
    """
    state = _splitmix64(_word_to_int(base))
    for word in words:
        state = _splitmix64(state ^ _word_to_int(word))
    return state & (_MASK64 >> 1)


def trial_seed(measure_base: SeedWord, trial_index: int) -> int:
    """Scheduler seed for trial ``trial_index`` of one measurement.

    Depends only on ``(measure_base, trial_index)`` — the shard-invariance
    invariant the orchestrator relies on.
    """
    if trial_index < 0:
        raise ValueError("trial_index must be non-negative")
    return derive_seed(measure_base, "trial", trial_index)


def trial_seeds(measure_base: SeedWord, trial_indices: Iterable[int]) -> List[int]:
    """Seeds for an arbitrary subset of trial indices (shard streams)."""
    return [trial_seed(measure_base, index) for index in trial_indices]


def graph_seed(base: SeedWord, size_index: int) -> int:
    """Seed used to build the (possibly random) graph for size index ``i``."""
    return derive_seed(base, "graph", size_index)


def measure_seed(base: SeedWord, size_index: int) -> int:
    """Per-size measurement base from which trial seeds are derived."""
    return derive_seed(base, "measure", size_index)
