"""Stochastic schedulers for the population model.

In every discrete time step the scheduler samples an ordered pair ``(u, v)``
of adjacent nodes uniformly at random among all ``2m`` ordered pairs
(Section 2.2): equivalently, a uniformly random edge plus a uniformly random
orientation.  :class:`RandomScheduler` implements exactly this and
pre-samples interactions in numpy batches, which is what makes pure-Python
simulation of ``Θ(n^2 log n)``-step executions feasible.

:class:`SequenceScheduler` replays a fixed interaction sequence; the
lower-bound experiments (isolating covers, influencer multigraphs) and the
reachability-based stability checker use it to explore specific schedules.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng

Interaction = Tuple[int, int]

# Pre-sample size per RNG refill.  4096 keeps the sampling fully
# vectorised while wasting little work on short runs (stabilization-bound
# executions often need only a few thousand interactions).  Note: the
# refill size is part of the seeded stream definition — changing it
# changes every seeded trajectory (last changed from 65536 in the engine
# PR; see CHANGES.md).
_DEFAULT_BATCH = 4096
# (The replica-batched analytics engine does not consume this scheduler:
# its Monte-Carlo trajectories run on their own demand-sized streams —
# see repro.analytics.streams.TrajectoryStream.)


class Scheduler(abc.ABC):
    """Produces the infinite sequence of ordered interaction pairs."""

    @abc.abstractmethod
    def next_interaction(self) -> Interaction:
        """The next ordered (initiator, responder) pair."""

    @abc.abstractmethod
    def next_batch(self, size: int) -> List[Interaction]:
        """The next ``size`` ordered pairs, in order."""

    def interactions(self) -> Iterator[Interaction]:
        """Iterate over interactions forever (or until exhausted)."""
        while True:
            yield self.next_interaction()


class BufferedSampler(Scheduler):
    """Shared buffer machinery for pre-sampling stochastic schedulers.

    Subclasses implement :meth:`_refill`, which must replace the buffer
    with at least one fresh draw; the consume loops here are shared so
    the seeded-stream contract (refills happen only on an empty buffer,
    with ``minimum`` = the draws still needed by the current call) is
    defined in exactly one place.  ``_position`` counts interactions
    already handed out and is kept exact *during* a call, so a refill
    can depend on it (the dynamic scheduler caps refills at epoch
    boundaries).
    """

    def __init__(self, rng: RngLike, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._rng = as_rng(rng)
        self._batch_size = int(batch_size)
        self._buffer_initiators: np.ndarray = np.zeros(0, dtype=np.int64)
        self._buffer_responders: np.ndarray = np.zeros(0, dtype=np.int64)
        self._cursor = 0
        self._position = 0

    @property
    def steps_emitted(self) -> int:
        """Total number of interactions handed out so far."""
        return self._position

    def _refill(self, minimum: int) -> None:
        raise NotImplementedError

    def _fill_buffer_from_edges(
        self, edges_u: np.ndarray, edges_v: np.ndarray, size: int
    ) -> None:
        """THE seeded pair draw: uniform edge index, then uniform orientation.

        Both the static and the dynamic scheduler refill through this
        method, so the two-call draw order — part of the seeded-stream
        definition — is single-sourced.
        """
        m = int(edges_u.shape[0])
        edge_indices = self._rng.integers(0, m, size=size)
        orientations = self._rng.integers(0, 2, size=size).astype(bool)
        endpoint_a = edges_u[edge_indices]
        endpoint_b = edges_v[edge_indices]
        self._buffer_initiators = np.where(orientations, endpoint_a, endpoint_b)
        self._buffer_responders = np.where(orientations, endpoint_b, endpoint_a)
        self._cursor = 0

    def next_interaction(self) -> Interaction:
        if self._cursor >= self._buffer_initiators.shape[0]:
            self._refill(1)
        u = int(self._buffer_initiators[self._cursor])
        v = int(self._buffer_responders[self._cursor])
        self._cursor += 1
        self._position += 1
        return (u, v)

    def next_batch(self, size: int) -> List[Interaction]:
        if size < 0:
            raise ValueError("batch size must be non-negative")
        result: List[Interaction] = []
        remaining = size
        while remaining > 0:
            available = self._buffer_initiators.shape[0] - self._cursor
            if available == 0:
                self._refill(remaining)
                available = self._buffer_initiators.shape[0]
            take = min(available, remaining)
            chunk_u = self._buffer_initiators[self._cursor : self._cursor + take]
            chunk_v = self._buffer_responders[self._cursor : self._cursor + take]
            result.extend(zip(chunk_u.tolist(), chunk_v.tolist()))
            self._cursor += take
            self._position += take
            remaining -= take
        return result

    def next_arrays(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`next_batch` but returns numpy arrays (hot loops)."""
        if size < 0:
            raise ValueError("batch size must be non-negative")
        initiators = np.empty(size, dtype=np.int64)
        responders = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            available = self._buffer_initiators.shape[0] - self._cursor
            if available == 0:
                self._refill(size - filled)
                available = self._buffer_initiators.shape[0]
            take = min(available, size - filled)
            initiators[filled : filled + take] = self._buffer_initiators[
                self._cursor : self._cursor + take
            ]
            responders[filled : filled + take] = self._buffer_responders[
                self._cursor : self._cursor + take
            ]
            self._cursor += take
            self._position += take
            filled += take
        return initiators, responders


class RandomScheduler(BufferedSampler):
    """The uniform stochastic scheduler of the population model.

    Parameters
    ----------
    graph:
        The interaction graph.
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    batch_size:
        Number of interactions pre-sampled per numpy call.
    """

    def __init__(self, graph: Graph, rng: RngLike = None, batch_size: int = _DEFAULT_BATCH) -> None:
        if graph.n_edges == 0:
            raise ValueError("cannot schedule interactions on an edgeless graph")
        super().__init__(rng, batch_size)
        self._graph = graph
        self._edges_u = graph.edges_u
        self._edges_v = graph.edges_v

    @property
    def graph(self) -> Graph:
        """The interaction graph being scheduled."""
        return self._graph

    def _refill(self, minimum: int) -> None:
        size = max(self._batch_size, minimum)
        self._fill_buffer_from_edges(self._edges_u, self._edges_v, size)

class SequenceScheduler(Scheduler):
    """Replays a fixed, finite sequence of ordered interactions.

    Used to execute hand-crafted schedules (reachability analysis, the
    surgery-style arguments in Section 7) and to make simulator unit tests
    deterministic.  Raises :class:`StopIteration` when exhausted.
    """

    def __init__(self, graph: Graph, interactions: Iterable[Interaction]) -> None:
        self._graph = graph
        self._interactions: List[Interaction] = []
        for u, v in interactions:
            u, v = int(u), int(v)
            if not graph.has_edge(u, v):
                raise ValueError(f"({u}, {v}) is not an edge of {graph.name}")
            self._interactions.append((u, v))
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of interactions not yet replayed."""
        return len(self._interactions) - self._cursor

    def next_interaction(self) -> Interaction:
        if self._cursor >= len(self._interactions):
            raise StopIteration("sequence scheduler exhausted")
        interaction = self._interactions[self._cursor]
        self._cursor += 1
        return interaction

    def next_batch(self, size: int) -> List[Interaction]:
        if size < 0:
            raise ValueError("batch size must be non-negative")
        end = self._cursor + size
        if end > len(self._interactions):
            raise StopIteration("sequence scheduler exhausted")
        chunk = self._interactions[self._cursor : end]
        self._cursor = end
        return list(chunk)


def all_ordered_pairs(graph: Graph) -> List[Interaction]:
    """All ``2m`` ordered pairs the scheduler may sample (Section 2.2)."""
    pairs: List[Interaction] = []
    for u, v in graph.edges():
        pairs.append((u, v))
        pairs.append((v, u))
    return pairs
