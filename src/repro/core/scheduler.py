"""Stochastic schedulers for the population model.

In every discrete time step the scheduler samples an ordered pair ``(u, v)``
of adjacent nodes uniformly at random among all ``2m`` ordered pairs
(Section 2.2): equivalently, a uniformly random edge plus a uniformly random
orientation.  :class:`RandomScheduler` implements exactly this and
pre-samples interactions in numpy batches, which is what makes pure-Python
simulation of ``Θ(n^2 log n)``-step executions feasible.

The sampling machinery itself — the refill-size contract, the directed
pair encoding, the epoch capping used by the dynamic twin — lives in
:class:`repro.runtime.source.InteractionSource`; this module provides the
population-model shells over it.  The pre-sample refill size is the
runtime's :data:`repro.runtime.source.REFILL_SIZE` (re-exported here as
``_DEFAULT_BATCH`` for backward compatibility) — it is part of the seeded
stream definition, so it has exactly one home.

:class:`SequenceScheduler` replays a fixed interaction sequence; the
lower-bound experiments (isolating covers, influencer multigraphs) and the
reachability-based stability checker use it to explore specific schedules.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, List, Tuple

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from ..runtime.source import REFILL_SIZE, InteractionSource

Interaction = Tuple[int, int]

#: Backward-compatible alias of the single-sourced refill size.
_DEFAULT_BATCH = REFILL_SIZE


class Scheduler(abc.ABC):
    """Produces the infinite sequence of ordered interaction pairs."""

    @abc.abstractmethod
    def next_interaction(self) -> Interaction:
        """The next ordered (initiator, responder) pair."""

    @abc.abstractmethod
    def next_batch(self, size: int) -> List[Interaction]:
        """The next ``size`` ordered pairs, in order."""

    def interactions(self) -> Iterator[Interaction]:
        """Iterate over interactions forever (or until exhausted)."""
        while True:
            yield self.next_interaction()


class BufferedSampler(InteractionSource, Scheduler):
    """Pre-sampling stochastic scheduler (the runtime source as a Scheduler).

    Kept as the common base of :class:`RandomScheduler` and
    :class:`repro.dynamics.scheduler.DynamicScheduler`; all buffering,
    refilling and consumption is inherited from
    :class:`~repro.runtime.source.InteractionSource`, so the seeded-stream
    contract is defined in exactly one place.
    """


class RandomScheduler(BufferedSampler):
    """The uniform stochastic scheduler of the population model.

    Parameters
    ----------
    graph:
        The interaction graph.
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    batch_size:
        Number of interactions pre-sampled per numpy call.
    """

    def __init__(self, graph: Graph, rng: RngLike = None, batch_size: int = _DEFAULT_BATCH) -> None:
        super().__init__(graph, rng=rng, batch_size=batch_size)
        self._graph = graph

    @property
    def graph(self) -> Graph:
        """The interaction graph being scheduled."""
        return self._graph


class SequenceScheduler(Scheduler):
    """Replays a fixed, finite sequence of ordered interactions.

    Used to execute hand-crafted schedules (reachability analysis, the
    surgery-style arguments in Section 7) and to make simulator unit tests
    deterministic.  Raises :class:`StopIteration` when exhausted.
    """

    def __init__(self, graph: Graph, interactions: Iterable[Interaction]) -> None:
        self._graph = graph
        self._interactions: List[Interaction] = []
        for u, v in interactions:
            u, v = int(u), int(v)
            if not graph.has_edge(u, v):
                raise ValueError(f"({u}, {v}) is not an edge of {graph.name}")
            self._interactions.append((u, v))
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of interactions not yet replayed."""
        return len(self._interactions) - self._cursor

    def next_interaction(self) -> Interaction:
        if self._cursor >= len(self._interactions):
            raise StopIteration("sequence scheduler exhausted")
        interaction = self._interactions[self._cursor]
        self._cursor += 1
        return interaction

    def next_batch(self, size: int) -> List[Interaction]:
        if size < 0:
            raise ValueError("batch size must be non-negative")
        end = self._cursor + size
        if end > len(self._interactions):
            raise StopIteration("sequence scheduler exhausted")
        chunk = self._interactions[self._cursor : end]
        self._cursor = end
        return list(chunk)


def all_ordered_pairs(graph: Graph) -> List[Interaction]:
    """All ``2m`` ordered pairs the scheduler may sample (Section 2.2)."""
    pairs: List[Interaction] = []
    for u, v in graph.edges():
        pairs.append((u, v))
        pairs.append((v, u))
    return pairs
