"""Exact stability checking by exhaustive reachability (small instances).

A configuration ``x`` is *stable* when every configuration reachable from
``x`` assigns every node the same output as ``x`` does (Section 2.2).  For
small graphs and protocols with finitely many reachable states we can check
this definition directly by breadth-first search over the configuration
space, applying every one of the ``2m`` ordered interactions at each
configuration.

This is exponential and only used in tests, where it cross-validates the
per-protocol stability certificates (``is_output_stable_configuration``)
used by the simulator on large instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Graph
from .protocol import LEADER, PopulationProtocol
from .scheduler import all_ordered_pairs


class StateSpaceTooLarge(RuntimeError):
    """Raised when the reachability search exceeds its configuration budget."""


@dataclass(frozen=True)
class StabilityVerdict:
    """Result of an exhaustive stability check.

    Attributes
    ----------
    stable:
        Whether every reachable configuration preserves all outputs.
    correct:
        Whether the starting configuration has exactly one leader.
    explored:
        Number of distinct configurations visited.
    counterexample:
        A reachable configuration whose outputs differ (``None`` when
        stable).
    """

    stable: bool
    correct: bool
    explored: int
    counterexample: Optional[Tuple[Hashable, ...]]


def check_stability_by_reachability(
    protocol: PopulationProtocol,
    states: Sequence[Hashable],
    graph: Graph,
    max_configurations: int = 200_000,
) -> StabilityVerdict:
    """Exhaustively decide whether ``states`` is a stable configuration.

    Raises :class:`StateSpaceTooLarge` if more than ``max_configurations``
    distinct configurations are reachable.
    """
    start = tuple(states)
    if len(start) != graph.n_nodes:
        raise ValueError("configuration size does not match the graph")
    target_outputs = tuple(protocol.output(s) for s in start)
    correct = sum(1 for o in target_outputs if o == LEADER) == 1
    pairs = all_ordered_pairs(graph)

    visited: Set[Tuple[Hashable, ...]] = {start}
    frontier: deque = deque([start])
    while frontier:
        current = frontier.popleft()
        for initiator, responder in pairs:
            a, b = current[initiator], current[responder]
            new_a, new_b = protocol.transition(a, b)
            if new_a == a and new_b == b:
                continue
            nxt = list(current)
            nxt[initiator] = new_a
            nxt[responder] = new_b
            nxt_tuple = tuple(nxt)
            if nxt_tuple in visited:
                continue
            outputs = tuple(protocol.output(s) for s in nxt_tuple)
            if outputs != target_outputs:
                return StabilityVerdict(
                    stable=False,
                    correct=correct,
                    explored=len(visited),
                    counterexample=nxt_tuple,
                )
            visited.add(nxt_tuple)
            if len(visited) > max_configurations:
                raise StateSpaceTooLarge(
                    f"more than {max_configurations} configurations reachable"
                )
            frontier.append(nxt_tuple)
    return StabilityVerdict(
        stable=True, correct=correct, explored=len(visited), counterexample=None
    )


def reachable_configurations(
    protocol: PopulationProtocol,
    states: Sequence[Hashable],
    graph: Graph,
    max_configurations: int = 200_000,
) -> List[Tuple[Hashable, ...]]:
    """All configurations reachable from ``states`` (small instances only)."""
    start = tuple(states)
    pairs = all_ordered_pairs(graph)
    visited: Set[Tuple[Hashable, ...]] = {start}
    order: List[Tuple[Hashable, ...]] = [start]
    frontier: deque = deque([start])
    while frontier:
        current = frontier.popleft()
        for initiator, responder in pairs:
            a, b = current[initiator], current[responder]
            new_a, new_b = protocol.transition(a, b)
            if new_a == a and new_b == b:
                continue
            nxt = list(current)
            nxt[initiator] = new_a
            nxt[responder] = new_b
            nxt_tuple = tuple(nxt)
            if nxt_tuple in visited:
                continue
            visited.add(nxt_tuple)
            if len(visited) > max_configurations:
                raise StateSpaceTooLarge(
                    f"more than {max_configurations} configurations reachable"
                )
            order.append(nxt_tuple)
            frontier.append(nxt_tuple)
    return order


def certificate_is_sound_on(
    protocol: PopulationProtocol,
    states: Sequence[Hashable],
    graph: Graph,
    max_configurations: int = 200_000,
) -> bool:
    """Check that a certified-stable configuration really is stable.

    Used by tests: whenever ``protocol.is_output_stable_configuration``
    returns ``True`` for a configuration, the exhaustive check must agree.
    Returns ``True`` when either the certificate does not fire or the
    exhaustive check confirms stability and correctness.
    """
    if not protocol.is_output_stable_configuration(list(states), graph):
        return True
    verdict = check_stability_by_reachability(
        protocol, states, graph, max_configurations=max_configurations
    )
    return verdict.stable and verdict.correct


def always_reaches_single_leader(
    protocol: PopulationProtocol,
    graph: Graph,
    inputs: Optional[Sequence[Hashable]] = None,
    max_configurations: int = 200_000,
) -> bool:
    """Whether every reachable configuration can still reach a correct stable one.

    This is the "stabilizes with probability 1" property: under the uniform
    random scheduler, a protocol stabilizes almost surely if and only if
    from every reachable configuration some correct, stable configuration
    remains reachable (the stochastic scheduler realises every finite
    schedule with positive probability).  Exponential; tests only.
    """
    if inputs is None:
        start = [protocol.initial_state(None)] * graph.n_nodes
    else:
        start = [protocol.initial_state(x) for x in inputs]
    configs = reachable_configurations(
        protocol, start, graph, max_configurations=max_configurations
    )
    for config in configs:
        if not _can_reach_stable_correct(protocol, config, graph, max_configurations):
            return False
    return True


def _can_reach_stable_correct(
    protocol: PopulationProtocol,
    states: Tuple[Hashable, ...],
    graph: Graph,
    max_configurations: int,
) -> bool:
    for config in reachable_configurations(
        protocol, states, graph, max_configurations=max_configurations
    ):
        leaders = sum(1 for s in config if protocol.output(s) == LEADER)
        if leaders != 1:
            continue
        verdict = check_stability_by_reachability(
            protocol, config, graph, max_configurations=max_configurations
        )
        if verdict.stable and verdict.correct:
            return True
    return False
