"""Configurations of population protocols.

A configuration is a map from nodes to states (Section 2.2).  The simulator
mutates a plain Python list in place for speed; :class:`Configuration`
wraps such a list with the counting / comparison helpers the analysis and
lower-bound modules need (state counts, density, leader multiplicity),
without copying on every step.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple


class Configuration:
    """A snapshot of all node states at some time step.

    Parameters
    ----------
    states:
        One state per node, indexed by node id.
    step:
        The number of scheduler interactions that produced this
        configuration (0 for the initial configuration).
    """

    __slots__ = ("_states", "step")

    def __init__(self, states: Sequence[Hashable], step: int = 0) -> None:
        self._states: Tuple[Hashable, ...] = tuple(states)
        self.step = int(step)

    # ------------------------------------------------------------------
    # Mapping-like access
    # ------------------------------------------------------------------
    def __getitem__(self, node: int) -> Hashable:
        return self._states[node]

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._states)

    @property
    def states(self) -> Tuple[Hashable, ...]:
        """The state tuple (immutable)."""
        return self._states

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def state_counts(self) -> Counter:
        """Multiset of states (the "counts" view used by Section 7)."""
        return Counter(self._states)

    def count(self, state: Hashable) -> int:
        """Number of nodes in the given state."""
        return self._states.count(state)

    def distinct_states(self) -> int:
        """Number of distinct states present."""
        return len(set(self._states))

    def nodes_in_state(self, state: Hashable) -> Tuple[int, ...]:
        """Indices of nodes currently in ``state``."""
        return tuple(i for i, s in enumerate(self._states) if s == state)

    def density(self, state: Hashable) -> float:
        """Fraction of nodes in ``state`` (the α of α-dense configurations)."""
        if not self._states:
            return 0.0
        return self.count(state) / len(self._states)

    def is_alpha_dense(self, states: Iterable[Hashable], alpha: float) -> bool:
        """Every state in ``states`` is present in count at least ``alpha * n``.

        This is the (non-"fully") α-density notion of Section 7.1.
        """
        n = len(self._states)
        counts = self.state_counts()
        return all(counts.get(s, 0) >= alpha * n for s in states)

    def is_fully_alpha_dense(self, states: Iterable[Hashable], alpha: float) -> bool:
        """α-dense with respect to ``states`` and no other state present."""
        wanted = set(states)
        if not self.is_alpha_dense(wanted, alpha):
            return False
        return set(self._states) <= wanted

    def outputs(self, protocol) -> Tuple[Any, ...]:
        """Per-node outputs under the given protocol."""
        return tuple(protocol.output(s) for s in self._states)

    def replace(self, assignments: Dict[int, Hashable], step: int | None = None) -> "Configuration":
        """A copy with the given node→state assignments applied."""
        states = list(self._states)
        for node, state in assignments.items():
            states[node] = state
        return Configuration(states, step=self.step if step is None else step)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        return hash(self._states)

    def __repr__(self) -> str:
        preview = ", ".join(repr(s) for s in self._states[:6])
        suffix = ", ..." if len(self._states) > 6 else ""
        return f"Configuration(step={self.step}, states=[{preview}{suffix}])"


def uniform_initial_configuration(protocol, n_nodes: int, input_symbol: Any = None) -> Configuration:
    """The all-identical initial configuration of Section 2.2."""
    state = protocol.initial_state(input_symbol)
    return Configuration([state] * n_nodes, step=0)


def initial_configuration_from_inputs(protocol, inputs: Sequence[Any]) -> Configuration:
    """Initial configuration for per-node inputs (e.g. leader candidates)."""
    return Configuration([protocol.initial_state(x) for x in inputs], step=0)
