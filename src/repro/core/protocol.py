"""The population-protocol abstraction (Section 2.2 of the paper).

A protocol is a tuple ``A = (Λ, Ξ, Σ_in, Σ_out, init, out)``:

* ``Λ`` — the set of node states,
* ``Ξ : Λ × Λ → Λ × Λ`` — the transition function applied to the ordered
  (initiator, responder) pair sampled by the scheduler,
* ``Σ_in`` / ``Σ_out`` — input / output alphabets,
* ``init : Σ_in → Λ`` — the initialisation function,
* ``out : Λ → Σ_out`` — the output function.

:class:`PopulationProtocol` encodes exactly this signature.  States can be
any hashable Python objects; constant-state protocols use small tuples so
the simulator can memoise the transition function into a lookup table.

Protocols may be *non-uniform* in the paper's sense (Section 2.2): the
transition function can depend on structural parameters of the interaction
graph (``n``, ``m``, ``Δ``, an estimate of ``B(G)``), provided all nodes are
given the same information.  Such parameters are passed to the protocol's
constructor — the per-node initialisation still treats all nodes
identically.
"""

from __future__ import annotations

import abc
from typing import Any, Generic, Hashable, Optional, Sequence, Tuple, TypeVar

State = TypeVar("State", bound=Hashable)

#: Output value for a node that currently considers itself the leader.
LEADER = "leader"
#: Output value for a node that currently considers itself a follower.
FOLLOWER = "follower"


class PopulationProtocol(abc.ABC, Generic[State]):
    """Abstract base class for population protocols.

    Subclasses implement :meth:`initial_state`, :meth:`transition` and
    :meth:`output`.  The default input symbol is ``None``: leader-election
    protocols start all nodes in the same state (Section 2.2), and the
    input hook exists for protocols such as the token protocol of
    Theorem 16 which accepts a set of leader candidates as input.
    """

    #: Human-readable protocol name used in experiment reports.
    name: str = "population-protocol"

    #: Whether the transition function is a pure function of the two states
    #: with a small domain, so the simulator may memoise it in a dict.
    cacheable_transitions: bool = True

    #: Declares that :meth:`is_output_stable_configuration` provably
    #: returns ``False`` whenever the number of nodes outputting
    #: ``LEADER`` differs from one.  The replica-batched executor
    #: (:mod:`repro.runtime.execute`) then uses its exactly-maintained
    #: leader count to skip the Python certificate on configurations that
    #: cannot certify — an optimisation that never changes when
    #: certification fires.  Leave ``False`` unless the certificate
    #: carries an explicit unique-leader requirement.
    certificate_requires_unique_leader: bool = False

    @abc.abstractmethod
    def initial_state(self, input_symbol: Any = None) -> State:
        """State assigned to a node with the given input symbol."""

    @abc.abstractmethod
    def transition(self, initiator: State, responder: State) -> Tuple[State, State]:
        """Apply ``Ξ`` to the ordered (initiator, responder) state pair."""

    @abc.abstractmethod
    def output(self, state: State) -> Any:
        """Map a state to its output symbol."""

    # ------------------------------------------------------------------
    # Optional protocol metadata
    # ------------------------------------------------------------------
    def state_space_size(self) -> Optional[int]:
        """Number of distinct reachable states, if known.

        Returning ``None`` means "unbounded / not tracked"; the simulator
        then reports the number of *observed* distinct states instead.
        """
        return None

    def enumerate_states(self) -> Optional[Sequence[State]]:
        """All states of ``Λ``, if they can be enumerated cheaply.

        Used by the compiled engine (:mod:`repro.engine`) to pre-register
        state codes and size its lookup tables once.  Returning ``None``
        (the default) makes the engine discover states lazily as they
        appear in an execution, which is the right choice for protocols
        whose state *universe* is huge but whose reachable set is small
        (e.g. the identifier protocol's ``O(n^4)`` states).
        """
        return None

    def compile_key(self) -> Optional[Hashable]:
        """Identity of this protocol's transition function, for table reuse.

        Two instances with equal, non-``None`` keys must implement exactly
        the same transition, output and initialisation functions; the
        compiled engine then shares one set of lookup tables between them
        (e.g. across the repeated trials of a Monte-Carlo measurement).
        Returning ``None`` (the default) restricts table reuse to the
        instance itself.
        """
        return None

    def is_output_stable_configuration(self, states: Sequence[State], graph) -> bool:
        """Protocol-specific certificate that a configuration is stable.

        A return value of ``True`` must be *sound*: no sequence of further
        interactions may change any node's output.  Returning ``False``
        simply means the certificate cannot conclude stability.  The
        default implementation never certifies anything, so callers fall
        back to step budgets or the exhaustive reachability checker.
        """
        return False

    def describe(self) -> dict:
        """Metadata dictionary used by the experiment harness."""
        return {
            "name": self.name,
            "state_space_size": self.state_space_size(),
            "cacheable_transitions": self.cacheable_transitions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class LeaderElectionProtocol(PopulationProtocol[State]):
    """A population protocol whose outputs are ``LEADER`` / ``FOLLOWER``.

    Adds convenience helpers for counting leaders and checking the
    correctness condition (exactly one leader).
    """

    def count_leaders(self, states: Sequence[State]) -> int:
        """Number of nodes currently outputting ``LEADER``."""
        return sum(1 for s in states if self.output(s) == LEADER)

    def leader_nodes(self, states: Sequence[State]) -> Tuple[int, ...]:
        """Indices of the nodes currently outputting ``LEADER``."""
        return tuple(i for i, s in enumerate(states) if self.output(s) == LEADER)

    def is_correct_configuration(self, states: Sequence[State]) -> bool:
        """Exactly one leader and everyone else a follower (Section 2.2)."""
        return self.count_leaders(states) == 1
