"""Sharded graph engine: million-node topologies behind the runtime seam.

The package splits a topology into per-shard CSR adjacency blocks
(:class:`PartitionedGraph`), routes the global seeded ``[0, 2m)`` pair
stream to owning shards through memory-mapped routing tables
(:class:`ShardedInteractionSource`) with explicit boundary-pair exchange
queues (:class:`ExchangeQueue`), and executes plans shard-locally
(:func:`execute_sharded`) behind the same probe-and-fallback seam as the
v6 → v5 → NumPy executor chain.  Execution follows the *span*
schedule (:class:`SpanBlock`): the whole routed chunk runs in draw order
as native-kernel calls against a global code array — in-process as one
call per chunk, or split per owning worker across the fork-based
:class:`ShardWorkerPool` (``shard_workers=``) — and only boundary events
stay order-critical.

The determinism contract (gated by ``tests/test_sharding.py`` and
``scripts/ci_parallel_equivalence.py``): 1-shard execution is
byte-identical to the batched path for any seed, and k-shard execution
is byte-identical to 1-shard for any k.  Sharding is a *capacity* dial —
it bounds resident memory so sparse families reach n >= 10^6 — never a
semantics dial.
"""

from .executor import execute_sharded, sharded_eligible
from .partition import PARTITION_MODES, PartitionedGraph
from .pool import ShardPoolError, ShardWorkerPool
from .source import ExchangeQueue, ShardedInteractionSource, SpanBlock

__all__ = [
    "PARTITION_MODES",
    "PartitionedGraph",
    "ExchangeQueue",
    "ShardedInteractionSource",
    "SpanBlock",
    "ShardPoolError",
    "ShardWorkerPool",
    "execute_sharded",
    "sharded_eligible",
]
