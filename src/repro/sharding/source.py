"""Partition-aware pair sampling and boundary exchange.

:class:`ShardedInteractionSource` wraps the package's single seeded
stream (:class:`~repro.runtime.source.InteractionSource`, consumed
*undecoded* through ``next_pair_indices``) and routes every drawn pair
index through the partition's memory-mapped routing tables — the same
draws, in the same global order, annotated with the owning shards and
local node ids.  Because the wrapped source is THE seeded stream, a
sharded run consumes bit-for-bit the refill sequence a batched run
consumes; partitioning decides *where* a pair is applied, never *which*
pair is drawn.

:class:`ExchangeQueue` is the explicit inter-shard message fabric (the
Network element of the PE-grid decomposition): a boundary pair — one
whose initiator and responder live on different shards — is posted to
the ordered FIFO channel ``(initiator shard -> responder shard)``,
handed over, and acknowledged within the same interaction.  The
handshake is synchronous, so delivery order equals global draw order by
construction, and the per-block quiescence check (every channel empty
at a certificate boundary) asserts the global-order contract instead of
assuming it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

import numpy as np

from ..runtime.source import InteractionSource
from .partition import PartitionedGraph


class ExchangeError(RuntimeError):
    """A boundary-exchange invariant was violated (lost/reordered message)."""


class ExchangeQueue:
    """Deterministic FIFO channels between ordered shard pairs.

    Tracks per-channel posted/delivered counters; :meth:`assert_quiescent`
    is the global quiescence check run at every certificate boundary.
    """

    def __init__(self, shards: int) -> None:
        self.n_shards = int(shards)
        self._channels: Dict[Tuple[int, int], Deque[Tuple[int, int]]] = {}
        self.posted = np.zeros((self.n_shards, self.n_shards), dtype=np.int64)
        self.delivered = np.zeros((self.n_shards, self.n_shards), dtype=np.int64)

    def post(self, src: int, dst: int, payload: Tuple[int, int]) -> None:
        """Enqueue one boundary interaction on the ``src -> dst`` channel."""
        self._channels.setdefault((src, dst), deque()).append(payload)
        self.posted[src, dst] += 1

    def deliver(self, src: int, dst: int) -> Tuple[int, int]:
        """Dequeue the oldest message of the channel (FIFO)."""
        channel = self._channels.get((src, dst))
        if not channel:
            raise ExchangeError(f"delivery from empty channel {src} -> {dst}")
        self.delivered[src, dst] += 1
        return channel.popleft()

    @property
    def in_flight(self) -> int:
        """Messages posted but not yet delivered, across all channels."""
        return int(self.posted.sum() - self.delivered.sum())

    def assert_quiescent(self) -> None:
        """The global quiescence check: every channel drained."""
        if self.in_flight:
            lagging = [
                (int(src), int(dst), int(self.posted[src, dst] - self.delivered[src, dst]))
                for src in range(self.n_shards)
                for dst in range(self.n_shards)
                if self.posted[src, dst] != self.delivered[src, dst]
            ]
            raise ExchangeError(f"boundary exchange not quiescent: {lagging}")


@dataclass
class SpanBlock:
    """One routed chunk in original draw order, annotated for spans.

    The draws strictly between two boundary events are contiguous in
    draw order and all shard-local, so the in-process kernel backend
    executes each such *span* as a single native call against the global
    code array, and the worker pool splits the same draw-order arrays
    per owning worker — no per-shard regrouping, no argsort, an order of
    magnitude fewer kernel invocations than per-run dispatch.  Endpoints
    are **global** node ids (``gu``/``gv``); the per-draw shard
    annotations locate the boundary events, assign owners, and feed the
    opt-in shard statistics.
    """

    size: int
    #: Global initiator/responder node ids, int64, draw order.
    gu: np.ndarray
    gv: np.ndarray
    #: Owning shard of each draw's initiator/responder (int16).
    init_shard: np.ndarray
    resp_shard: np.ndarray
    #: Chunk positions of the boundary events, ascending.
    boundary_pos: np.ndarray

    @property
    def n_boundary(self) -> int:
        return int(self.boundary_pos.size)


class ShardedInteractionSource:
    """The global seeded pair stream, routed to owning shards.

    Parameters
    ----------
    source:
        The seeded stream to consume (any object with
        ``next_pair_indices(size)`` — an ``InteractionSource`` or a
        ``RandomScheduler``).
    partition:
        The :class:`PartitionedGraph` whose routing tables annotate the
        draws.
    """

    def __init__(self, source: InteractionSource, partition: PartitionedGraph) -> None:
        self.source = source
        self.partition = partition

    @property
    def steps_emitted(self) -> int:
        return self.source.steps_emitted

    def next_routed(
        self, size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The next ``size`` global draws, annotated with their routing.

        Returns ``(indices, init_shard, init_local, resp_shard,
        resp_local)``; the gathers read only the routing-table pages the
        block touches (the tables are memory-mapped).
        """
        indices = self.source.next_pair_indices(size)
        p = self.partition
        return (
            indices,
            np.take(p.pair_init_shard, indices),
            np.take(p.pair_init_local, indices),
            np.take(p.pair_resp_shard, indices),
            np.take(p.pair_resp_local, indices),
        )

    def next_spans(self, size: int) -> SpanBlock:
        """The next ``size`` draws with global endpoints, in draw order.

        Consumes exactly the draws :meth:`next_routed` would consume,
        but resolves them straight to **global** node ids from the
        graph's edge arrays and the in-memory node assignment — the
        memory-mapped routing tables are never touched, and no
        regrouping happens.  This is the fast in-process schedule: the
        contiguous stretch between two boundary positions is shard-local
        by construction, so it runs as one native-kernel call.
        """
        indices = self.source.next_pair_indices(size)
        p = self.partition
        graph = p.graph
        m = graph.n_edges
        # Index r < m is edge r in stored orientation (u -> v);
        # r >= m is its reverse — the same decode the routing tables froze.
        rev = indices >= m
        edge = np.where(rev, indices - m, indices)
        u = np.take(graph.edges_u, edge)
        v = np.take(graph.edges_v, edge)
        gu = np.where(rev, v, u)
        gv = np.where(rev, u, v)
        init_shard = np.take(p.assignment, gu)
        resp_shard = np.take(p.assignment, gv)
        return SpanBlock(
            size=int(size),
            gu=gu,
            gv=gv,
            init_shard=init_shard,
            resp_shard=resp_shard,
            boundary_pos=np.flatnonzero(init_shard != resp_shard).astype(np.int64),
        )

