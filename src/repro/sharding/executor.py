"""The sharded plan executor (capacity twin of the replica-batched stack).

:func:`execute_sharded` runs an :class:`~repro.runtime.plan.ExecutionPlan`
whose ``shards`` dial is set: node state lives in per-shard local arrays,
every drawn pair is routed to its owning shard(s) through the partition's
memory-mapped tables, and cross-shard pairs go through the explicit
:class:`~repro.sharding.source.ExchangeQueue` handshake.  The global
seeded stream, the ``min(check_interval, remaining)`` block sizes, the
certificate cadence, the unique-leader precheck and all per-replica
bookkeeping (last output change, leader count, distinct-code mask)
mirror :func:`repro.runtime.execute._execute_stack` exactly, so results
are bit-identical to the batched path — 1 shard vs the stack and
k shards vs 1 shard are both gated in CI.

Execution follows the *span* schedule
(:meth:`~repro.sharding.source.ShardedInteractionSource.next_spans`): a
routed chunk is an alternation of shard-local stretches and boundary
events, consumed in original draw order against a global ``int64`` code
array.  Interactions on disjoint shard-local state commute, so between
two boundary events every shard's local draws may execute back to back —
or on another process — and still produce the byte-identical global
result; only the boundary events themselves are order-critical, and
they apply in global draw order, in this process, always.  In-process,
the **whole chunk** — boundary events included — is one
``repro_run_sharded_chunk`` native call (exact draw order, per-boundary
non-null flags for the exchange accounting, and the v5
lazy-compile/miss-resume discipline).  With ``shard_workers=`` set, the
same span arrays are split per owning worker and fan out across a
persistent fork-based worker pool (:mod:`repro.sharding.pool`), and the
boundary events become pairwise handshakes inside a per-chunk
super-step barrier.

Probe-and-fallback (the v6 -> v5 -> NumPy idiom), innermost first:

* worker pool — needs ``shard_workers >= 1``, > 1 shard, a built kernel,
  complete transition tables and a forkable platform; anything else (or
  a worker dying mid-super-step, or ``REPRO_DISABLE_SHARD_WORKERS=1``)
  demotes to …
* in-process kernel loop — needs the native kernel; without it (or with
  ``REPRO_DISABLE_SHARD_KERNEL=1``) the chunk falls back to …
* the per-pair Python scalar loop (the PR-9 path, kept as the always-
  available baseline).

A plan is served here at all only when :func:`sharded_eligible` accepts
it — static topology, no stream override or trace, compilable
homogeneous protocol, and ``REPRO_DISABLE_SHARDING`` unset.  Everything
else falls through to the existing executor chain, where the ``shards``
dial is simply ignored (results are identical either way, which is what
makes the dial safe to thread through scenarios and services).
"""

from __future__ import annotations

import ctypes
import os
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from ..runtime.plan import ExecutionPlan
from .partition import MAX_SHARDS, PartitionedGraph
from .source import ExchangeQueue, ShardedInteractionSource, SpanBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.simulator import SimulationResult
    from ..engine.compiler import CompiledProtocol

_MISSING = object()


def sharded_eligible(plan: ExecutionPlan) -> bool:
    """Whether the sharded executor can serve this plan (the probe).

    Mirrors the v6 probe: any refusal silently drops the plan to the
    existing executor chain.  ``REPRO_DISABLE_SHARDING=1`` simulates an
    unavailable engine (the fallback-chain tests use it).
    """
    if plan.shards is None or int(plan.shards) < 1:
        return False
    if os.environ.get("REPRO_DISABLE_SHARDING"):
        return False
    if plan.schedule is not None or plan.scheduler is not None:
        return False
    if plan.record_leader_trace:
        return False
    if plan.mode == "reference" or plan.engine == "reference":
        return False
    if plan.graph.n_edges == 0:
        return False
    from ..runtime.plan import _homogeneous

    if not _homogeneous(plan.protocols):
        return False
    return _resolve_compiled(plan) is not None


def _resolve_compiled(plan: ExecutionPlan) -> Optional["CompiledProtocol"]:
    """The plan's shared table set, compiling on demand (None on failure)."""
    if plan.compiled is not None:
        return plan.compiled
    from ..engine.compiler import (
        DEFAULT_MAX_STATES,
        ProtocolCompilationError,
        get_compiled,
    )

    try:
        return get_compiled(
            plan.protocols[0],
            max_states=plan.max_states if plan.max_states is not None else DEFAULT_MAX_STATES,
        )
    except ProtocolCompilationError:
        return None


def _shard_kernel():
    """The per-run shard kernel (the pool's), or ``None`` (disabled/unbuilt)."""
    if os.environ.get("REPRO_DISABLE_SHARD_KERNEL"):
        return None
    from ..engine.native import get_run_shard_kernel

    return get_run_shard_kernel()


def _chunk_kernel():
    """The whole-chunk sharded kernel, or ``None`` (disabled or unbuilt)."""
    if os.environ.get("REPRO_DISABLE_SHARD_KERNEL"):
        return None
    from ..engine.native import get_run_sharded_chunk_kernel

    return get_run_sharded_chunk_kernel()


def execute_sharded(
    plan: ExecutionPlan, partition: Optional[PartitionedGraph] = None
) -> List["SimulationResult"]:
    """Run every replica of ``plan`` shard-locally, in replica order.

    ``partition`` injects a prebuilt layout (the differential tests pass
    hash partitions); by default the plan's graph is range-partitioned
    into ``min(plan.shards, n, MAX_SHARDS)`` shards.  Every replica is
    timed individually (``wall_time_seconds`` is that replica's own
    measurement, never a smeared share of the plan's).
    """
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult
    from ..engine.compiler import ProtocolCompilationError

    graph = plan.graph
    protocol = plan.protocols[0]
    compiled = _resolve_compiled(plan)
    assert compiled is not None
    replica_count = plan.n_replicas
    max_steps = plan.max_steps

    initial_states = plan.initial_states()
    initial_codes = compiled.encode(initial_states)
    initial_leaders = compiled.leader_count(initial_codes)

    initially_stable = protocol.is_output_stable_configuration(initial_states, graph)
    if initially_stable or max_steps == 0:
        distinct = int(np.unique(initial_codes).size)
        results = []
        for _ in range(replica_count):
            start = time.perf_counter()
            decoded = compiled.decode_codes(initial_codes)
            result = SimulationResult(
                stabilized=initially_stable,
                certified_step=0,
                last_output_change_step=0,
                steps_executed=0,
                leaders=initial_leaders,
                final_configuration=Configuration(decoded, step=0),
                distinct_states_observed=distinct,
                leader_trace=[],
                wall_time_seconds=0.0,
            )
            result.wall_time_seconds = time.perf_counter() - start
            results.append(result)
        return results

    if partition is None:
        shards = max(1, min(int(plan.shards or 1), graph.n_nodes, MAX_SHARDS))
        partition = PartitionedGraph(graph, shards)

    pool = _maybe_start_pool(plan, partition, compiled)
    results = []
    try:
        for index, seed in enumerate(plan.seeds):
            start = time.perf_counter()
            try:
                if pool is not None:
                    from .pool import ShardPoolError

                    try:
                        result = _run_replica(
                            plan, protocol, compiled, partition, seed,
                            initial_codes, initial_leaders, pool=pool,
                        )
                    except ShardPoolError as exc:
                        # A worker died mid-super-step (or the pool broke
                        # some other way): the stream is re-creatable from
                        # the seed, so rerun this replica — and every
                        # later one — in-process, byte-identically.  Drop
                        # the traceback frames first — they pin numpy
                        # views of the shared blocks, which must die for
                        # the pool to release its mappings cleanly.
                        err: Optional[BaseException] = exc
                        for _ in range(8):
                            if err is None:
                                break
                            err.__traceback__ = None
                            err = err.__context__
                        pool.close()
                        pool = None
                        result = _run_replica(
                            plan, protocol, compiled, partition, seed,
                            initial_codes, initial_leaders,
                        )
                else:
                    result = _run_replica(
                        plan, protocol, compiled, partition, seed,
                        initial_codes, initial_leaders,
                    )
            except ProtocolCompilationError:
                # Lazy state discovery outgrew the table bound mid-run.
                # Every scenario seed is a plain integer, so the streams
                # are re-creatable: drop the whole plan to the unsharded
                # chain (the same demotion the single-run engine
                # performs).
                if not all(isinstance(s, (int, np.integer)) for s in plan.seeds):
                    raise
                from ..runtime.execute import _execute_single

                return [_execute_single(plan, i) for i in range(replica_count)]
            result.wall_time_seconds = time.perf_counter() - start
            results.append(result)
    finally:
        if pool is not None:
            pool.close()
    return results


def _maybe_start_pool(
    plan: ExecutionPlan, partition: PartitionedGraph, compiled: "CompiledProtocol"
):
    """A live shard-worker pool, or ``None`` (the probe).

    The pool requires every layer beneath it: ``shard_workers >= 1`` on
    the plan, more than one shard, the native shard kernel, *complete*
    transition tables (parallel lazy state discovery would assign codes
    in process-dependent order, breaking the shared code blocks), a
    forkable platform and ``REPRO_DISABLE_SHARD_WORKERS`` unset.  Any
    refusal — including a daemonic parent that may not fork — demotes
    silently to the in-process path, which is byte-identical.
    """
    workers = plan.shard_workers
    if not workers or int(workers) < 1:
        return None
    if os.environ.get("REPRO_DISABLE_SHARD_WORKERS"):
        return None
    if partition.n_shards < 2:
        return None
    if _shard_kernel() is None:
        return None
    if not compiled.tables_complete:
        return None
    try:
        from .pool import ShardWorkerPool

        return ShardWorkerPool(partition, compiled, n_workers=int(workers))
    except Exception:
        return None


class _ReplicaState:
    """Mutable per-replica bookkeeping shared with the run backends."""

    __slots__ = ("leaders", "last_change", "seen")

    def __init__(self, leaders: int, seen: np.ndarray) -> None:
        self.leaders = int(leaders)
        self.last_change = 0
        self.seen = seen

    def grow_seen(self, stride: int) -> None:
        if self.seen.size < stride:
            grown = np.zeros(stride, dtype=np.uint8)
            grown[: self.seen.size] = self.seen
            self.seen = grown


class _KernelChunks:
    """In-process backend: one ``repro_run_sharded_chunk`` call per chunk.

    Node state lives in a single *global* code array, and the chunk is
    consumed in exact draw order — so the run regrouping the worker pool
    needs (disjoint per-shard blocks) buys nothing in-process, and the
    per-run (or even per-segment) ctypes dispatch only costs Python.
    The whole routed chunk — boundary events included — is one native
    call; the kernel reports per boundary event whether its transition
    was non-null, and the exchange accounting happens afterwards in one
    vectorised pass (the synchronous handshake posts and delivers within
    the same draw, so only the counters move and quiescence holds by
    construction).  The v5 miss-resume discipline applies per chunk:
    stop at a missing entry, fill it via ``scalar_entry``, refresh the
    possibly-grown tables, resume at the same draw.
    """

    name = "kernel"

    def __init__(self, kernel, compiled: "CompiledProtocol", initial_codes: np.ndarray):
        self._kernel = kernel
        self._compiled = compiled
        self.codes = np.ascontiguousarray(initial_codes, dtype=np.int64).copy()

    def run_chunk(
        self,
        routed: ShardedInteractionSource,
        size: int,
        base_step: int,
        state: _ReplicaState,
        exchange: ExchangeQueue,
    ) -> SpanBlock:
        block = routed.next_spans(size)
        kernel = self._kernel
        compiled = self._compiled
        codes = self.codes
        bp = block.boundary_pos
        n_boundary = bp.size
        applied = np.zeros(n_boundary, dtype=np.uint8)
        codes_ptr = codes.ctypes.data
        iu_ptr = block.gu.ctypes.data
        iv_ptr = block.gv.ctypes.data
        bp_ptr = bp.ctypes.data
        applied_ptr = applied.ctypes.data
        off = 0
        while True:
            last_io = ctypes.c_int64(state.last_change)
            leaders_io = ctypes.c_int64(state.leaders)
            done = kernel(
                codes_ptr,
                iu_ptr,
                iv_ptr,
                off,
                size,
                base_step,
                bp_ptr,
                n_boundary,
                applied_ptr,
                compiled.dpack.ctypes.data,
                compiled.stride,
                compiled.kshift,
                state.seen.ctypes.data,
                ctypes.byref(last_io),
                ctypes.byref(leaders_io),
            )
            state.last_change = last_io.value
            state.leaders = leaders_io.value
            if done >= size:
                break
            off = done
            # Missing entry at the stop offset: fill it (may grow the
            # tables — stride/kshift/dpack are re-read on resume) and
            # continue from the same draw.
            a = int(codes[block.gu[off]])
            b = int(codes[block.gv[off]])
            compiled.scalar_entry(a, b)
            state.grow_seen(compiled.stride)
        if n_boundary:
            # Exchange accounting for the non-null boundary events —
            # post and deliver in one vectorised pass.
            mask = applied.astype(bool)
            src = block.init_shard[bp].astype(np.int64)[mask]
            dst = block.resp_shard[bp].astype(np.int64)[mask]
            np.add.at(exchange.posted, (src, dst), 1)
            np.add.at(exchange.delivered, (src, dst), 1)
        return block

    def assemble(self, partition: PartitionedGraph) -> np.ndarray:
        return self.codes.copy()

    def end_replica(self, state: _ReplicaState) -> None:
        pass


def _run_replica(
    plan: ExecutionPlan,
    protocol: Any,
    compiled: "CompiledProtocol",
    partition: PartitionedGraph,
    seed: Any,
    initial_codes: np.ndarray,
    initial_leaders: int,
    pool: Any = None,
) -> "SimulationResult":
    """One replica: segmented schedule, kernel-backed local runs,
    boundary events applied in global draw order."""
    from ..core.scheduler import RandomScheduler

    kernel = _chunk_kernel()
    if kernel is None and pool is None:
        return _run_replica_python(
            plan, protocol, compiled, partition, seed, initial_codes, initial_leaders
        )

    graph = plan.graph
    n_shards = partition.n_shards
    if pool is not None:
        backend = pool.replica_backend(
            np.ascontiguousarray(initial_codes, dtype=np.int64)
        )
    else:
        backend = _KernelChunks(kernel, compiled, initial_codes)

    routed = ShardedInteractionSource(RandomScheduler(graph, rng=seed), partition)
    exchange = ExchangeQueue(n_shards)
    seen = np.zeros(compiled.stride, dtype=np.uint8)
    seen[np.unique(initial_codes)] = 1
    state = _ReplicaState(initial_leaders, seen)
    stats = _StatsCollector(n_shards, backend.name, pool) if plan.collect_shard_stats else None

    max_steps = plan.max_steps
    check_interval = plan.check_interval
    precheck = bool(getattr(protocol, "certificate_requires_unique_leader", False))
    step = 0
    stabilized = False
    certified_step = 0
    while not stabilized and step < max_steps:
        chunk = min(check_interval, max_steps - step)
        if pool is None:
            block = backend.run_chunk(routed, chunk, step, state, exchange)
        else:
            block = _run_pool_chunk(
                backend, routed, chunk, step, state, exchange, compiled
            )
        if stats is not None:
            stats.observe_block(block)
        step += chunk
        # Certificate boundary: the exchange fabric must be globally
        # quiescent, then the same precheck-gated certificate the stack
        # executor runs.
        exchange.assert_quiescent()
        if precheck and state.leaders != 1:
            continue
        decoded = compiled.decode_codes(backend.assemble(partition))
        if protocol.is_output_stable_configuration(decoded, graph):
            stabilized = True
            certified_step = step
    backend.end_replica(state)

    result = _finalize(
        plan, compiled, backend.assemble(partition), stabilized, certified_step, step, state
    )
    if stats is not None:
        result.shard_stats = stats.summary(exchange)
    return result


def _run_pool_chunk(
    backend: Any,
    routed: ShardedInteractionSource,
    size: int,
    base_step: int,
    state: _ReplicaState,
    exchange: ExchangeQueue,
    compiled: "CompiledProtocol",
) -> SpanBlock:
    """One super-step of the worker pool.

    The workers run their shard-local runs ahead on their own programs;
    this loop only drives the boundary handshakes — every boundary
    event is applied *here*, in global draw order, through the exchange
    fabric — plus the per-chunk ``done`` barrier.
    """
    from ..engine.compiler import _SCALAR_STRIDE
    from .pool import ShardPoolError

    scalar = compiled.scalar
    block = backend.begin_chunk(routed, size, base_step, state)
    nb = block.n_boundary
    for seg in range(nb + 1):
        backend.run_segment(seg, state)
        if seg >= nb:
            break
        backend.sync_boundary(seg)
        # Boundary event: the one order-critical draw.
        si, sj, li, lj, a, b = backend.boundary(seg)
        entry = scalar.get(a * _SCALAR_STRIDE + b, _MISSING)
        if entry is _MISSING:
            # Complete tables cannot miss; a miss here means the
            # workers' forked table copies are stale.
            raise ShardPoolError("table miss under the worker pool")
        if entry is not None:
            # Hand the responder's half across the shard fabric
            # (synchronous FIFO handshake — delivery order is global
            # draw order by construction).
            exchange.post(si, sj, (li, lj))
            exchange.deliver(si, sj)
            na, nb_code, dl, chg = entry
            backend.write_boundary(seg, na, nb_code)
            state.seen[na] = 1
            state.seen[nb_code] = 1
            if dl:
                state.leaders += dl
            if chg:
                changed_at = base_step + int(block.boundary_pos[seg]) + 1
                if changed_at > state.last_change:
                    state.last_change = changed_at
        backend.release_boundary(seg)
    backend.finish_chunk(state)
    return block


def _finalize(
    plan: ExecutionPlan,
    compiled: "CompiledProtocol",
    final_codes: np.ndarray,
    stabilized: bool,
    certified_step: int,
    step: int,
    state: _ReplicaState,
) -> "SimulationResult":
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult

    decoded = compiled.decode_codes(final_codes)
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else step,
        last_output_change_step=state.last_change,
        steps_executed=step,
        leaders=state.leaders,
        final_configuration=Configuration(decoded, step=step),
        distinct_states_observed=int(state.seen.sum()),
        leader_trace=[],
        wall_time_seconds=0.0,
    )


class _StatsCollector:
    """Per-replica shard observability (opt-in, never canonical)."""

    def __init__(self, n_shards: int, path: str, pool: Any) -> None:
        self.n_shards = n_shards
        self.path = path
        self.workers = 0 if pool is None else pool.n_workers
        self.steps_applied = np.zeros(n_shards, dtype=np.int64)
        self.boundary_pairs = 0
        self.run_lengths: Dict[int, int] = {}

    def observe_block(self, block: SpanBlock) -> None:
        # The span schedule never materialises runs; recover the
        # (segment, shard) grouping arithmetically.
        si = block.init_shard.astype(np.int64)
        sj = block.resp_shard.astype(np.int64)
        boundary = si != sj
        seg = np.cumsum(boundary, dtype=np.int64) - boundary
        local = ~boundary
        key = seg[local] * self.n_shards + si[local]
        runs, lengths = np.unique(key, return_counts=True)
        run_shard = runs % self.n_shards
        b_init_shard = si[block.boundary_pos]
        b_resp_shard = sj[block.boundary_pos]
        if lengths.size:
            np.add.at(self.steps_applied, run_shard, lengths)
            # Power-of-two buckets: run of length L lands in 2^(bits(L)-1).
            buckets = np.frexp(lengths.astype(np.float64))[1] - 1
            for bucket, count in zip(*np.unique(buckets, return_counts=True)):
                key = 1 << int(bucket)
                self.run_lengths[key] = self.run_lengths.get(key, 0) + int(count)
        if block.n_boundary:
            self.boundary_pairs += block.n_boundary
            np.add.at(self.steps_applied, b_init_shard, 1)
            np.add.at(self.steps_applied, b_resp_shard, 1)

    def summary(self, exchange: ExchangeQueue) -> Dict[str, Any]:
        return {
            "path": self.path,
            "shards": self.n_shards,
            "workers": self.workers,
            "steps_applied": self.steps_applied.tolist(),
            "boundary_pairs": int(self.boundary_pairs),
            "run_length_histogram": {
                str(k): v for k, v in sorted(self.run_lengths.items())
            },
            "exchange_posted": int(exchange.posted.sum()),
            "exchange_delivered": int(exchange.delivered.sum()),
            "exchange_in_flight": exchange.in_flight,
        }


def _run_replica_python(
    plan: ExecutionPlan,
    protocol: Any,
    compiled: "CompiledProtocol",
    partition: PartitionedGraph,
    seed: Any,
    initial_codes: np.ndarray,
    initial_leaders: int,
) -> "SimulationResult":
    """One replica through the per-pair Python scalar loop (the PR-9
    path): shard-local state, strict global-order application.  Kept as
    the kernel-less fallback and as the single-process baseline the
    sharding benchmark gates the kernel path against."""
    from ..core.configuration import Configuration
    from ..core.scheduler import RandomScheduler
    from ..core.simulator import SimulationResult
    from ..engine.compiler import _SCALAR_STRIDE

    graph = plan.graph
    max_steps = plan.max_steps
    check_interval = plan.check_interval
    n_shards = partition.n_shards

    routed = ShardedInteractionSource(RandomScheduler(graph, rng=seed), partition)
    exchange = ExchangeQueue(n_shards)

    # Shard-local state: plain Python lists (codes are small stable ints;
    # list indexing is the fastest scalar access CPython offers).
    local_codes: List[List[int]] = [
        initial_codes[partition.shard_members(s)].tolist() for s in range(n_shards)
    ]
    seen: List[int] = [0] * compiled.stride
    for code in np.unique(initial_codes).tolist():
        seen[code] = 1
    leaders = int(initial_leaders)
    last_change = 0
    step = 0
    stabilized = False
    certified_step = 0
    precheck = bool(getattr(protocol, "certificate_requires_unique_leader", False))
    scalar = compiled.scalar
    scalar_entry = compiled.scalar_entry
    stats = (
        _StatsCollector(n_shards, "python", None) if plan.collect_shard_stats else None
    )

    def assemble() -> np.ndarray:
        out = np.empty(graph.n_nodes, dtype=np.int64)
        for s in range(n_shards):
            out[partition.shard_members(s)] = local_codes[s]
        return out

    while not stabilized and step < max_steps:
        chunk = min(check_interval, max_steps - step)
        _, init_shard, init_local, resp_shard, resp_local = routed.next_routed(chunk)
        if stats is not None:
            boundary = init_shard != resp_shard
            crossings = int(boundary.sum())
            stats.boundary_pairs += crossings
            np.add.at(
                stats.steps_applied,
                init_shard.astype(np.int64),
                1,
            )
            np.add.at(
                stats.steps_applied,
                resp_shard[boundary].astype(np.int64),
                1,
            )
        si_list = init_shard.tolist()
        li_list = init_local.tolist()
        sj_list = resp_shard.tolist()
        lj_list = resp_local.tolist()
        for pos in range(chunk):
            si = si_list[pos]
            li = li_list[pos]
            sj = sj_list[pos]
            lj = lj_list[pos]
            codes_i = local_codes[si]
            codes_j = local_codes[sj]
            a = codes_i[li]
            b = codes_j[lj]
            entry = scalar.get(a * _SCALAR_STRIDE + b, _MISSING)
            if entry is _MISSING:
                entry = scalar_entry(a, b)
                if len(seen) < compiled.stride:
                    seen.extend([0] * (compiled.stride - len(seen)))
            if entry is None:
                continue
            na, nb, dl, chg = entry
            if si != sj:
                # Boundary pair: hand the responder's half across the
                # shard fabric (synchronous FIFO handshake — delivery
                # order is global draw order by construction).
                exchange.post(si, sj, (li, lj))
                exchange.deliver(si, sj)
            codes_i[li] = na
            codes_j[lj] = nb
            seen[na] = 1
            seen[nb] = 1
            if dl:
                leaders += dl
            if chg:
                last_change = step + pos + 1
        step += chunk
        # Certificate boundary: the exchange fabric must be globally
        # quiescent, then the same precheck-gated certificate the stack
        # executor runs.
        exchange.assert_quiescent()
        if precheck and leaders != 1:
            continue
        decoded = compiled.decode_codes(assemble())
        if protocol.is_output_stable_configuration(decoded, graph):
            stabilized = True
            certified_step = step

    final_codes = assemble()
    decoded = compiled.decode_codes(final_codes)
    result = SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else step,
        last_output_change_step=last_change,
        steps_executed=step,
        leaders=leaders,
        final_configuration=Configuration(decoded, step=step),
        distinct_states_observed=sum(seen),
        leader_trace=[],
        wall_time_seconds=0.0,
    )
    if stats is not None:
        result.shard_stats = stats.summary(exchange)
    return result
