"""The sharded plan executor (capacity twin of the replica-batched stack).

:func:`execute_sharded` runs an :class:`~repro.runtime.plan.ExecutionPlan`
whose ``shards`` dial is set: node state lives in per-shard local arrays,
every drawn pair is routed to its owning shard(s) through the partition's
memory-mapped tables, and cross-shard pairs go through the explicit
:class:`~repro.sharding.source.ExchangeQueue` handshake.  The global
seeded stream, the ``min(check_interval, remaining)`` block sizes, the
certificate cadence, the unique-leader precheck and all per-replica
bookkeeping (last output change, leader count, distinct-code mask)
mirror :func:`repro.runtime.execute._execute_stack` exactly, so results
are bit-identical to the batched path — 1 shard vs the stack and
k shards vs 1 shard are both gated in CI.

Sharding is a *capacity* path: interactions apply in global draw order
(that is the determinism contract), so the win is bounded resident
memory — no ``2m`` endpoint tables, no dense per-graph scratch — not
wall-clock speed.  The registered million-node scenarios run here; small
dense sweeps should keep using the kernel stack.

Probe-and-fallback (the v6 -> v5 -> NumPy idiom): a plan is served here
only when :func:`sharded_eligible` accepts it — static topology, no
stream override or trace, compilable homogeneous protocol, and
``REPRO_DISABLE_SHARDING`` unset.  Everything else falls through to the
existing executor chain, where the ``shards`` dial is simply ignored
(results are identical either way, which is what makes the dial safe to
thread through scenarios and services).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

from ..runtime.plan import ExecutionPlan
from .partition import MAX_SHARDS, PartitionedGraph
from .source import ExchangeQueue, ShardedInteractionSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.simulator import SimulationResult
    from ..engine.compiler import CompiledProtocol

_MISSING = object()


def sharded_eligible(plan: ExecutionPlan) -> bool:
    """Whether the sharded executor can serve this plan (the probe).

    Mirrors the v6 probe: any refusal silently drops the plan to the
    existing executor chain.  ``REPRO_DISABLE_SHARDING=1`` simulates an
    unavailable engine (the fallback-chain tests use it).
    """
    if plan.shards is None or int(plan.shards) < 1:
        return False
    if os.environ.get("REPRO_DISABLE_SHARDING"):
        return False
    if plan.schedule is not None or plan.scheduler is not None:
        return False
    if plan.record_leader_trace:
        return False
    if plan.mode == "reference" or plan.engine == "reference":
        return False
    if plan.graph.n_edges == 0:
        return False
    from ..runtime.plan import _homogeneous

    if not _homogeneous(plan.protocols):
        return False
    return _resolve_compiled(plan) is not None


def _resolve_compiled(plan: ExecutionPlan) -> Optional["CompiledProtocol"]:
    """The plan's shared table set, compiling on demand (None on failure)."""
    if plan.compiled is not None:
        return plan.compiled
    from ..engine.compiler import (
        DEFAULT_MAX_STATES,
        ProtocolCompilationError,
        get_compiled,
    )

    try:
        return get_compiled(
            plan.protocols[0],
            max_states=plan.max_states if plan.max_states is not None else DEFAULT_MAX_STATES,
        )
    except ProtocolCompilationError:
        return None


def execute_sharded(
    plan: ExecutionPlan, partition: Optional[PartitionedGraph] = None
) -> List["SimulationResult"]:
    """Run every replica of ``plan`` shard-locally, in replica order.

    ``partition`` injects a prebuilt layout (the differential tests pass
    hash partitions); by default the plan's graph is range-partitioned
    into ``min(plan.shards, n, MAX_SHARDS)`` shards.
    """
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult
    from ..engine.compiler import ProtocolCompilationError

    graph = plan.graph
    protocol = plan.protocols[0]
    compiled = _resolve_compiled(plan)
    assert compiled is not None
    replica_count = plan.n_replicas
    max_steps = plan.max_steps

    start_time = time.perf_counter()
    initial_states = plan.initial_states()
    initial_codes = compiled.encode(initial_states)
    initial_leaders = compiled.leader_count(initial_codes)

    def finalize(
        codes_row: np.ndarray, stabilized: bool, step: int, last: int, distinct: int, lead: int
    ) -> "SimulationResult":
        decoded = compiled.decode_codes(codes_row)
        return SimulationResult(
            stabilized=stabilized,
            certified_step=step,
            last_output_change_step=last,
            steps_executed=step,
            leaders=lead,
            final_configuration=Configuration(decoded, step=step),
            distinct_states_observed=distinct,
            leader_trace=[],
            wall_time_seconds=0.0,
        )

    initially_stable = protocol.is_output_stable_configuration(initial_states, graph)
    if initially_stable or max_steps == 0:
        wall = time.perf_counter() - start_time
        distinct = int(np.unique(initial_codes).size)
        results = []
        for _ in range(replica_count):
            result = finalize(initial_codes, initially_stable, 0, 0, distinct, initial_leaders)
            result.wall_time_seconds = wall / replica_count
            results.append(result)
        return results

    if partition is None:
        shards = max(1, min(int(plan.shards or 1), graph.n_nodes, MAX_SHARDS))
        partition = PartitionedGraph(graph, shards)

    try:
        results = [
            _run_replica(
                plan, protocol, compiled, partition, seed, initial_codes, initial_leaders
            )
            for seed in plan.seeds
        ]
    except ProtocolCompilationError:
        # Lazy state discovery outgrew the table bound mid-run.  Every
        # scenario seed is a plain integer, so the streams are
        # re-creatable: drop the whole plan to the unsharded chain (the
        # same demotion the single-run engine performs).
        if not all(isinstance(seed, (int, np.integer)) for seed in plan.seeds):
            raise
        from ..runtime.execute import _execute_single

        return [_execute_single(plan, index) for index in range(replica_count)]

    wall = time.perf_counter() - start_time
    for result in results:
        result.wall_time_seconds = wall / replica_count
    return results


def _run_replica(
    plan: ExecutionPlan,
    protocol: Any,
    compiled: "CompiledProtocol",
    partition: PartitionedGraph,
    seed: Any,
    initial_codes: np.ndarray,
    initial_leaders: int,
) -> "SimulationResult":
    """One replica, shard-local state, global-order application."""
    from ..core.configuration import Configuration
    from ..core.scheduler import RandomScheduler
    from ..core.simulator import SimulationResult
    from ..engine.compiler import _SCALAR_STRIDE

    graph = plan.graph
    max_steps = plan.max_steps
    check_interval = plan.check_interval
    n_shards = partition.n_shards

    routed = ShardedInteractionSource(RandomScheduler(graph, rng=seed), partition)
    exchange = ExchangeQueue(n_shards)

    # Shard-local state: plain Python lists (codes are small stable ints;
    # list indexing is the fastest scalar access CPython offers).
    local_codes: List[List[int]] = [
        initial_codes[partition.shard_members(s)].tolist() for s in range(n_shards)
    ]
    seen: List[int] = [0] * compiled.stride
    for code in np.unique(initial_codes).tolist():
        seen[code] = 1
    leaders = int(initial_leaders)
    last_change = 0
    step = 0
    stabilized = False
    certified_step = 0
    precheck = bool(getattr(protocol, "certificate_requires_unique_leader", False))
    scalar = compiled.scalar
    scalar_entry = compiled.scalar_entry

    def assemble() -> np.ndarray:
        out = np.empty(graph.n_nodes, dtype=np.int64)
        for s in range(n_shards):
            out[partition.shard_members(s)] = local_codes[s]
        return out

    while not stabilized and step < max_steps:
        chunk = min(check_interval, max_steps - step)
        _, init_shard, init_local, resp_shard, resp_local = routed.next_routed(chunk)
        si_list = init_shard.tolist()
        li_list = init_local.tolist()
        sj_list = resp_shard.tolist()
        lj_list = resp_local.tolist()
        for pos in range(chunk):
            si = si_list[pos]
            li = li_list[pos]
            sj = sj_list[pos]
            lj = lj_list[pos]
            codes_i = local_codes[si]
            codes_j = local_codes[sj]
            a = codes_i[li]
            b = codes_j[lj]
            entry = scalar.get(a * _SCALAR_STRIDE + b, _MISSING)
            if entry is _MISSING:
                entry = scalar_entry(a, b)
                if len(seen) < compiled.stride:
                    seen.extend([0] * (compiled.stride - len(seen)))
            if entry is None:
                continue
            na, nb, dl, chg = entry
            if si != sj:
                # Boundary pair: hand the responder's half across the
                # shard fabric (synchronous FIFO handshake — delivery
                # order is global draw order by construction).
                exchange.post(si, sj, (li, lj))
                exchange.deliver(si, sj)
            codes_i[li] = na
            codes_j[lj] = nb
            seen[na] = 1
            seen[nb] = 1
            if dl:
                leaders += dl
            if chg:
                last_change = step + pos + 1
        step += chunk
        # Certificate boundary: the exchange fabric must be globally
        # quiescent, then the same precheck-gated certificate the stack
        # executor runs.
        exchange.assert_quiescent()
        if precheck and leaders != 1:
            continue
        decoded = compiled.decode_codes(assemble())
        if protocol.is_output_stable_configuration(decoded, graph):
            stabilized = True
            certified_step = step

    final_codes = assemble()
    decoded = compiled.decode_codes(final_codes)
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else step,
        last_output_change_step=last_change,
        steps_executed=step,
        leaders=leaders,
        final_configuration=Configuration(decoded, step=step),
        distinct_states_observed=sum(seen),
        leader_trace=[],
        wall_time_seconds=0.0,
    )
