"""A deterministic, persistent shard-worker process pool.

:class:`ShardWorkerPool` turns the sharded executor's span schedule into
actual process parallelism: the global ``int64`` code block lives in
:mod:`multiprocessing.shared_memory` (node state indexed by global node
id — exactly the in-process layout), a fixed set of fork-based workers
owns the shards (shard ``s`` belongs to worker ``s % n_workers``), and
each routed chunk becomes one *super-step* — the parent draws and
annotates the chunk (the single global seeded stream never leaves the
parent) and ships each worker its whole program at once: the draws it
owns as flat endpoint arrays, split into runs at the boundary events
that touch its shards.  The workers execute their runs concurrently,
one native-kernel call per run against the shared block; between two
handshakes each worker writes only its own shards' nodes, so concurrent
runs touch disjoint state.

Determinism comes from the schedule, not from timing: within a segment
the shard-local runs commute (disjoint state), and every order-critical
draw — a boundary event — is applied *by the parent, in global draw
order*, between two pipe round-trips with exactly the workers whose
shards it touches (a worker not involved in a boundary keeps running;
the barrier is pairwise, not global).  The parent's
:class:`~repro.sharding.source.ExchangeQueue` posted/delivered matrices
and its per-chunk quiescence assert are the cross-process contract: a
lost or reordered hand-off shows up as a non-quiescent fabric, not as a
silently wrong result.  Results are byte-identical to the in-process
sharded path for any worker count.

The pool requires *complete* transition tables (parallel lazy state
discovery would assign codes in process-dependent order); any breakage
at run time — a worker killed mid-super-step, a closed pipe, a table
miss — raises :class:`ShardPoolError`, which the executor answers by
closing the pool and rerunning the replica in-process, byte-identically
(the stream is re-creatable from its seed).
``REPRO_SHARD_WORKER_KILL_AFTER_CHUNKS=<n>`` makes every worker die at
the start of its ``n``-th super-step (0-based) — the failure-path tests
use it; ``REPRO_DISABLE_SHARD_WORKERS=1`` disables the pool entirely.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import os
import weakref
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

from .partition import PartitionedGraph
from .source import SpanBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.compiler import CompiledProtocol


class ShardPoolError(RuntimeError):
    """The worker pool broke (dead worker, closed pipe, table miss).

    Always recoverable: the executor closes the pool and reruns the
    replica in-process from its seed, byte-identically.
    """


def _worker_main(conn, codes_view, compiled, kernel) -> None:
    """A shard worker's request loop (runs in the forked child).

    The worker owns nothing but kernel calls: each ``chunk`` message is
    its whole super-step program — the draws it owns as flat global
    endpoint arrays, split into runs by the boundary events it must
    handshake on.  Every run is one kernel call against the inherited
    shared-memory global code block (a worker only ever touches its own
    shards' nodes, so concurrent runs write disjoint state); each
    handshake blocks until the parent's ``go``, which guarantees the
    boundary event it is waiting on has been applied.  The worker
    reports its per-chunk leader delta / last-change max and its
    per-replica seen mask back to the parent.  Tables are complete by
    pool construction, so ``dpack`` is frozen and a kernel stop short of
    the run length is a protocol violation, reported as an error.
    """
    kill_env = os.environ.get("REPRO_SHARD_WORKER_KILL_AFTER_CHUNKS")
    kill_after = int(kill_env) if kill_env else -1
    dpack_ptr = compiled.dpack.ctypes.data
    stride = compiled.stride
    kshift = compiled.kshift
    seen = np.zeros(stride, dtype=np.uint8)
    seen_ptr = seen.ctypes.data
    codes_ptr = codes_view.ctypes.data
    chunks = 0

    def handshake(seg: int) -> bool:
        conn.send(("sync", seg))
        go = conn.recv()
        if go[0] != "go" or go[1] != seg:
            conn.send(("error", f"out-of-order boundary handshake: {go!r}"))
            return False
        return True

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "stop":
            break
        if tag == "reset":
            seen[:] = 0
            continue
        if tag == "collect":
            conn.send(("seen", seen.tobytes()))
            continue
        # tag == "chunk": run k covers draws [splits[k-1], splits[k])
        # (the first run starts at 0, the last ends at iu.size), with
        # the handshake on boundary segment syncs[k] after run k.
        if chunks == kill_after:
            os._exit(1)
        chunks += 1
        _, iu, iv, steps, splits, syncs = msg
        iu_ptr = iu.ctypes.data
        iv_ptr = iv.ctypes.data
        steps_ptr = steps.ctypes.data
        n_syncs = int(syncs.size)
        n_draws = int(iu.size)
        prev = 0
        leaders = 0
        last = 0
        failed = False
        try:
            for k in range(n_syncs + 1):
                hi = int(splits[k]) if k < n_syncs else n_draws
                n = hi - prev
                if n:
                    last_io = ctypes.c_int64(0)
                    leaders_io = ctypes.c_int64(0)
                    done = kernel(
                        codes_ptr,
                        iu_ptr + 8 * prev,
                        iv_ptr + 8 * prev,
                        steps_ptr + 8 * prev,
                        n,
                        dpack_ptr,
                        stride,
                        kshift,
                        seen_ptr,
                        ctypes.byref(last_io),
                        ctypes.byref(leaders_io),
                    )
                    leaders += leaders_io.value
                    if last_io.value > last:
                        last = last_io.value
                    if done != n:
                        conn.send(
                            ("error", "transition-table miss in a shard worker")
                        )
                        failed = True
                        break
                    prev = hi
                else:
                    prev = hi
                if k < n_syncs and not handshake(int(syncs[k])):
                    failed = True
                    break
        except (EOFError, OSError):
            return
        if not failed:
            conn.send(("done", leaders, last))


def _release_shm(blocks: List[shared_memory.SharedMemory]) -> None:
    # Unlink before close: close() raises BufferError while any numpy
    # view of the block is still alive (e.g. referenced by a traceback
    # frame during failure-path demotion); unlink works regardless and
    # the mapping itself is freed when the last view goes away.
    for shm in blocks:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - views still alive
            pass


class ShardWorkerPool:
    """Persistent fork-based workers over shared-memory shard blocks.

    Construction forks the workers immediately (the compiled tables and
    the shared-memory views ride the fork — nothing is pickled); any
    failure to fork (non-fork platform, daemonic parent) raises, which
    the executor's probe treats as "no pool".  The pool is reused across
    all replicas of a plan and must be :meth:`close`\\ d.
    """

    def __init__(
        self,
        partition: PartitionedGraph,
        compiled: "CompiledProtocol",
        n_workers: int,
    ) -> None:
        if not compiled.tables_complete:
            raise ShardPoolError("the worker pool requires complete transition tables")
        ctx = multiprocessing.get_context("fork")
        self.n_shards = partition.n_shards
        self.n_workers = max(1, min(int(n_workers), self.n_shards))
        self._closed = False
        #: Owning worker of each shard (shard ``s`` -> worker ``s % n``).
        self.worker_of = np.arange(self.n_shards, dtype=np.int64) % self.n_workers

        n_nodes = partition.graph.n_nodes
        self._shm: List[shared_memory.SharedMemory] = []
        try:
            shm = shared_memory.SharedMemory(create=True, size=max(8 * int(n_nodes), 8))
            self._shm.append(shm)
            #: The single global code block, shared with every worker
            #: (node state indexed by global node id, exactly the
            #: in-process layout — workers address it with global ids,
            #: and between two handshakes they write disjoint nodes).
            self.codes = np.frombuffer(shm.buf, dtype=np.int64, count=int(n_nodes))
            self._finalizer = weakref.finalize(self, _release_shm, self._shm)

            self._conns = []
            self._procs = []
            from ..engine.native import get_run_shard_kernel

            kernel = get_run_shard_kernel()
            if kernel is None:
                raise ShardPoolError("native shard kernel unavailable")
            for w in range(self.n_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self.codes, compiled, kernel),
                    daemon=True,
                    name=f"repro-shard-worker-{w}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def owner(self, shard: int) -> int:
        """The worker that runs ``shard``'s local runs."""
        return shard % self.n_workers

    def replica_backend(self, initial_codes: np.ndarray) -> "_PoolBackend":
        """Reset the shared block for a fresh replica and hand back the
        executor-facing backend."""
        self.codes[:] = initial_codes
        for conn in self._conns:
            self._send(conn, ("reset",))
        return _PoolBackend(self)

    # -- pipe plumbing --------------------------------------------------
    def _send(self, conn, msg) -> None:
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardPoolError(f"shard worker pipe closed: {exc}") from exc

    def _recv(self, conn, expect: str):
        try:
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardPoolError(f"shard worker died mid-super-step: {exc}") from exc
        if msg[0] == "error":
            raise ShardPoolError(msg[1])
        if msg[0] != expect:
            raise ShardPoolError(f"expected {expect!r} from worker, got {msg[0]!r}")
        return msg

    def close(self) -> None:
        """Stop the workers and release the shared blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in getattr(self, "_conns", []):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in getattr(self, "_procs", []):
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in getattr(self, "_conns", []):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self.codes = []
        _release_shm(self._shm)
        self._shm = []


class _PoolBackend:
    """The executor's run backend over a :class:`ShardWorkerPool`.

    ``begin_chunk`` consumes the routed chunk as a *span* schedule
    (:meth:`~repro.sharding.source.ShardedInteractionSource.next_spans`)
    and ships each worker its whole super-step program at once: the
    shard-local draws it owns, in draw order, as flat global endpoint
    arrays, split into runs at the boundary events that touch one of its
    shards (boundary events touching only *other* workers' shards
    commute with its draws, so they never split its runs).  The
    executor's chunk loop then only drives the boundary handshakes
    (``sync_boundary`` / ``release_boundary``) and the final per-chunk
    barrier (``finish_chunk``); the runs themselves overlap freely
    across workers.
    """

    name = "pool"

    def __init__(self, pool: ShardWorkerPool) -> None:
        self._pool = pool
        self.codes = pool.codes
        self._block: SpanBlock = None
        self._involved: List[List[int]] = []

    def reset_replica(self, initial_codes: np.ndarray) -> None:
        self.codes[:] = initial_codes

    def begin_chunk(self, routed, size: int, base_step: int, state: Any) -> SpanBlock:
        block = routed.next_spans(size)
        self._block = block
        pool = self._pool
        bp = block.boundary_pos
        # Per-draw owning worker (of the initiator's shard); boundary
        # draws are excluded from every program — the parent applies
        # them, in global draw order, through the exchange fabric.
        owner_draw = np.take(pool.worker_of, block.init_shard)
        local = block.init_shard == block.resp_shard
        owner_i = np.take(pool.worker_of, block.init_shard[bp])
        owner_j = np.take(pool.worker_of, block.resp_shard[bp])
        self._involved = [
            [int(oi)] if oi == oj else sorted((int(oi), int(oj)))
            for oi, oj in zip(owner_i, owner_j)
        ]
        base = base_step + 1
        # One flat program per worker, built with array ops and shipped
        # as a handful of large contiguous arrays (numpy pickles at
        # memcpy speed) — never one message per run.
        for w, conn in enumerate(pool._conns):
            pos_w = np.flatnonzero(local & (owner_draw == w))
            sync_w = np.flatnonzero((owner_i == w) | (owner_j == w))
            pool._send(
                conn,
                (
                    "chunk",
                    block.gu[pos_w],
                    block.gv[pos_w],
                    pos_w + base,
                    np.searchsorted(pos_w, bp[sync_w]),
                    sync_w,
                ),
            )
        return block

    def run_segment(self, seg: int, state: Any) -> None:
        pass  # the workers run ahead on their own programs

    def boundary(self, seg: int):
        """``(init shard, resp shard, init node, resp node, a, b)``."""
        block = self._block
        pos = int(block.boundary_pos[seg])
        si = int(block.init_shard[pos])
        sj = int(block.resp_shard[pos])
        gi = int(block.gu[pos])
        gj = int(block.gv[pos])
        self._cursor = (gi, gj)
        return si, sj, gi, gj, int(self.codes[gi]), int(self.codes[gj])

    def write_boundary(self, seg: int, na: int, nb: int) -> None:
        gi, gj = self._cursor
        self.codes[gi] = na
        self.codes[gj] = nb

    def assemble(self, partition) -> np.ndarray:
        return self.codes.copy()

    def sync_boundary(self, seg: int) -> None:
        """Wait until every worker whose shards the boundary touches has
        finished all runs ordered before it."""
        pool = self._pool
        for w in self._involved[seg]:
            msg = pool._recv(pool._conns[w], "sync")
            if msg[1] != seg:
                raise ShardPoolError(
                    f"boundary handshake out of order: expected {seg}, got {msg[1]}"
                )

    def release_boundary(self, seg: int) -> None:
        """Unblock the involved workers (the boundary event is applied)."""
        pool = self._pool
        for w in self._involved[seg]:
            pool._send(pool._conns[w], ("go", seg))

    def finish_chunk(self, state: Any) -> None:
        """The super-step barrier: fold every worker's leader delta and
        last-change max into the replica state."""
        pool = self._pool
        for conn in pool._conns:
            msg = pool._recv(conn, "done")
            state.leaders += int(msg[1])
            if int(msg[2]) > state.last_change:
                state.last_change = int(msg[2])

    def end_replica(self, state: Any) -> None:
        """Union the workers' seen masks into the replica's."""
        pool = self._pool
        for conn in pool._conns:
            pool._send(conn, ("collect",))
        for conn in pool._conns:
            msg = pool._recv(conn, "seen")
            worker_seen = np.frombuffer(msg[1], dtype=np.uint8)
            np.bitwise_or(
                state.seen[: worker_seen.size],
                worker_seen[: state.seen.size],
                out=state.seen[: worker_seen.size],
            )
