"""Graph partitioning with memory-mapped per-shard tables.

A :class:`PartitionedGraph` splits a :class:`~repro.graphs.graph.Graph`
into ``k`` shards: every node is owned by exactly one shard (contiguous
``range`` assignment or seeded ``hash`` assignment), every shard holds
the CSR adjacency block of its members, and the directed ``[0, 2m)``
pair-index space carries four parallel *routing tables* mapping each
pair index to (initiator shard, initiator local id, responder shard,
responder local id).

All per-shard and per-pair tables live in ``np.memmap`` files under a
spool directory, so the resident footprint of a partitioned million-node
topology is a few small index arrays — the page cache, not the heap,
holds the edge data.  This is what lets the sharded executor run sparse
families at n >= 10^6 without the resident dense endpoint tables of
:func:`repro.runtime.pairs.directed_tables` (see
``benchmarks/bench_sharding.py`` for the gated RSS ceiling).

The node assignment is deterministic in ``(mode, shards, seed, graph)``
and digested into :attr:`PartitionedGraph.fingerprint`, so a drifting
partitioner can never silently re-route pairs — the seeded golden
fixture in ``tests/test_sharding.py`` pins both the assignment and the
fingerprint.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..graphs.graph import Graph, GraphError

#: Supported node-assignment modes.
PARTITION_MODES = ("range", "hash")

#: Routing tables are written in chunks of this many pair indices, so
#: building them never materialises whole-``2m`` temporaries beyond the
#: chunk itself.
_ROUTE_CHUNK = 1 << 18

#: Upper bound on the shard count (int16 shard ids in the routing
#: tables; far above any sensible machine anyway).
MAX_SHARDS = 4096


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser (the package's seeded-hash idiom)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def node_assignment(
    n_nodes: int, shards: int, mode: str = "range", seed: int = 0
) -> np.ndarray:
    """The shard owning each node, as an ``int16`` array of length ``n``.

    ``range`` gives contiguous balanced blocks (shard boundaries at
    ``ceil`` spacing, the classic PE-grid layout); ``hash`` scatters
    nodes by a seeded SplitMix64 of the node id, so adversarially
    ordered topologies still balance.  Both are pure functions of their
    arguments — the partition fingerprint depends on this.
    """
    if mode not in PARTITION_MODES:
        raise GraphError(
            f"unknown partition mode {mode!r}; expected one of {PARTITION_MODES}"
        )
    if not 1 <= shards <= min(n_nodes, MAX_SHARDS):
        raise GraphError(
            f"shards must lie in [1, min(n, {MAX_SHARDS})] = "
            f"[1, {min(n_nodes, MAX_SHARDS)}], got {shards}"
        )
    nodes = np.arange(n_nodes, dtype=np.int64)
    if mode == "range":
        assignment = (nodes * shards) // n_nodes
    else:
        # The seed mixes in as a 1-element array: numpy's *scalar* uint64
        # arithmetic warns on the (intentional) wrapping multiplies,
        # array arithmetic wraps silently.
        seed_mix = _splitmix64(
            np.array([int(seed) & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        )
        mixed = _splitmix64(nodes.astype(np.uint64) ^ seed_mix)
        assignment = (mixed % np.uint64(shards)).astype(np.int64)
    return assignment.astype(np.int16)


class PartitionedGraph:
    """A graph split into per-shard CSR blocks plus pair routing tables.

    Parameters
    ----------
    graph:
        The topology to partition (must carry at least one edge).
    shards:
        Number of shards ``k`` (``1 <= k <= min(n, MAX_SHARDS)``).
    mode / seed:
        Node-assignment policy (see :func:`node_assignment`).
    spool_dir:
        Directory for the memory-mapped tables.  ``None`` (the default)
        creates a private temporary directory removed when the partition
        is garbage-collected.
    """

    def __init__(
        self,
        graph: Graph,
        shards: int,
        mode: str = "range",
        seed: int = 0,
        spool_dir: Union[str, Path, None] = None,
    ) -> None:
        if graph.n_edges == 0:
            raise GraphError("cannot partition an edgeless graph")
        self.graph = graph
        self.mode = str(mode)
        self.seed = int(seed)
        self.n_shards = int(shards)
        self.assignment = node_assignment(graph.n_nodes, self.n_shards, mode, seed)
        self.assignment.flags.writeable = False

        if spool_dir is None:
            spool = Path(tempfile.mkdtemp(prefix="repro-shards-"))
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, str(spool), ignore_errors=True
            )
        else:
            spool = Path(spool_dir)
            spool.mkdir(parents=True, exist_ok=True)
            self._finalizer = None
        self.spool_dir = spool

        # Local ids: each shard's members keep their global order, so
        # local id = rank of the node among its shard's members.
        n = graph.n_nodes
        self._members: List[np.ndarray] = [
            np.flatnonzero(self.assignment == s) for s in range(self.n_shards)
        ]
        local = np.empty(n, dtype=np.int32)
        for members in self._members:
            local[members] = np.arange(members.size, dtype=np.int32)
        self.shard_sizes = np.array([m.size for m in self._members], dtype=np.int64)

        self._build_shard_csr()
        self._build_routing_tables(local)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Table construction (memory-mapped)
    # ------------------------------------------------------------------
    def _mmap(self, name: str, dtype, length: int) -> np.ndarray:
        return np.memmap(
            self.spool_dir / name, dtype=dtype, mode="w+", shape=(max(length, 1),)
        )

    def _build_shard_csr(self) -> None:
        """Per-shard CSR adjacency blocks (neighbor lists in global ids)."""
        indptr, indices = self.graph._csr()
        self._csr_indptr: List[np.ndarray] = []
        self._csr_indices: List[np.ndarray] = []
        for s, members in enumerate(self._members):
            counts = indptr[members + 1] - indptr[members]
            total = int(counts.sum())
            shard_ptr = self._mmap(f"csr-indptr-{s:04d}.mm", np.int64, members.size + 1)
            shard_ptr[0] = 0
            np.cumsum(counts, out=shard_ptr[1 : members.size + 1])
            shard_idx = self._mmap(f"csr-indices-{s:04d}.mm", np.int64, total)
            if total:
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                shard_idx[:total] = indices[np.repeat(indptr[members], counts) + within]
            self._csr_indptr.append(shard_ptr)
            self._csr_indices.append(shard_idx)

    def _build_routing_tables(self, local: np.ndarray) -> None:
        """Pair index -> (init shard, init local, resp shard, resp local)."""
        m = self.graph.n_edges
        self.pair_init_shard = self._mmap("route-init-shard.mm", np.int16, 2 * m)
        self.pair_init_local = self._mmap("route-init-local.mm", np.int32, 2 * m)
        self.pair_resp_shard = self._mmap("route-resp-shard.mm", np.int16, 2 * m)
        self.pair_resp_local = self._mmap("route-resp-local.mm", np.int32, 2 * m)
        assignment = self.assignment
        edges_u, edges_v = self.graph.edges_u, self.graph.edges_v
        for lo in range(0, m, _ROUTE_CHUNK):
            hi = min(lo + _ROUTE_CHUNK, m)
            u, v = edges_u[lo:hi], edges_v[lo:hi]
            # Index r < m: edge r in stored orientation (u -> v) …
            self.pair_init_shard[lo:hi] = assignment[u]
            self.pair_init_local[lo:hi] = local[u]
            self.pair_resp_shard[lo:hi] = assignment[v]
            self.pair_resp_local[lo:hi] = local[v]
            # … index r >= m: the reverse (v -> u).
            self.pair_init_shard[m + lo : m + hi] = assignment[v]
            self.pair_init_local[m + lo : m + hi] = local[v]
            self.pair_resp_shard[m + lo : m + hi] = assignment[u]
            self.pair_resp_local[m + lo : m + hi] = local[u]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def shard_members(self, shard: int) -> np.ndarray:
        """Global node ids owned by ``shard``, in local-id order."""
        return self._members[shard]

    def shard_csr(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """The shard's CSR adjacency block ``(indptr, neighbor ids)``.

        ``indptr`` is indexed by local id; neighbor ids are *global* (a
        neighbor may live on any shard — that is what the exchange
        queues are for).
        """
        members = self._members[shard]
        indptr = self._csr_indptr[shard][: members.size + 1]
        return indptr, self._csr_indices[shard][: int(indptr[members.size])]

    def boundary_matrix(self) -> np.ndarray:
        """Directed boundary-pair counts: entry ``(i, j)`` is the number
        of ordered scheduler pairs whose initiator lives on shard ``i``
        and responder on shard ``j != i``."""
        k = self.n_shards
        matrix = np.zeros((k, k), dtype=np.int64)
        au = self.assignment[self.graph.edges_u].astype(np.int64)
        av = self.assignment[self.graph.edges_v].astype(np.int64)
        np.add.at(matrix, (au, av), 1)
        np.add.at(matrix, (av, au), 1)
        np.fill_diagonal(matrix, 0)
        return matrix

    def boundary_pair_count(self) -> int:
        """Number of directed pairs whose endpoints live on different shards."""
        return int(self.boundary_matrix().sum())

    @property
    def fingerprint(self) -> str:
        """SHA-256 digest of the partition layout.

        Covers the assignment policy *and* the realised assignment, so
        any drift in the partitioner (a changed hash constant, a changed
        rounding rule) changes the fingerprint.  Recorded alongside
        benchmark results and pinned by the golden fixture test.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            header = (
                f"repro-partition-v1|mode={self.mode}|shards={self.n_shards}|"
                f"seed={self.seed}|n={self.graph.n_nodes}|m={self.graph.n_edges}|"
            )
            digest.update(header.encode("utf-8"))
            digest.update(np.ascontiguousarray(self.assignment).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"PartitionedGraph(graph={self.graph.name!r}, shards={self.n_shards}, "
            f"mode={self.mode!r}, seed={self.seed})"
        )
