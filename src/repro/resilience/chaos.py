"""Injection seams and the end-to-end chaos-soak harness.

The chaos engine attacks the service stack at its three seams — worker
execution, wire frames, store writes — with faults drawn from a shared
:class:`~repro.resilience.faults.FaultSchedule`, then asserts the one
property the whole repo is built around: the final
:class:`~repro.orchestration.ScenarioResult` is **byte-identical** to a
fault-free in-process run, and the fault log itself replays bit-for-bit
from ``(chaos seed, fault spec)``.

Determinism under concurrency is the delicate part, and it is carried by
three rules rather than luck:

1. **Opportunity streams, not wall clocks.**  Every injection decision
   keys on a per-``(site, kind)`` counter (see ``faults.py``), so the
   asyncio interleaving of independent seams cannot shift any draw.
2. **Only frames with deterministic counts are chaos-eligible.**  The
   transport wrappers sniff the frame type from the line's leading bytes
   and only perturb ``unit`` (server→worker) and ``result`` /
   ``unit-error`` (worker→server) frames.  ``hello``/``welcome`` are
   exempt by construction (the wrap applies post-handshake) and
   ``heartbeat`` frames pass through untouched — their *count* depends
   on execution timing, so letting them advance a counter would make two
   runs of the same schedule diverge.
3. **Fault timings sit far from deadline boundaries.**  An injected
   stall (default 1.5 s) must overshoot the soak's liveness deadline
   (0.6 s) and an injected slow-down (0.15 s) must stay well under it,
   so a fault's *outcome* (dropped vs tolerated) never races a timer.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.seeds import derive_seed
from ..orchestration.store import ResultStore
from .backoff import BackoffPolicy
from .faults import FaultSchedule, FaultSpec

#: Wire prefixes of the chaos-eligible frame types.  Exact-prefix sniffing
#: works because frames are written by ``encode_frame`` with a fixed key
#: order (``type`` first) and compact separators.
_UNIT_PREFIX = b'{"type":"unit",'
_RESULT_PREFIXES = (b'{"type":"result",', b'{"type":"unit-error",')


def default_fault_spec() -> FaultSpec:
    """The soak harness's default: every seam under simultaneous attack.

    Rates are chosen so a ~12-unit scenario comfortably clears the CI
    gate of 30 injected faults while retry chains still terminate fast
    (the per-dispatch failure probability stays well under 1).
    """
    return FaultSpec.from_rates(
        {
            "worker-crash": 0.08,
            "worker-stall": 0.06,
            "worker-slow": 0.12,
            "worker-error": 0.10,
            "frame-delay": 0.15,
            "frame-corrupt": 0.08,
            "frame-truncate": 0.08,
            "frame-duplicate": 0.12,
            "store-torn-write": 0.15,
            "store-corrupt": 0.15,
        }
    )


class ChaosReader:
    """StreamReader proxy that perturbs inbound ``unit`` frames.

    Only ``readuntil`` is intercepted — it is the single primitive
    ``read_frame`` uses — and only for lines carrying a ``unit`` frame,
    per the determinism rules in the module docstring.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        schedule: FaultSchedule,
        spec: FaultSpec,
        site: str,
    ) -> None:
        self._reader = reader
        self._schedule = schedule
        self._spec = spec
        self._site = site

    async def readuntil(self, separator: bytes = b"\n") -> bytes:
        line = await self._reader.readuntil(separator)
        if not line.startswith(_UNIT_PREFIX):
            return line
        # Draw every kind each opportunity (even when an earlier one
        # already fired) so the counters stay aligned with the frame
        # index regardless of which faults fire.
        delay = self._schedule.draw(self._site, "frame-delay")
        truncate = self._schedule.draw(self._site, "frame-truncate")
        corrupt = self._schedule.draw(self._site, "frame-corrupt")
        if delay:
            await asyncio.sleep(self._spec.delay_seconds)
        if truncate:
            # Exactly what a connection dying mid-frame looks like to
            # read_frame: a partial line with no terminator.
            raise asyncio.IncompleteReadError(line[: len(line) // 2], None)
        if corrupt:
            return b"#" + line[1:]
        return line

    def at_eof(self) -> bool:
        return self._reader.at_eof()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._reader, name)


class ChaosWriter:
    """StreamWriter proxy that perturbs outbound ``result`` frames.

    ``write`` is synchronous (as on the real writer), so async effects
    are staged: a drawn delay sleeps in the next ``drain``, and a drawn
    truncation writes half the frame, poisons the writer and tears the
    connection when ``drain`` is awaited — mirroring a peer dying with
    a partially flushed buffer.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        schedule: FaultSchedule,
        spec: FaultSpec,
        site: str,
    ) -> None:
        self._writer = writer
        self._schedule = schedule
        self._spec = spec
        self._site = site
        self._pending_delay = False
        self._poisoned = False

    def write(self, data: bytes) -> None:
        if self._poisoned:
            return
        if not data.startswith(_RESULT_PREFIXES):
            self._writer.write(data)
            return
        delay = self._schedule.draw(self._site, "frame-delay")
        truncate = self._schedule.draw(self._site, "frame-truncate")
        corrupt = self._schedule.draw(self._site, "frame-corrupt")
        duplicate = self._schedule.draw(self._site, "frame-duplicate")
        if delay:
            self._pending_delay = True
        if truncate:
            self._writer.write(data[: len(data) // 2])
            self._poisoned = True
            return
        if corrupt:
            data = b"#" + data[1:]
        self._writer.write(data)
        if duplicate:
            self._writer.write(data)

    async def drain(self) -> None:
        if self._pending_delay:
            self._pending_delay = False
            await asyncio.sleep(self._spec.delay_seconds)
        if self._poisoned:
            with contextlib.suppress(Exception):
                self._writer.close()
            raise ConnectionResetError("chaos: frame truncated, connection torn")
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()

    async def wait_closed(self) -> None:
        with contextlib.suppress(OSError, ConnectionError):
            await self._writer.wait_closed()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._writer, name)


def chaos_transport(
    schedule: FaultSchedule, spec: FaultSpec, site: str
) -> Callable[[Any, Any], Tuple[Any, Any]]:
    """A ``transport_wrap`` for :func:`repro.service.worker.run_worker_async`.

    Reader faults log under ``{site}:rx``, writer faults under
    ``{site}:tx``.  The returned callable builds fresh proxies per
    session (a torn writer must not poison the reconnect) around the
    shared schedule, whose counters deliberately persist across
    reconnects.
    """

    def wrap(reader: Any, writer: Any) -> Tuple[Any, Any]:
        return (
            ChaosReader(reader, schedule, spec, f"{site}:rx"),
            ChaosWriter(writer, schedule, spec, f"{site}:tx"),
        )

    return wrap


def chaos_unit_hook(
    schedule: FaultSchedule, spec: FaultSpec, site: str
) -> Callable[[Dict[str, Any]], Any]:
    """A ``unit_hook`` injecting execution-level faults before each unit.

    A *stall* sleeps silently (the hook runs before heartbeating starts,
    so the server sees a dead worker and must liveness-expire it); a
    *slow* sleeps briefly enough that heartbeats are not even needed; a
    *crash* abandons the connection mid-unit; an *error* surfaces as an
    ordinary ``unit-error`` frame.
    """

    async def hook(frame: Dict[str, Any]) -> None:
        from ..service.worker import WorkerCrash

        crash = schedule.draw(site, "worker-crash")
        stall = schedule.draw(site, "worker-stall")
        slow = schedule.draw(site, "worker-slow")
        error = schedule.draw(site, "worker-error")
        if crash:
            raise WorkerCrash("chaos: injected worker crash")
        if stall:
            await asyncio.sleep(spec.stall_seconds)
        elif slow:
            await asyncio.sleep(spec.slow_seconds)
        if error:
            raise RuntimeError("chaos: injected unit execution failure")

    return hook


class ChaosStore(ResultStore):
    """Result store whose writes are sabotaged after the fact.

    Exercises the integrity layer end to end: a *torn write* truncates
    the persisted file (host crash between rename and durability), a
    *corrupt write* re-serialises it with altered content but the stale
    checksum (silent bit rot).  Both must be caught by ``load_unit``'s
    verification on the next read, quarantined, and recomputed.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        spec: FaultSpec,
        root: Any = None,
        *,
        site: str = "store",
        **kwargs: Any,
    ) -> None:
        super().__init__(root, **kwargs)
        self._schedule = schedule
        self._spec = spec
        self._site = site

    def save_unit(self, scenario: Any, unit_key: str, payload: Dict[str, Any]) -> Path:
        path = super().save_unit(scenario, unit_key, payload)
        torn = self._schedule.draw(self._site, "store-torn-write")
        corrupt = self._schedule.draw(self._site, "store-corrupt")
        try:
            if torn:
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            elif corrupt:
                record = json.loads(path.read_text(encoding="utf-8"))
                record["chaos_tampered"] = True  # valid JSON, checksum now stale
                path.write_text(
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                    encoding="utf-8",
                )
        except OSError:
            pass
        return path


@dataclass
class ChaosReport:
    """Everything the soak gate needs to pass judgement on one run."""

    scenario_name: str
    content_hash: str
    chaos_seed: int
    injected: int
    counts_by_kind: Dict[str, int]
    fault_log: List[Dict[str, Any]]
    log_json: str
    baseline_json: str
    first_json: str
    second_json: str
    units: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def byte_identical(self) -> bool:
        """Both chaos-run results match the fault-free baseline exactly."""
        return (
            self.first_json == self.baseline_json
            and self.second_json == self.baseline_json
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario_name,
            "content_hash": self.content_hash,
            "chaos_seed": self.chaos_seed,
            "injected": self.injected,
            "counts_by_kind": dict(sorted(self.counts_by_kind.items())),
            "byte_identical": self.byte_identical,
            "units": self.units,
        }


async def _soak(
    scenario: Any,
    schedule: FaultSchedule,
    spec: FaultSpec,
    store_root: Path,
    client_timeout: float,
) -> Tuple[Any, Any]:
    """One server + one chaos-wrapped worker + two submissions."""
    from ..service.client import ServiceClient
    from ..service.server import JobServer
    from ..service.worker import run_worker_async

    server = JobServer(
        host="127.0.0.1",
        port=0,
        store=ChaosStore(schedule, spec, store_root),
        local_workers=0,
        # Short deadlines keep the soak fast; the margins to the
        # injected stall/slow timings are what keep it deterministic.
        unit_timeout=10.0,
        max_attempts=60,
        liveness_timeout=0.6,
        breaker_threshold=4,
        breaker_cooldown=0.4,
        degrade_to_local=False,
    )
    host, port = await server.start()
    worker = asyncio.ensure_future(
        run_worker_async(
            host,
            port,
            reconnect_retries=100_000,
            backoff=BackoffPolicy(
                base=0.02, cap=0.2, seed=derive_seed(schedule.seed, "backoff")
            ),
            heartbeat_interval=0.2,
            worker_id="chaos-w0",
            transport_wrap=chaos_transport(schedule, spec, "w0"),
            unit_hook=chaos_unit_hook(schedule, spec, "w0"),
        )
    )
    try:
        client = ServiceClient(
            host, port, timeout=client_timeout, connect_retries=3
        )
        first = await client.submit_async(scenario)
        # The second submission is the store-integrity gauntlet: every
        # unit the ChaosStore tore or tampered must be quarantined on
        # load and recomputed (through the still-chaotic worker), and
        # the reassembled result must not move by a byte.
        second = await client.submit_async(scenario)
    finally:
        worker.cancel()
        await asyncio.gather(worker, return_exceptions=True)
        await server.stop()
    return first, second


def run_chaos_soak(
    scenario: Any,
    chaos_seed: int,
    spec: Optional[FaultSpec] = None,
    *,
    cache_dir: Any = None,
    client_timeout: float = 180.0,
) -> ChaosReport:
    """Run ``scenario`` through the full service stack under chaos.

    Computes the fault-free baseline in-process first, then drives a
    ``JobServer`` + one chaos-wrapped remote worker through two
    submissions of the same scenario (the second resuming from the
    sabotaged store), and reports byte-identity plus the canonical fault
    log.  With ``cache_dir=None`` the store lives in a fresh temp
    directory that is removed afterwards.
    """
    from ..orchestration.runner import run_scenario

    spec = default_fault_spec() if spec is None else spec
    schedule = FaultSchedule(seed=int(chaos_seed), spec=spec)
    baseline = run_scenario(scenario, jobs=1, cache=False)
    cleanup = cache_dir is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        if cache_dir is None
        else Path(cache_dir)
    )
    try:
        first, second = asyncio.run(
            _soak(scenario, schedule, spec, root, client_timeout)
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
    return ChaosReport(
        scenario_name=scenario.name,
        content_hash=scenario.content_hash(),
        chaos_seed=int(chaos_seed),
        injected=schedule.injected,
        counts_by_kind=schedule.counts_by_kind(),
        fault_log=schedule.canonical_log(),
        log_json=schedule.log_json(),
        baseline_json=baseline.canonical_json(),
        first_json=first.canonical_json(),
        second_json=second.canonical_json(),
        units=baseline.total_units,
    )
