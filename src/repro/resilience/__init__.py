"""Deterministic fault injection and the defenses it exercises.

This package is the repo's failure discipline made executable.  The core
contract of the whole reproduction — every result is a pure function of
``(scenario config, seed)``, byte-identical across execution placements —
is only worth something if it survives the failures a real deployment
sees: worker crashes, stalled processes, garbled wire frames, torn store
writes, duplicate deliveries.  ``repro.resilience`` makes those failures
a *first-class, seeded, replayable input*:

* :mod:`repro.resilience.faults` — :class:`FaultSpec` (which faults, at
  what rates) and :class:`FaultSchedule` (seeded through the same
  :func:`repro.core.seeds.derive_seed` machinery as every other random
  stream, so a chaos run is exactly reproducible from
  ``(chaos seed, fault spec)`` and its fault log replays bit-for-bit),
* :mod:`repro.resilience.backoff` — :class:`BackoffPolicy`, bounded
  exponential backoff with *seeded* jitter (deterministic, bit-stable
  across processes) used by worker and client reconnects,
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  per-worker quarantine used by the job server to stop feeding units to
  a repeatedly-failing worker until a cool-down expires,
* :mod:`repro.resilience.chaos` — the injection seams (transport
  wrappers around the service's asyncio streams, a fault-injecting
  result store, worker-execution hooks) and :func:`run_chaos_soak`, the
  end-to-end harness behind ``repro-popsim chaos`` and
  ``scripts/ci_chaos_soak.py``: run a registry scenario through
  serve/worker/submit under a seeded fault schedule and assert the final
  result is byte-identical to the fault-free in-process run.

See ``docs/RESILIENCE.md`` for the fault-model table (fault → detection
→ response → invariant preserved).
"""

from .backoff import BackoffPolicy
from .breaker import CircuitBreaker
from .faults import FAULT_KINDS, FaultEvent, FaultSchedule, FaultSpec
from .chaos import (
    ChaosReport,
    ChaosStore,
    chaos_transport,
    chaos_unit_hook,
    default_fault_spec,
    run_chaos_soak,
)

__all__ = [
    "BackoffPolicy",
    "ChaosReport",
    "ChaosStore",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpec",
    "chaos_transport",
    "chaos_unit_hook",
    "default_fault_spec",
    "run_chaos_soak",
]
