"""Bounded exponential backoff with seeded jitter.

Reconnect storms are a failure amplifier: a worker pool that retries in
lockstep turns one server hiccup into a thundering herd.  The standard
fix is jittered exponential backoff — but naive ``random()`` jitter
would make reconnect timing (and therefore chaos-run transcripts)
irreproducible.  :class:`BackoffPolicy` instead derives its jitter from
the same SplitMix64 stream machinery as every other seed in this package
(:func:`repro.core.seeds.derive_seed`), so the delay of attempt ``k`` is
a pure function of ``(policy parameters, seed, k)``: bounded by ``cap``,
non-decreasing up to the cap (for ``multiplier >= 2`` and
``jitter <= 0.5``), and bit-stable across processes and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.seeds import derive_seed

_UNIT = float(1 << 63)


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic backoff schedule: ``delay(k)`` for attempt ``k``.

    The raw schedule is ``base * multiplier**k`` clamped to ``cap``; the
    seeded jitter then scales each delay into
    ``[(1 - jitter) * raw, raw]``.  With the defaults
    (``multiplier=2``, ``jitter=0.5``) the jittered schedule is still
    non-decreasing below the cap: the smallest possible next delay,
    ``2 * raw_k * 0.5``, equals the largest possible current one.
    """

    base: float = 0.05
    cap: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base delay must be positive")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Delay in seconds before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        raw = min(self.cap, self.base * self.multiplier**attempt)
        uniform = derive_seed(self.seed, "backoff", attempt) / _UNIT
        return raw * (1.0 - self.jitter * uniform)

    def delays(self, n_attempts: int) -> List[float]:
        """The first ``n_attempts`` delays (convenience for tests/tools)."""
        return [self.delay(attempt) for attempt in range(n_attempts)]
