"""Per-worker circuit breaker for the job server.

A worker that fails every unit it touches — a broken native build, a
machine out of memory, a version of the code that crashes on one
protocol — would otherwise burn through the retry budget of every unit
the dispatcher feeds it.  The breaker turns repeated failure into
*quarantine*: after ``failure_threshold`` consecutive failures the
worker stops receiving units for ``cooldown_seconds``, then gets exactly
one probe unit (half-open); success readmits it fully, another failure
re-quarantines it.

The breaker gates *where* units run, never *what* they compute — unit
results are placement-invariant by construction — so its state machine
needs no persistence and no cross-run determinism, only monotone time
(injectable ``clock`` for tests).
"""

from __future__ import annotations

import time
from typing import Callable


class CircuitBreaker:
    """Closed → open (quarantine) → half-open (probe) → closed.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_seconds:
        Quarantine length; after it expires one probe dispatch is
        allowed (half-open).
    clock:
        Monotone time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (probe phase)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def record_success(self) -> None:
        """A dispatch succeeded: close fully and forget the failure run."""
        self._state = "closed"
        self._consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        """A dispatch failed; trips the breaker at the threshold."""
        self._consecutive_failures += 1
        if self._state == "half-open" or self._consecutive_failures >= self.failure_threshold:
            self._state = "open"
            self._opened_at = self._clock()
            self._probe_inflight = False

    def allow(self) -> bool:
        """May the caller dispatch to this worker right now?

        In the open state this returns ``False`` until the cooldown
        expires, then transitions to half-open and grants exactly one
        probe; further calls return ``False`` until the probe is
        resolved by :meth:`record_success` / :meth:`record_failure`.
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = "half-open"
                self._probe_inflight = True
                return True
            return False
        # half-open: one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def retry_after(self) -> float:
        """Seconds until the quarantine could next admit a dispatch."""
        if self._state != "open":
            return 0.0
        elapsed = self._clock() - self._opened_at
        return max(0.0, self.cooldown_seconds - elapsed)
