"""Seeded, replayable fault schedules.

A :class:`FaultSchedule` answers one question at every injection seam of
the service stack: *does fault ``kind`` fire at site ``site``, on this
site's ``n``-th opportunity?*  The answer is a pure function of
``(chaos seed, kind, site, n)`` — mixed through the same
:func:`repro.core.seeds.derive_seed` SplitMix64 derivation every other
random stream in this package uses — so a chaos run is exactly
reproducible from ``(seed, fault spec)``: same seed, same spec, same
sequence of opportunities ⇒ the identical faults fire, and the fault log
replays bit for bit.

Determinism rests on the *opportunity streams* being deterministic, not
on wall-clock timing: each ``(site, kind)`` pair keeps its own counter,
so concurrent sites never perturb each other's draws, and asyncio
interleaving between sites cannot change any decision.  The canonical
log (:meth:`FaultSchedule.canonical_log`) is additionally sorted by
``(site, kind, occurrence)`` so that even the *recording* order is
interleaving-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from ..core.seeds import derive_seed

#: Every fault kind the chaos engine knows how to inject, one per seam
#: of the service stack (worker execution, wire frames, store writes).
FAULT_KINDS = (
    "worker-crash",      # worker drops its connection on dispatch, unit unexecuted
    "worker-stall",      # worker goes silent (no heartbeats) past the liveness deadline
    "worker-slow",       # worker delays execution, but stays within liveness
    "worker-error",      # unit execution raises; reported as a unit-error frame
    "frame-delay",       # a wire frame is delivered late
    "frame-corrupt",     # a wire frame's bytes are garbled (JSON no longer parses)
    "frame-truncate",    # a wire frame is cut mid-line and the connection torn
    "frame-duplicate",   # a wire frame is delivered twice
    "store-torn-write",  # a persisted unit file is truncated (simulated host crash)
    "store-corrupt",     # a persisted unit file's content is silently altered
)

_UNIT = float(1 << 63)  # derive_seed's range; draws map onto [0, 1)


@dataclass(frozen=True)
class FaultSpec:
    """Which faults to inject and how hard.

    ``rates`` maps a fault kind to its per-opportunity probability; kinds
    not listed never fire.  The timing knobs parameterise the injected
    faults themselves (how long a stall lasts, etc.) and should be chosen
    relative to the service's liveness deadline: a *stall* must overshoot
    it, a *slow* execution must stay safely under it, so that fault
    outcomes never race a deadline (racing would break replayability).
    """

    rates: Tuple[Tuple[str, float], ...]
    stall_seconds: float = 1.5
    slow_seconds: float = 0.15
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        for kind, rate in self.rates:
            if kind not in FAULT_KINDS:
                known = ", ".join(FAULT_KINDS)
                raise ValueError(f"unknown fault kind {kind!r}; known kinds: {known}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")

    @classmethod
    def from_rates(cls, rates: Mapping[str, float], **timing: float) -> "FaultSpec":
        """Build a spec from a plain ``{kind: rate}`` mapping."""
        frozen = tuple(sorted((str(k), float(v)) for k, v in rates.items()))
        return cls(rates=frozen, **timing)

    def rate(self, kind: str) -> float:
        for name, value in self.rates:
            if name == kind:
                return value
        return 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-native form (part of a chaos run's identity)."""
        return {
            "rates": {kind: rate for kind, rate in self.rates},
            "stall_seconds": self.stall_seconds,
            "slow_seconds": self.slow_seconds,
            "delay_seconds": self.delay_seconds,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    site: str         # injection seam, e.g. "w0", "w0:tx", "store"
    kind: str         # one of FAULT_KINDS
    occurrence: int   # the site/kind opportunity counter when it fired

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "kind": self.kind, "occurrence": self.occurrence}


@dataclass
class FaultSchedule:
    """Deterministic per-opportunity fault decisions plus their log.

    ``draw(site, kind)`` is the single decision point: it advances the
    ``(site, kind)`` opportunity counter and fires iff the seeded uniform
    for ``(seed, kind, site, counter)`` falls under the spec's rate.
    Every fired fault is recorded; :meth:`log_json` is the canonical,
    interleaving-independent transcript used to gate replayability in CI.
    """

    seed: int
    spec: FaultSpec
    _counters: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _log: List[FaultEvent] = field(default_factory=list)

    def draw(self, site: str, kind: str) -> bool:
        """Whether ``kind`` fires at ``site`` on this opportunity."""
        key = (site, kind)
        occurrence = self._counters.get(key, 0)
        self._counters[key] = occurrence + 1
        rate = self.spec.rate(kind)
        if rate <= 0.0:
            return False
        uniform = derive_seed(self.seed, "chaos", kind, site, occurrence) / _UNIT
        fired = uniform < rate
        if fired:
            self._log.append(FaultEvent(site=site, kind=kind, occurrence=occurrence))
        return fired

    @property
    def injected(self) -> int:
        """How many faults have fired so far."""
        return len(self._log)

    def fault_log(self) -> List[FaultEvent]:
        """Fired faults in injection order (for human transcripts)."""
        return list(self._log)

    def canonical_log(self) -> List[Dict[str, Any]]:
        """Fired faults sorted by ``(site, kind, occurrence)``.

        Sorting removes the one residual degree of freedom — the global
        interleaving of independent sites — so two runs with the same
        ``(seed, spec)`` and the same per-site opportunity streams
        produce byte-equal logs.
        """
        ordered = sorted(self._log, key=lambda e: (e.site, e.kind, e.occurrence))
        return [event.to_dict() for event in ordered]

    def log_json(self) -> str:
        import json

        return json.dumps(
            {"seed": self.seed, "spec": self.spec.to_dict(), "faults": self.canonical_log()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._log:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
