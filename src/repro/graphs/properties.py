"""Structural graph properties used by the paper's bounds.

The quantities that appear in Table 1 and Theorem 6 are:

* edge expansion ``β(G) = min |∂S| / |S|`` over non-empty ``S`` with
  ``|S| <= n/2`` (Section 2.1),
* conductance ``φ = β / Δ`` for regular graphs (Table 1),
* diameter ``D(G)``, maximum degree ``Δ`` and edge count ``m``.

Computing ``β`` exactly is exponential in ``n``; we provide the exact
enumeration for small graphs, closed forms for the named families used in
the benchmarks, and spectral (Cheeger-style) upper/lower bounds for
everything else.  :func:`edge_expansion_estimate` chooses the best
available method automatically.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from .graph import Graph
from .spectral import normalized_laplacian_spectral_gap

EXACT_EXPANSION_NODE_LIMIT = 20


@dataclass(frozen=True)
class ExpansionEstimate:
    """An estimate of edge expansion with provenance.

    Attributes
    ----------
    lower, upper:
        Certified lower and upper bounds on ``β(G)``.
    value:
        The point estimate used by downstream code (geometric mean of the
        bounds, or the exact value when ``method == "exact"``).
    method:
        One of ``"exact"``, ``"closed-form"``, ``"cheeger"``,
        ``"sweep-cut"``.
    """

    lower: float
    upper: float
    value: float
    method: str


def edge_expansion_exact(graph: Graph) -> float:
    """Exact edge expansion by enumerating all subsets up to size ``n/2``.

    Exponential in ``n``; guarded to ``n <= EXACT_EXPANSION_NODE_LIMIT``.
    """
    n = graph.n_nodes
    if n < 2:
        raise ValueError("edge expansion needs at least two nodes")
    if n > EXACT_EXPANSION_NODE_LIMIT:
        raise ValueError(
            f"exact edge expansion limited to n <= {EXACT_EXPANSION_NODE_LIMIT}"
        )
    adjacency = [set(graph.neighbors(v)) for v in range(n)]
    best = math.inf
    nodes = list(range(n))
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            inside = set(subset)
            boundary = 0
            for u in subset:
                boundary += len(adjacency[u] - inside)
            best = min(best, boundary / size)
    return float(best)


def edge_expansion_closed_form(graph: Graph) -> Optional[float]:
    """Closed-form edge expansion for named families, if recognised.

    Recognition is by the ``name`` attribute set by the family
    constructors, so ad-hoc graphs fall through to ``None``.
    """
    name = graph.name
    n = graph.n_nodes
    if name.startswith("clique-"):
        # beta = ceil(n/2) for K_n: the minimiser is a set of size floor(n/2).
        half = n // 2
        return float((n - half) * half / half)
    if name.startswith("cycle-"):
        # Minimiser is a contiguous arc of length floor(n/2): boundary 2.
        return float(2.0 / (n // 2))
    if name.startswith("path-") and n >= 2:
        # Minimiser is one end half of the path: boundary 1.
        return float(1.0 / (n // 2))
    if name.startswith("star-"):
        # Any set of floor(n/2) leaves has boundary = its size.
        return 1.0
    if name.startswith("hypercube-"):
        # Harper's theorem: beta(Q_d) = 1 (minimised by a subcube of half size).
        return 1.0
    return None


def edge_expansion_sweep_cut(graph: Graph) -> float:
    """Upper bound on ``β`` via a spectral sweep cut (Fiedler ordering).

    Sorts nodes by the Fiedler vector of the normalised Laplacian and takes
    the best prefix cut; this is the standard constructive half of the
    Cheeger inequality and always yields a valid *upper* bound.
    """
    n = graph.n_nodes
    if n < 2:
        raise ValueError("sweep cut needs at least two nodes")
    from .spectral import fiedler_vector

    order = np.argsort(fiedler_vector(graph))
    adjacency = [set(graph.neighbors(v)) for v in range(n)]
    inside: set = set()
    boundary = 0
    best = math.inf
    for idx, node in enumerate(order[: n // 2], start=1):
        node = int(node)
        boundary += graph.degree(node) - 2 * len(adjacency[node] & inside)
        inside.add(node)
        best = min(best, boundary / idx)
    return float(best)


def edge_expansion_estimate(graph: Graph) -> ExpansionEstimate:
    """Best-available estimate of edge expansion ``β(G)``.

    Preference order: exact enumeration (small graphs), closed form (named
    families), then Cheeger lower bound combined with a sweep-cut upper
    bound.
    """
    n = graph.n_nodes
    if n <= EXACT_EXPANSION_NODE_LIMIT:
        value = edge_expansion_exact(graph)
        return ExpansionEstimate(lower=value, upper=value, value=value, method="exact")
    closed = edge_expansion_closed_form(graph)
    if closed is not None:
        return ExpansionEstimate(lower=closed, upper=closed, value=closed, method="closed-form")
    gap = normalized_laplacian_spectral_gap(graph)
    max_degree = graph.max_degree
    min_degree = graph.min_degree
    # Cheeger: lambda_2 / 2 <= phi <= sqrt(2 lambda_2), with
    # beta >= phi_conductance-ish scaling by min degree.
    conductance_lower = gap / 2.0
    lower = conductance_lower * min_degree
    upper = min(edge_expansion_sweep_cut(graph), float(max_degree))
    upper = max(upper, lower)
    value = math.sqrt(max(lower, 1e-12) * max(upper, 1e-12))
    return ExpansionEstimate(lower=lower, upper=upper, value=value, method="cheeger")


def conductance(graph: Graph, expansion: Optional[float] = None) -> float:
    """Conductance ``φ = β / Δ`` as used by the paper for regular graphs.

    For non-regular graphs this is the same normalisation the paper uses
    when instantiating the fast protocol (``h`` depends on ``Δ/β``).
    """
    if expansion is None:
        expansion = edge_expansion_estimate(graph).value
    max_degree = graph.max_degree
    if max_degree == 0:
        return 0.0
    return float(expansion) / float(max_degree)


def degree_statistics(graph: Graph) -> Tuple[int, int, float]:
    """Return ``(Δ, δ, average degree)``."""
    degrees = graph.degrees
    return int(degrees.max()), int(degrees.min()), float(degrees.mean())


def is_dense(graph: Graph, density_constant: float = 0.1) -> bool:
    """Whether ``m >= density_constant * n^2`` (Theorem 40's assumption)."""
    n = graph.n_nodes
    return graph.n_edges >= density_constant * n * n


def minimum_degree_fraction(graph: Graph) -> float:
    """``δ / n`` — the paper's Theorem 40 requires ``δ >= λ n^φ``."""
    if graph.n_nodes == 0:
        return 0.0
    return graph.min_degree / graph.n_nodes


def summarize(graph: Graph) -> dict:
    """A dictionary of headline structural properties for reporting."""
    expansion = edge_expansion_estimate(graph)
    max_degree, min_degree, avg_degree = degree_statistics(graph)
    return {
        "name": graph.name,
        "n": graph.n_nodes,
        "m": graph.n_edges,
        "diameter": graph.diameter(),
        "max_degree": max_degree,
        "min_degree": min_degree,
        "avg_degree": avg_degree,
        "edge_expansion": expansion.value,
        "edge_expansion_method": expansion.method,
        "conductance": conductance(graph, expansion.value),
        "regular": graph.is_regular(),
    }
