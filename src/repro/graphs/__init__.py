"""Graph substrate for the population-protocol reproduction.

Everything the paper assumes about interaction graphs lives here: the core
:class:`~repro.graphs.graph.Graph` type, deterministic and random graph
families, structural properties (expansion, conductance, diameter), spectral
quantities and the renitent-graph constructions of Section 6.
"""

from .graph import Edge, Graph, GraphError
from .families import (
    barbell,
    binary_tree,
    circulant,
    clique,
    complete_bipartite,
    cycle,
    cycle_with_chords,
    double_star,
    grid,
    hypercube,
    lollipop,
    path,
    star,
    torus,
)
from .properties import (
    ExpansionEstimate,
    conductance,
    edge_expansion_estimate,
    edge_expansion_exact,
    summarize,
)
from .random_graphs import erdos_renyi, preferential_attachment, random_geometric, random_regular
from .renitent import (
    RenitentConstruction,
    cycle_cover,
    four_copies_construction,
    renitent_family_graph,
    torus_cover,
)
from .spectral import (
    cheeger_bounds,
    normalized_laplacian_spectral_gap,
    normalized_laplacian_spectrum,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphError",
    "ExpansionEstimate",
    "RenitentConstruction",
    "barbell",
    "binary_tree",
    "cheeger_bounds",
    "circulant",
    "clique",
    "complete_bipartite",
    "conductance",
    "cycle",
    "cycle_cover",
    "cycle_with_chords",
    "double_star",
    "edge_expansion_estimate",
    "edge_expansion_exact",
    "erdos_renyi",
    "four_copies_construction",
    "grid",
    "hypercube",
    "lollipop",
    "normalized_laplacian_spectral_gap",
    "normalized_laplacian_spectrum",
    "path",
    "preferential_attachment",
    "random_geometric",
    "random_regular",
    "renitent_family_graph",
    "star",
    "summarize",
    "torus",
    "torus_cover",
]
