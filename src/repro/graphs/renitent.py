"""Renitent graph constructions (Section 6 of the paper).

A graph family is *f-renitent* when every member admits an
``f(n)``-isolating ``(K, ℓ)``-cover: the nodes can be covered by a constant
number of sets whose distance-``ℓ`` neighbourhoods are pairwise isomorphic,
with at least two of those neighbourhoods disjoint, and information is
unlikely to travel distance ``ℓ`` within ``f(n)`` steps.  Theorem 34 then
shows leader election needs ``Ω(f(n))`` expected steps on such graphs.

This module builds the constructions the paper uses:

* :func:`cycle_cover` — the warm-up ``Ω(n^2)`` cover of a cycle (Lemma 37),
* :func:`four_copies_construction` — Lemma 38: four copies of a base graph
  joined by paths of length ``2ℓ`` into a ring,
* :func:`renitent_family_graph` — Theorem 39: a family whose leader-election
  and broadcast complexity is ``Θ(T(n))`` for any target ``T`` between
  ``n log n`` and ``n^3``.

The cover objects themselves (and the empirical isolation-time estimator)
live in :mod:`repro.lowerbounds.covers`; the functions here return both the
constructed graph and the node sets of its canonical cover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from .families import clique, cycle, star
from .graph import Edge, Graph, GraphError


@dataclass(frozen=True)
class RenitentConstruction:
    """A renitent graph together with its canonical ``(K, ℓ)``-cover.

    Attributes
    ----------
    graph:
        The constructed graph ``G'``.
    cover_sets:
        The node sets ``V_0, ..., V_{K-1}`` of the cover.
    ell:
        The isolation radius ``ℓ``.
    expected_isolation_steps:
        The paper's lower-bound scale ``Θ(ℓ m)`` — the number of scheduler
        steps below which the cover is expected to remain isolated with
        constant probability.
    """

    graph: Graph
    cover_sets: Tuple[Tuple[int, ...], ...]
    ell: int
    expected_isolation_steps: int


def cycle_cover(n: int) -> RenitentConstruction:
    """Lemma 37: the four-arc cover showing cycles are ``Ω(n^2)``-renitent.

    The cycle is split into four arcs of roughly ``n/4`` nodes.  The
    isolation radius ``ℓ`` is chosen just under half an arc length so that
    the ``ℓ``-neighbourhoods of the two opposite arcs are disjoint; the
    resulting isolation scale ``ℓ·m ∈ Θ(n^2)`` matches the lemma.
    """
    if n < 8:
        raise GraphError("cycle cover construction requires n >= 8")
    graph = cycle(n)
    arc = math.ceil(n / 4)
    sets: List[Tuple[int, ...]] = []
    for i in range(4):
        low = i * arc
        high = min((i + 1) * arc, n)
        sets.append(tuple(range(low, high)))
    # Nodes past 4*arc (when n is not divisible by 4) fold into the last arc
    # so the cover spans all of V.
    remainder = set(range(n)) - set(v for s in sets for v in s)
    if remainder:
        sets[3] = tuple(sorted(set(sets[3]) | remainder))
    ell = max((arc - 1) // 2, 1)
    expected = ell * graph.n_edges
    return RenitentConstruction(
        graph=graph,
        cover_sets=tuple(sets),
        ell=ell,
        expected_isolation_steps=expected,
    )


def four_copies_construction(base: Graph, ell: int) -> RenitentConstruction:
    """Lemma 38: four copies of ``base`` joined into a ring by paths of length ``2ℓ``.

    Node 0 of each copy plays the role of the designated node ``v*``; the
    ``i``-th copy's ``v*`` is joined to the ``(i+1 mod 4)``-th copy's ``v*``
    by a fresh path with ``2ℓ`` edges.  The cover set ``V_i`` consists of
    the ``i``-th copy together with the path that leaves it.
    """
    if ell < max(base.diameter(), 1):
        raise GraphError(
            "Lemma 38 requires ell >= diameter of the base graph "
            f"(got ell={ell}, diameter={base.diameter()})"
        )
    path_edges = 2 * ell
    copies = 4
    base_n = base.n_nodes
    edges: List[Edge] = []
    offsets = [i * base_n for i in range(copies)]
    for offset in offsets:
        for u, v in base.edges():
            edges.append((u + offset, v + offset))
    total = copies * base_n
    cover_sets: List[List[int]] = [
        list(range(offset, offset + base_n)) for offset in offsets
    ]
    for i in range(copies):
        source = offsets[i]  # copy i's v*
        target = offsets[(i + 1) % copies]  # copy i+1's v*
        previous = source
        path_nodes: List[int] = []
        for _ in range(path_edges - 1):
            edges.append((previous, total))
            path_nodes.append(total)
            previous = total
            total += 1
        edges.append((previous, target))
        cover_sets[i].extend(path_nodes)
    graph = Graph(total, edges, name=f"renitent-{base.name}-ell{ell}")
    expected = ell * graph.n_edges
    return RenitentConstruction(
        graph=graph,
        cover_sets=tuple(tuple(sorted(s)) for s in cover_sets),
        ell=ell,
        expected_isolation_steps=expected,
    )


def renitent_family_graph(n_target: int, time_target: Callable[[int], float]) -> RenitentConstruction:
    """Theorem 39: a graph on ``Θ(n_target)`` nodes with leader-election time ``Θ(T(n))``.

    ``time_target`` is the increasing function ``T`` with
    ``n log n <= T(n) <= n^3``.  Following the proof of Theorem 39:

    * if ``T`` grows faster than ``n^2 log n``, the base graph is a clique
      of size ``N`` and ``ℓ = ceil(T(N) / N^2)``;
    * otherwise, the base is a star plus ``Θ(T(N)/ℓ)`` extra edges with
      ``ℓ = ceil(log N + T(N)/(N log N))``.
    """
    if n_target < 16:
        raise GraphError("renitent family construction requires n_target >= 16")
    big_n = max(n_target // 8, 4)
    target = float(time_target(big_n))
    n_log_n = big_n * math.log(max(big_n, 2))
    if target < n_log_n:
        raise GraphError("time target must be at least n log n")
    if target > float(big_n) ** 3:
        raise GraphError("time target must be at most n^3")
    if target > big_n * big_n * math.log(max(big_n, 2)):
        base = clique(big_n)
        ell = max(int(math.ceil(target / (big_n * big_n))), base.diameter(), 1)
    else:
        ell = max(
            int(math.ceil(math.log(max(big_n, 2)) + target / (big_n * math.log(max(big_n, 2))))),
            2,
        )
        extra_edges = int(max(min(target / ell, big_n * (big_n - 1) / 2 - (big_n - 1)), 0))
        base = _star_with_extra_edges(big_n, extra_edges)
        ell = max(ell, base.diameter())
    return four_copies_construction(base, ell)


def _star_with_extra_edges(n: int, extra: int) -> Graph:
    """A star on ``n`` nodes with ``extra`` additional leaf-leaf edges."""
    base = star(n)
    edges = list(base.edges())
    added = 0
    for u in range(1, n):
        for v in range(u + 1, n):
            if added >= extra:
                break
            edges.append((u, v))
            added += 1
        if added >= extra:
            break
    return Graph(n, edges, name=f"star-plus-{added}-edges-{n}")


def torus_cover(rows: int, cols: int) -> RenitentConstruction:
    """A 16-block cover of a torus, witnessing ``Ω(n^{3/2})``-renitence.

    Section 6.2 notes that ``k``-dimensional toroidal grids are
    ``Ω(n^{1+1/k})``-renitent because they can be partitioned into constantly
    many sub-blocks of diameter ``Θ(n^{1/k})``.  We split an
    ``rows x cols`` torus into a 4x4 grid of blocks (all translates of each
    other, hence isomorphic together with their neighbourhoods); blocks two
    apart in both coordinates are more than ``2ℓ`` apart for
    ``ℓ ≈ min(rows, cols)/8``, so their ``ℓ``-neighbourhoods are disjoint.
    """
    from .families import torus

    if rows < 8 or cols < 8:
        raise GraphError("torus cover requires both dimensions >= 8")
    if rows % 4 or cols % 4:
        raise GraphError("torus cover requires dimensions divisible by 4")
    graph = torus(rows, cols)
    block_r, block_c = rows // 4, cols // 4
    sets = []
    for tile_r in range(4):
        for tile_c in range(4):
            block = [
                (tile_r * block_r + r) * cols + (tile_c * block_c + c)
                for r in range(block_r)
                for c in range(block_c)
            ]
            sets.append(tuple(sorted(block)))
    ell = max(min(rows, cols) // 8, 1)
    expected = ell * graph.n_edges
    return RenitentConstruction(
        graph=graph,
        cover_sets=tuple(sets),
        ell=ell,
        expected_isolation_steps=expected,
    )
