"""Spectral quantities of graphs.

Lemma 11 of the paper argues via the spectral gap of the normalised
Laplacian (and the Cheeger inequality) that dense Erdős–Rényi graphs have
conductance ``1 - o(1)`` and hence broadcast time ``O(n log n)``.  This
module provides the spectral gap, Fiedler vectors for sweep cuts, and the
relaxation/mixing-time proxies used by the experiment harness.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import Graph

_DENSE_EIG_LIMIT = 2000


def adjacency_matrix(graph: Graph) -> np.ndarray:
    """Dense adjacency matrix (float64)."""
    n = graph.n_nodes
    a = np.zeros((n, n), dtype=np.float64)
    u = graph.edges_u
    v = graph.edges_v
    a[u, v] = 1.0
    a[v, u] = 1.0
    return a


def laplacian_matrix(graph: Graph) -> np.ndarray:
    """Combinatorial Laplacian ``L = D - A``."""
    a = adjacency_matrix(graph)
    return np.diag(a.sum(axis=1)) - a


def normalized_laplacian_matrix(graph: Graph) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Degree-zero nodes (only possible in intentionally disconnected test
    graphs) contribute a zero row/column.
    """
    a = adjacency_matrix(graph)
    degrees = a.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-300)), 0.0)
    scaled = a * inv_sqrt[:, None] * inv_sqrt[None, :]
    lap = np.eye(graph.n_nodes) - scaled
    return lap


def normalized_laplacian_spectrum(graph: Graph) -> np.ndarray:
    """All eigenvalues of the normalised Laplacian, ascending."""
    if graph.n_nodes > _DENSE_EIG_LIMIT:
        raise ValueError(
            f"dense eigendecomposition limited to n <= {_DENSE_EIG_LIMIT}"
        )
    lap = normalized_laplacian_matrix(graph)
    values = np.linalg.eigvalsh(lap)
    return np.sort(values)


def normalized_laplacian_spectral_gap(graph: Graph) -> float:
    """Second-smallest eigenvalue ``λ_2`` of the normalised Laplacian.

    By the Cheeger inequality, ``λ_2 / 2 <= φ(G) <= sqrt(2 λ_2)``.
    """
    if graph.n_nodes < 2:
        return 0.0
    spectrum = normalized_laplacian_spectrum(graph)
    return float(max(spectrum[1], 0.0))


def fiedler_vector(graph: Graph) -> np.ndarray:
    """Eigenvector of the normalised Laplacian for ``λ_2`` (sweep cuts)."""
    lap = normalized_laplacian_matrix(graph)
    values, vectors = np.linalg.eigh(lap)
    order = np.argsort(values)
    return np.asarray(vectors[:, order[1]], dtype=np.float64)


def cheeger_bounds(graph: Graph) -> Tuple[float, float]:
    """Return ``(lower, upper)`` bounds on conductance from Cheeger."""
    gap = normalized_laplacian_spectral_gap(graph)
    return gap / 2.0, float(np.sqrt(2.0 * gap))


def random_walk_relaxation_time(graph: Graph) -> float:
    """Relaxation time ``1 / λ_2`` of the lazy random walk (mixing proxy)."""
    gap = normalized_laplacian_spectral_gap(graph)
    if gap <= 0.0:
        return float("inf")
    return 1.0 / gap


def algebraic_connectivity(graph: Graph) -> float:
    """Second-smallest eigenvalue of the combinatorial Laplacian."""
    if graph.n_nodes < 2:
        return 0.0
    values = np.sort(np.linalg.eigvalsh(laplacian_matrix(graph)))
    return float(max(values[1], 0.0))
