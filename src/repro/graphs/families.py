"""Deterministic graph families used throughout the paper.

Table 1 evaluates leader election on cliques, stars, regular graphs (cycles,
tori, hypercubes, random regular graphs) and dense random graphs; Section 6
additionally uses paths, lollipops and barbells as building blocks for the
renitent constructions.  Every constructor returns a :class:`~repro.graphs.graph.Graph`
with a descriptive name so the experiment harness can label result rows.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

import numpy as np

from .graph import Edge, Graph, GraphError


def clique(n: int) -> Graph:
    """Complete graph ``K_n`` — the classic population-protocol setting."""
    if n < 1:
        raise GraphError("clique requires n >= 1")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges, name=f"clique-{n}")


def cycle(n: int) -> Graph:
    """Cycle ``C_n``; the canonical low-conductance regular graph."""
    if n < 3:
        raise GraphError("cycle requires n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name=f"cycle-{n}")


def path(n: int) -> Graph:
    """Path ``P_n`` on ``n`` nodes."""
    if n < 1:
        raise GraphError("path requires n >= 1")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph(n, edges, name=f"path-{n}")


def star(n: int) -> Graph:
    """Star graph: node 0 is the centre, nodes ``1..n-1`` are leaves.

    The paper uses stars to show that leader election can be ``O(1)`` even
    though broadcast takes ``Θ(n log n)`` steps (Section 6.3).
    """
    if n < 2:
        raise GraphError("star requires n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return Graph(n, edges, name=f"star-{n}")


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}``."""
    if a < 1 or b < 1:
        raise GraphError("complete bipartite graph requires both sides non-empty")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Graph(a + b, edges, name=f"complete-bipartite-{a}-{b}")


def torus(rows: int, cols: int) -> Graph:
    """2-dimensional toroidal grid (4-regular when both sides ``>= 3``).

    Toroidal grids are the paper's example of ``Ω(n^{1+1/k})``-renitent
    regular graphs (Section 6.2).
    """
    if rows < 3 or cols < 3:
        raise GraphError("torus requires both dimensions >= 3")
    n = rows * cols

    # Vectorised build (a million-node torus has four million endpoints;
    # the historical per-cell Python loop cost gigabytes of transient
    # tuples).  Edge ordering is bit-compatible with the historical
    # ``sorted({(min(u, v), max(u, v)), ...})``: normalise every wrap
    # edge to (min, max), then sort lexicographically via the scalar key
    # ``u * n + v`` — with rows, cols >= 3 no duplicates can arise, so
    # ``np.unique`` is exactly that sort.
    cells = np.arange(n, dtype=np.int64)
    r, c = cells // cols, cells % cols
    down = ((r + 1) % rows) * cols + c
    right = r * cols + (c + 1) % cols
    src = np.concatenate((cells, cells))
    dst = np.concatenate((down, right))
    low, high = np.minimum(src, dst), np.maximum(src, dst)
    keys = np.unique(low * np.int64(n) + high)
    return Graph.from_edge_arrays(
        n, keys // n, keys % n, name=f"torus-{rows}x{cols}"
    )


def grid(rows: int, cols: int) -> Graph:
    """2-dimensional grid (no wraparound)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid requires positive dimensions")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
    return Graph(n, edges, name=f"grid-{rows}x{cols}")


def hypercube(dimension: int) -> Graph:
    """Boolean hypercube ``Q_d`` on ``2^d`` nodes (d-regular expander-ish)."""
    if dimension < 1:
        raise GraphError("hypercube requires dimension >= 1")
    n = 1 << dimension
    edges = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Graph(n, edges, name=f"hypercube-{dimension}")


def lollipop(clique_size: int, tail_length: int) -> Graph:
    """Lollipop graph: a clique with a path attached.

    Classic worst case for random-walk hitting times (``H(G) ∈ Θ(n^3)``),
    exercised by the Theorem 16 benchmarks.
    """
    if clique_size < 2 or tail_length < 1:
        raise GraphError("lollipop requires clique_size >= 2 and tail_length >= 1")
    n = clique_size + tail_length
    edges = [(u, v) for u in range(clique_size) for v in range(u + 1, clique_size)]
    previous = clique_size - 1
    for i in range(tail_length):
        edges.append((previous, clique_size + i))
        previous = clique_size + i
    return Graph(n, edges, name=f"lollipop-{clique_size}-{tail_length}")


def barbell(clique_size: int, bridge_length: int) -> Graph:
    """Two cliques joined by a path — a canonical low-conductance graph."""
    if clique_size < 2 or bridge_length < 0:
        raise GraphError("barbell requires clique_size >= 2 and bridge_length >= 0")
    n = 2 * clique_size + bridge_length
    edges: List[Edge] = []
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((u, v))
    offset = clique_size + bridge_length
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((offset + u, offset + v))
    chain = [clique_size - 1] + list(range(clique_size, clique_size + bridge_length)) + [offset]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return Graph(n, edges, name=f"barbell-{clique_size}-{bridge_length}")


def cycle_with_chords(n: int, chord_step: int) -> Graph:
    """Cycle augmented with chords connecting nodes at distance ``chord_step``.

    Gives a tunable family between the cycle (no chords) and a dense
    circulant graph, used by the "general graphs" benchmark row.
    """
    if n < 5:
        raise GraphError("cycle_with_chords requires n >= 5")
    if not (2 <= chord_step <= n // 2):
        raise GraphError("chord_step must lie in [2, n // 2]")
    edges = set((i, (i + 1) % n) for i in range(n))
    for i in range(n):
        j = (i + chord_step) % n
        if i != j:
            edges.add((min(i, j), max(i, j)))
    normalised = set((min(u, v), max(u, v)) for u, v in edges)
    return Graph(n, sorted(normalised), name=f"cycle-chords-{n}-{chord_step}")


def circulant(n: int, offsets: Sequence[int]) -> Graph:
    """Circulant graph: node ``i`` is adjacent to ``i ± o`` for each offset."""
    if n < 3:
        raise GraphError("circulant requires n >= 3")
    cleaned = sorted(set(int(o) % n for o in offsets) - {0})
    if not cleaned:
        raise GraphError("circulant requires at least one non-zero offset")
    edges = set()
    for i in range(n):
        for o in cleaned:
            j = (i + o) % n
            if i != j:
                edges.add((min(i, j), max(i, j)))
    return Graph(n, sorted(edges), name=f"circulant-{n}-{'_'.join(map(str, cleaned))}")


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root at node 0)."""
    if depth < 0:
        raise GraphError("binary tree depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    edges = []
    for child in range(1, n):
        parent = (child - 1) // 2
        edges.append((parent, child))
    return Graph(n, edges, name=f"binary-tree-{depth}")


def double_star(left_leaves: int, right_leaves: int) -> Graph:
    """Two star centres joined by an edge, with the given leaf counts."""
    if left_leaves < 1 or right_leaves < 1:
        raise GraphError("double star requires at least one leaf on each side")
    n = 2 + left_leaves + right_leaves
    edges = [(0, 1)]
    for i in range(left_leaves):
        edges.append((0, 2 + i))
    for i in range(right_leaves):
        edges.append((1, 2 + left_leaves + i))
    return Graph(n, edges, name=f"double-star-{left_leaves}-{right_leaves}")


def disjoint_union_with_path(parts: Sequence[Graph], path_length: int) -> Graph:
    """Join copies of graphs in a ring via paths of the given length.

    This is the combinator behind the renitent construction of Lemma 38:
    take copies of a base graph and connect designated nodes by long paths.
    The ``i``-th part's node 0 is joined to the ``(i+1)``-th part's node 0
    through a fresh path with ``path_length`` edges.
    """
    if len(parts) < 2:
        raise GraphError("need at least two parts to join")
    if path_length < 1:
        raise GraphError("path_length must be >= 1")
    offsets = []
    total = 0
    edges: List[Edge] = []
    for part in parts:
        offsets.append(total)
        for u, v in part.edges():
            edges.append((u + total, v + total))
        total += part.n_nodes
    k = len(parts)
    for i in range(k):
        source = offsets[i]
        target = offsets[(i + 1) % k]
        previous = source
        for _ in range(path_length - 1):
            edges.append((previous, total))
            previous = total
            total += 1
        edges.append((previous, target))
    return Graph(total, edges, name=f"ring-of-{k}-parts")


def all_named_families() -> List[str]:
    """Names of the deterministic families exposed by this module."""
    return [
        "clique",
        "cycle",
        "path",
        "star",
        "complete_bipartite",
        "torus",
        "grid",
        "hypercube",
        "lollipop",
        "barbell",
        "cycle_with_chords",
        "circulant",
        "binary_tree",
        "double_star",
    ]
