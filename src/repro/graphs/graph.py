"""Core graph data structure for the population-protocol simulator.

The paper's model (Section 2.1) works with finite, connected, undirected
graphs.  The scheduler repeatedly samples an *ordered* pair of adjacent
nodes uniformly at random among the ``2m`` ordered pairs, so the central
operation the simulator needs is "sample a uniformly random edge, then a
uniformly random orientation of it".  :class:`Graph` therefore stores the
edge list as flat ``numpy`` arrays (for vectorised batch sampling) next to
plain-Python adjacency lists (for the propagation and random-walk modules).

The class is deliberately immutable: every protocol run, broadcast
simulation and random-walk experiment shares a single graph object, and the
experiment harness caches derived quantities (degrees, diameter, expansion
bounds) on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


class GraphError(ValueError):
    """Raised when a graph is malformed for the population model."""


#: Largest node count for which the dense all-pairs distance matrix may
#: be materialised.  Above this, ``(n, n)`` bool + int16 scratch is
#: multiple gigabytes (a ~1 TB request at n = 10^6) and dies in the
#: allocator with an opaque ``MemoryError``; eccentricities route to
#: per-source BFS instead, and million-node simulations should use the
#: sharded engine (:mod:`repro.sharding`), which never needs all-pairs
#: distances.
DENSE_DISTANCE_MATRIX_LIMIT = 8192


class Graph:
    """An immutable, connected, simple undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Nodes are the integers ``0, 1, ..., n_nodes - 1``.
    edges:
        Iterable of 2-tuples ``(u, v)`` with ``u != v``.  Each undirected
        edge must appear exactly once (either orientation).
    name:
        Optional human-readable name, used by the experiment harness when
        rendering result tables.
    check_connected:
        If true (the default), raise :class:`GraphError` when the graph is
        not connected.  The population-protocol model is only defined on
        connected graphs (Section 2.1).
    """

    __slots__ = (
        "_n",
        "_edges_u",
        "_edges_v",
        "_adjacency_cache",
        "_degrees",
        "_name",
        "_edge_index_cache",
        "_csr_cache",
        "_diameter_cache",
        "_eccentricity_cache",
    )

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Edge],
        name: str = "graph",
        check_connected: bool = True,
    ) -> None:
        if n_nodes <= 0:
            raise GraphError("a graph must have at least one node")
        edge_list = self._normalise_edges(n_nodes, edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            edges_u = np.ascontiguousarray(arr[:, 0])
            edges_v = np.ascontiguousarray(arr[:, 1])
        else:
            edges_u = np.zeros(0, dtype=np.int64)
            edges_v = np.zeros(0, dtype=np.int64)
        self._init_from_arrays(int(n_nodes), edges_u, edges_v, str(name), check_connected)

    @classmethod
    def from_edge_arrays(
        cls,
        n_nodes: int,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        name: str = "graph",
        check_connected: bool = True,
    ) -> "Graph":
        """Build a graph from flat endpoint arrays without a Python edge loop.

        The vectorised twin of the constructor for large sparse families
        (a million-node torus has four million endpoints; normalising them
        tuple by tuple costs hundreds of megabytes of transient Python
        objects).  Validation — range, self-loop and duplicate checks,
        ``(min, max)`` orientation — happens in whole-array operations;
        edge *order* is taken as given, so callers own the ordering
        contract the seeded pair streams depend on.
        """
        if n_nodes <= 0:
            raise GraphError("a graph must have at least one node")
        edges_u = np.ascontiguousarray(edges_u, dtype=np.int64)
        edges_v = np.ascontiguousarray(edges_v, dtype=np.int64)
        if edges_u.shape != edges_v.shape or edges_u.ndim != 1:
            raise GraphError("edge endpoint arrays must be parallel 1-d arrays")
        if edges_u.size:
            low = np.minimum(edges_u, edges_v)
            high = np.maximum(edges_u, edges_v)
            if int(low.min()) < 0 or int(high.max()) >= n_nodes:
                raise GraphError(f"edge endpoint out of range for n={n_nodes}")
            if bool((low == high).any()):
                node = int(low[low == high][0])
                raise GraphError(f"self-loop on node {node} is not allowed")
            keys = low * np.int64(n_nodes) + high
            if np.unique(keys).size != keys.size:
                raise GraphError("duplicate edge in endpoint arrays")
            edges_u, edges_v = np.ascontiguousarray(low), np.ascontiguousarray(high)
        graph = cls.__new__(cls)
        graph._init_from_arrays(
            int(n_nodes), edges_u, edges_v, str(name), check_connected
        )
        return graph

    def _init_from_arrays(
        self,
        n_nodes: int,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        name: str,
        check_connected: bool,
    ) -> None:
        self._n = n_nodes
        self._name = name
        self._edges_u = edges_u
        self._edges_v = edges_v
        counts = np.bincount(edges_u, minlength=self._n) + np.bincount(
            edges_v, minlength=self._n
        )
        self._degrees = counts.astype(np.int64)
        # Adjacency tuples, the edge-index dict and the CSR used by BFS
        # are derived lazily: at million-node scale the Python-object
        # forms cost gigabytes, and the vectorised paths never need them.
        self._adjacency_cache: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._edge_index_cache: Optional[Dict[Edge, int]] = None
        self._csr_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._diameter_cache: int | None = None
        self._eccentricity_cache: Tuple[int, ...] | None = None
        if self._n > 1 and check_connected:
            if self.n_edges == 0:
                raise GraphError("a multi-node connected graph must have at least one edge")
            if not self._is_connected():
                raise GraphError(f"graph {name!r} is not connected")

    # ------------------------------------------------------------------
    # Lazily derived forms
    # ------------------------------------------------------------------
    def _csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Compressed sparse rows of the symmetric adjacency (sorted)."""
        if self._csr_cache is None:
            src = np.concatenate((self._edges_u, self._edges_v))
            dst = np.concatenate((self._edges_v, self._edges_u))
            order = np.lexsort((dst, src))
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=self._n), out=indptr[1:])
            self._csr_cache = (indptr, np.ascontiguousarray(dst[order]))
        return self._csr_cache

    @property
    def _adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        if self._adjacency_cache is None:
            indptr, indices = self._csr()
            flat = indices.tolist()
            bounds = indptr.tolist()
            self._adjacency_cache = tuple(
                tuple(flat[bounds[v] : bounds[v + 1]]) for v in range(self._n)
            )
        return self._adjacency_cache

    @property
    def _edge_index(self) -> Dict[Edge, int]:
        if self._edge_index_cache is None:
            self._edge_index_cache = {
                (u, v): i
                for i, (u, v) in enumerate(
                    zip(self._edges_u.tolist(), self._edges_v.tolist())
                )
            }
        return self._edge_index_cache

    @staticmethod
    def _normalise_edges(n_nodes: int, edges: Iterable[Edge]) -> List[Edge]:
        seen = set()
        result: List[Edge] = []
        for raw in edges:
            u, v = int(raw[0]), int(raw[1])
            if u == v:
                raise GraphError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n_nodes}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"duplicate edge {key}")
            seen.add(key)
            result.append(key)
        return result

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return int(self._edges_u.shape[0])

    @property
    def name(self) -> str:
        """Human-readable name of the graph."""
        return self._name

    @property
    def nodes(self) -> range:
        """The node set as a :class:`range`."""
        return range(self._n)

    @property
    def edges_u(self) -> np.ndarray:
        """First endpoints of every edge (read-only view)."""
        view = self._edges_u.view()
        view.flags.writeable = False
        return view

    @property
    def edges_v(self) -> np.ndarray:
        """Second endpoints of every edge (read-only view)."""
        view = self._edges_v.view()
        view.flags.writeable = False
        return view

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Δ``."""
        return int(self._degrees.max()) if self._n else 0

    @property
    def min_degree(self) -> int:
        """Minimum degree ``δ``."""
        return int(self._degrees.min()) if self._n else 0

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self._degrees[node])

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``node``."""
        return self._adjacency[node]

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u, v in zip(self._edges_u.tolist(), self._edges_v.tolist()):
            yield (u, v)

    def edge_at(self, index: int) -> Edge:
        """Return the edge with the given index (scheduler convention)."""
        return (int(self._edges_u[index]), int(self._edges_v[index]))

    def edge_index(self, u: int, v: int) -> int:
        """Index of the undirected edge ``{u, v}``.

        Raises :class:`KeyError` if the edge is not present.
        """
        key = (u, v) if u < v else (v, u)
        return self._edge_index[key]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the graph."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_index

    def is_regular(self) -> bool:
        """Whether all nodes have the same degree."""
        return bool(self._n == 0 or (self._degrees == self._degrees[0]).all())

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Distances from ``source`` to every node (``-1`` if unreachable).

        Level-synchronous and fully vectorised over the CSR adjacency:
        each node enters the frontier exactly once, so a whole BFS costs
        ``O(m)`` array work regardless of diameter — the connectivity
        check on a million-node torus takes milliseconds instead of the
        minutes the per-node Python walk needed.
        """
        indptr, indices = self._csr()
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            candidates = indices[np.repeat(starts, counts) + within]
            fresh = candidates[dist[candidates] < 0]
            if fresh.size == 0:
                break
            dist[fresh] = d
            frontier = np.unique(fresh)
        return dist

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance ``dist(u, v)``."""
        return int(self.bfs_distances(u)[v])

    def eccentricities(self) -> Tuple[int, ...]:
        """Eccentricity of every node (cached).

        Dense low-diameter graphs use all-sources BFS in level-synchronous
        matrix form (one matrix product per level); the cost of that form
        scales with the diameter, so sparse high-diameter graphs (cycles,
        paths, renitent constructions) keep the per-source BFS walk.
        """
        if self._eccentricity_cache is None:
            n = self._n
            if n <= 1:
                self._eccentricity_cache = tuple(0 for _ in range(n))
            elif n <= DENSE_DISTANCE_MATRIX_LIMIT and self.n_edges * 8 >= n * (n - 1):
                # Dense graphs have small diameters: a handful of matrix
                # levels beats n BFS walks.  Above the size limit the
                # (n, n) scratch is unaffordable and BFS is used even on
                # dense graphs.
                self._eccentricity_cache = self._eccentricities_matrix()
            else:
                eccs = []
                for v in range(n):
                    dist = self.bfs_distances(v)
                    eccs.append(int(dist.max()))
                self._eccentricity_cache = tuple(eccs)
        return self._eccentricity_cache

    def _eccentricities_matrix(self) -> Tuple[int, ...]:
        n = self._n
        if n > DENSE_DISTANCE_MATRIX_LIMIT:
            raise GraphError(
                f"all-pairs distance matrix on {n} nodes needs two (n, n) "
                f"arrays (~{n * n * 3 / 1e9:.0f} GB) and is refused above "
                f"n={DENSE_DISTANCE_MATRIX_LIMIT}; use per-source "
                "bfs_distances() for the few sources you need, or run "
                "large sparse topologies through the sharded engine "
                "(repro.sharding), which never builds dense distance "
                "tables"
            )
        # Boolean semiring: numpy's bool matmul is a logical OR of ANDs,
        # so the frontier product cannot wrap no matter how many (256 or
        # more) frontier nodes share an unvisited neighbour — the case
        # that forced the previous int64 accumulators.  bool adjacency +
        # bool frontier + int16 levels cut the working set ~8x.
        adjacency = np.zeros((n, n), dtype=bool)
        adjacency[self._edges_u, self._edges_v] = True
        adjacency[self._edges_v, self._edges_u] = True
        level_dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int64
        distances = np.full((n, n), -1, dtype=level_dtype)
        np.fill_diagonal(distances, 0)
        frontier = np.eye(n, dtype=bool)
        level = 0
        while True:
            level += 1
            frontier = (frontier @ adjacency) & (distances < 0)
            if not frontier.any():
                break
            distances[frontier] = level
        # Disconnected pairs keep -1; report the max finite distance,
        # matching the per-source BFS behaviour.
        return tuple(int(e) for e in distances.max(axis=1))

    def diameter(self) -> int:
        """Graph diameter ``D(G)`` (cached; exact via all-sources BFS)."""
        if self._diameter_cache is None:
            self._diameter_cache = max(self.eccentricities()) if self._n > 1 else 0
        return self._diameter_cache

    def ball(self, node: int, radius: int) -> frozenset:
        """Radius-``radius`` neighbourhood ``B_r(node)`` (Section 2.1)."""
        dist = self.bfs_distances(node)
        return frozenset(int(v) for v in np.flatnonzero((dist >= 0) & (dist <= radius)))

    def ball_of_set(self, nodes: Iterable[int], radius: int) -> frozenset:
        """Radius-``radius`` neighbourhood of a node set ``B_r(U)``."""
        result: set = set()
        for node in nodes:
            result |= self.ball(node, radius)
        return frozenset(result)

    def shortest_path(self, u: int, v: int) -> List[int]:
        """One shortest path from ``u`` to ``v`` as a list of nodes."""
        if u == v:
            return [u]
        dist = self.bfs_distances(u)
        if dist[v] < 0:
            raise GraphError(f"no path between {u} and {v}")
        path = [v]
        current = v
        while current != u:
            for w in self._adjacency[current]:
                if dist[w] == dist[current] - 1:
                    path.append(w)
                    current = w
                    break
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Subgraphs and boundaries
    # ------------------------------------------------------------------
    def edge_boundary(self, node_set: Iterable[int]) -> List[Edge]:
        """Edge boundary ``∂S`` of the node set (Section 2.1)."""
        inside = set(int(v) for v in node_set)
        boundary = []
        for u, v in self.edges():
            if (u in inside) != (v in inside):
                boundary.append((u, v))
        return boundary

    def induced_subgraph(self, node_set: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph ``G[S]`` with relabelled nodes.

        Returns the subgraph (nodes relabelled to ``0..|S|-1``) and the
        mapping from original node ids to new ids.  Connectivity is not
        enforced on the result.
        """
        ordered = sorted(set(int(v) for v in node_set))
        mapping = {orig: new for new, orig in enumerate(ordered)}
        sub_edges = [
            (mapping[u], mapping[v])
            for u, v in self.edges()
            if u in mapping and v in mapping
        ]
        sub = Graph(
            len(ordered),
            sub_edges,
            name=f"{self._name}[induced]",
            check_connected=False,
        )
        return sub, mapping

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (single-node graphs are).

        Constructor validation uses this, but it is also meaningful on
        graphs built with ``check_connected=False`` — e.g. the sampled
        epoch graphs of an edge-churn topology schedule.
        """
        if self._n <= 1:
            return True
        return int((self.bfs_distances(0) >= 0).sum()) == self._n

    # Backwards-compatible private alias (pre-dates the public method).
    _is_connected = is_connected

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for property computations)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph, name: str = "graph", check_connected: bool = True) -> "Graph":
        """Build a :class:`Graph` from a networkx graph with integer nodes."""
        nodes = sorted(nx_graph.nodes())
        mapping = {node: i for i, node in enumerate(nodes)}
        edges = [(mapping[u], mapping[v]) for u, v in nx_graph.edges()]
        return cls(len(nodes), edges, name=name, check_connected=check_connected)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:
        return hash((self._n, frozenset(self.edges())))

    def __repr__(self) -> str:
        return f"Graph(name={self._name!r}, n={self._n}, m={self.n_edges})"
