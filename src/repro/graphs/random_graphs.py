"""Random graph models used by the paper's average-case results.

Section 7 and the "dense random" rows of Table 1 work with Erdős–Rényi
graphs ``G(n, p)`` for constant ``p``, conditioned on connectivity.  The
regular-graph rows additionally use random regular graphs.  All generators
take an explicit :class:`numpy.random.Generator` (or a seed) so experiments
are reproducible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from .graph import Edge, Graph, GraphError

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce a seed / generator / ``None`` into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def erdos_renyi(
    n: int,
    p: float,
    rng: RngLike = None,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> Graph:
    """Sample ``G ~ G(n, p)``, optionally conditioned on being connected.

    The paper's dense-random-graph results assume constant ``p > 0`` and
    condition on connectivity (Theorem 46, Lemma 48).  For constant ``p``
    the graph is connected with probability ``1 - o(1)``, so rejection
    sampling terminates quickly; ``max_attempts`` guards against
    pathological parameters (e.g. ``p`` near zero).
    """
    if n < 1:
        raise GraphError("erdos_renyi requires n >= 1")
    if not (0.0 <= p <= 1.0):
        raise GraphError("edge probability must lie in [0, 1]")
    generator = as_rng(rng)
    for _ in range(max_attempts):
        edges = _sample_gnp_edges(n, p, generator)
        graph = Graph(n, edges, name=f"gnp-{n}-{p:g}", check_connected=False)
        if not require_connected or n == 1 or _connected(graph):
            if require_connected and n > 1 and not _connected(graph):
                continue
            return Graph(n, edges, name=f"gnp-{n}-{p:g}", check_connected=require_connected)
    raise GraphError(
        f"failed to sample a connected G({n}, {p}) in {max_attempts} attempts"
    )


def _sample_gnp_edges(n: int, p: float, generator: np.random.Generator) -> List[Edge]:
    if n < 2 or p <= 0.0:
        return []
    upper_u, upper_v = np.triu_indices(n, k=1)
    mask = generator.random(upper_u.shape[0]) < p
    return list(zip(upper_u[mask].tolist(), upper_v[mask].tolist()))


def _connected(graph: Graph) -> bool:
    if graph.n_nodes <= 1:
        return True
    if graph.n_edges == 0:
        return False
    return bool((graph.bfs_distances(0) >= 0).all())


def random_regular(
    n: int,
    degree: int,
    rng: RngLike = None,
    max_attempts: int = 500,
) -> Graph:
    """Sample a random ``degree``-regular simple connected graph.

    Uses the configuration model (pairing of half-edges) with rejection of
    self-loops, multi-edges and disconnected outcomes.  For constant degree
    ``>= 3`` the acceptance probability is bounded away from zero, so this
    is fast in practice; random regular graphs of degree ``>= 3`` are
    expanders w.h.p., making them the natural "high-conductance regular"
    workload for Table 1.
    """
    if n < 2:
        raise GraphError("random_regular requires n >= 2")
    if degree < 1 or degree >= n:
        raise GraphError("degree must satisfy 1 <= degree < n")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even for a regular graph to exist")
    generator = as_rng(rng)
    for _ in range(max_attempts):
        edges = _configuration_model_attempt(n, degree, generator)
        if edges is None:
            continue
        graph = Graph(n, edges, name=f"random-regular-{n}-{degree}", check_connected=False)
        if _connected(graph):
            return Graph(n, edges, name=f"random-regular-{n}-{degree}")
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    )


def _configuration_model_attempt(
    n: int, degree: int, generator: np.random.Generator
) -> Optional[List[Edge]]:
    stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
    generator.shuffle(stubs)
    seen = set()
    edges: List[Edge] = []
    for i in range(0, stubs.shape[0], 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u == v:
            return None
        key = (u, v) if u < v else (v, u)
        if key in seen:
            return None
        seen.add(key)
        edges.append(key)
    return edges


def random_geometric(
    n: int,
    radius: float,
    rng: RngLike = None,
    max_attempts: int = 200,
) -> Graph:
    """Random geometric graph on the unit square (spatial sensor networks).

    Not used by the paper's theorems, but a natural "spatially structured"
    workload for the example applications: population protocols were
    originally motivated by passively mobile sensor networks.
    """
    if n < 1:
        raise GraphError("random_geometric requires n >= 1")
    if radius <= 0:
        raise GraphError("radius must be positive")
    generator = as_rng(rng)
    for _ in range(max_attempts):
        points = generator.random((n, 2))
        deltas = points[:, None, :] - points[None, :, :]
        dist2 = np.sum(deltas * deltas, axis=-1)
        close = dist2 <= radius * radius
        upper_u, upper_v = np.triu_indices(n, k=1)
        mask = close[upper_u, upper_v]
        edges = list(zip(upper_u[mask].tolist(), upper_v[mask].tolist()))
        graph = Graph(n, edges, name=f"geometric-{n}-{radius:g}", check_connected=False)
        if n == 1 or _connected(graph):
            return Graph(n, edges, name=f"geometric-{n}-{radius:g}")
    raise GraphError(
        f"failed to sample a connected geometric graph with n={n}, radius={radius}"
    )


def preferential_attachment(
    n: int,
    attachments: int = 2,
    rng: RngLike = None,
) -> Graph:
    """Barabási–Albert preferential-attachment graph on ``n`` nodes.

    Starts from a clique on ``attachments + 1`` nodes; every later node
    attaches to ``attachments`` distinct existing nodes sampled with
    probability proportional to their current degree (implemented with the
    standard repeated-endpoints trick: sampling a uniform element of the
    edge-endpoint list is exactly degree-proportional sampling).  The
    result is connected by construction and heavy-tailed: a few hubs of
    high degree — the "scale-free" regime between the star and the dense
    random rows of Table 1.
    """
    if n < 2:
        raise GraphError("preferential_attachment requires n >= 2")
    if attachments < 1:
        raise GraphError("attachments must be positive")
    core = min(attachments + 1, n)
    generator = as_rng(rng)
    edges: List[Edge] = [(u, v) for u in range(core) for v in range(u + 1, core)]
    # Flat list of edge endpoints; uniform choice = degree-proportional.
    endpoints: List[int] = [node for edge in edges for node in edge]
    for new_node in range(core, n):
        targets: set = set()
        want = min(attachments, new_node)
        while len(targets) < want:
            targets.add(endpoints[int(generator.integers(0, len(endpoints)))])
        for target in sorted(targets):
            edges.append((target, new_node))
            endpoints.append(target)
            endpoints.append(new_node)
    return Graph(n, edges, name=f"pref-attach-{n}-{attachments}")


def connected_gnp_threshold(n: int) -> float:
    """The connectivity threshold ``ln(n) / n`` for ``G(n, p)``.

    Useful when choosing the smallest ``p`` for which conditioning on
    connectivity is cheap.
    """
    if n < 2:
        return 1.0
    return float(np.log(n) / n)
