"""Time-varying interaction topologies.

The paper states all of its results (B(G), influence spread, the Table 1
protocol costs) for one *fixed* interaction graph.  This module lifts
that assumption: a :class:`TopologySchedule` describes the active
interaction graph as a function of the **interaction count**, and every
execution layer (the simulator engines, the replica-batched analytics
stacks, the orchestrator) samples interaction pairs from the edge table
active at the current step.

Conventions
-----------

* Steps are 0-indexed interaction counts: the pair of interaction number
  ``t + 1`` (1-based, as the simulator counts steps) is drawn from
  ``graph_at(t)`` where ``t`` interactions have already executed.
* A schedule partitions ``[0, ∞)`` into *epochs*; within an epoch the
  graph is constant.  Epoch graphs must all live on the same node
  universe ``0..n-1`` (node states persist across epoch switches) and
  must each carry at least one edge (the scheduler needs something to
  sample).  Epoch graphs need *not* be connected — temporal connectivity
  across epochs is exactly what dynamic-network workloads exercise.
* Every schedule exposes :meth:`TopologySchedule.union_graph`, the graph
  whose edge set contains every edge that can ever be active.  Stability
  certificates are evaluated against it: a certificate that holds on the
  union graph holds on every present *and future* epoch graph, so
  certification stays sound under topology changes.  For a single-epoch
  schedule the union graph is the epoch graph itself, which is what makes
  a :class:`StaticSchedule` run reproduce the equivalent fixed-graph run
  exactly.

Randomised schedules (edge churn) derive each epoch's sample from
``derive_seed(seed, tag, epoch_index)`` (:mod:`repro.core.seeds`): epoch
``k``'s graph is a pure function of ``(schedule seed, k)``, never of how
many epochs were visited before or of which replicas are watching — the
same purity invariant the analytics trajectory streams rely on.
"""

from __future__ import annotations

import abc
import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.seeds import derive_seed
from ..graphs.graph import Graph

#: Cache bound for sampled epoch graphs (edge churn).  A budget-bounded
#: run visits ``max_steps / epoch_length`` epochs; the cache is cleared
#: wholesale when full, like the other bounded memos in this package.
_EPOCH_CACHE_LIMIT = 512


class ScheduleError(ValueError):
    """A topology schedule is malformed."""


class TopologySchedule(abc.ABC):
    """Active interaction graph as a function of the interaction count.

    Subclasses implement :meth:`epoch_graph` and :meth:`epoch_length`;
    the base class derives step→epoch resolution (:meth:`epoch_at`,
    :meth:`graph_at`) and boundary-aware block splitting
    (:meth:`segments`) from them, caching epoch start offsets as they
    are discovered.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ScheduleError("a topology schedule needs at least one node")
        self._n = int(n_nodes)
        self._starts: List[int] = [0]

    @property
    def n_nodes(self) -> int:
        """Size of the (fixed) node universe all epoch graphs live on."""
        return self._n

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def epoch_graph(self, index: int) -> Graph:
        """The active graph of epoch ``index`` (0-indexed)."""

    @abc.abstractmethod
    def epoch_length(self, index: int) -> Optional[int]:
        """Length of epoch ``index`` in steps; ``None`` means "forever"."""

    @abc.abstractmethod
    def union_graph(self) -> Graph:
        """A graph containing every edge any epoch can activate.

        Used for stability-certificate checks: a certificate sound on the
        union graph is sound on every epoch graph, now and later.
        """

    # ------------------------------------------------------------------
    # Derived step resolution
    # ------------------------------------------------------------------
    def epoch_at(self, step: int) -> Tuple[int, int, Optional[int]]:
        """``(epoch_index, epoch_start, epoch_end)`` containing ``step``.

        ``epoch_end`` is exclusive and ``None`` for the final, unbounded
        epoch.  ``step`` counts interactions already executed (0-based).
        """
        if step < 0:
            raise ValueError("step must be non-negative")
        starts = self._starts
        while True:
            last = len(starts) - 1
            length = self.epoch_length(last)
            if length is None:
                break
            if length < 1:
                raise ScheduleError(f"epoch {last} has non-positive length {length}")
            end = starts[last] + length
            if end > step:
                break
            starts.append(end)
        index = bisect.bisect_right(starts, step) - 1
        length = self.epoch_length(index)
        end = None if length is None else starts[index] + length
        return index, starts[index], end

    def graph_at(self, step: int) -> Graph:
        """The graph interactions are drawn from when ``step`` have run."""
        return self.epoch_graph(self.epoch_at(step)[0])

    def segments(self, start: int, length: int) -> Iterator[Tuple[int, int]]:
        """Split ``[start, start + length)`` at epoch boundaries.

        Yields ``(epoch_index, count)`` chunks in order; the counts sum
        to ``length``.  This is what the block engines use to keep every
        interaction on its epoch's edge table.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        position = start
        target = start + length
        while position < target:
            index, _, end = self.epoch_at(position)
            take = target - position if end is None else min(end, target) - position
            yield index, int(take)
            position += take

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_epoch_graph(self, graph: Graph, label: str) -> Graph:
        if graph.n_nodes != self._n:
            raise ScheduleError(
                f"{label}: epoch graph has {graph.n_nodes} nodes, schedule "
                f"universe has {self._n} (node states persist across epochs, "
                "so all epoch graphs must share one node set)"
            )
        if graph.n_edges == 0:
            raise ScheduleError(f"{label}: epoch graph has no edges to sample")
        return graph

    def describe(self) -> dict:
        """Human-readable summary (used by reprs and reports)."""
        return {"kind": type(self).__name__, "n_nodes": self._n}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(f"{k}={v!r}" for k, v in self.describe().items())
        return f"{type(self).__name__}({fields})"


class StaticSchedule(TopologySchedule):
    """One graph, forever — the degenerate schedule.

    Executing any layer with ``StaticSchedule(g)`` is bit-identical to
    executing it with the fixed graph ``g``: the dynamic scheduler's
    sampling degenerates to the static scheduler's (no boundary ever
    caps a refill) and the union graph is ``g`` itself.
    """

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph.n_nodes)
        self._graph = self._check_epoch_graph(graph, "static schedule")

    def epoch_graph(self, index: int) -> Graph:
        return self._graph

    def epoch_length(self, index: int) -> Optional[int]:
        return None

    def union_graph(self) -> Graph:
        return self._graph

    def describe(self) -> dict:
        return {"kind": "static", "graph": self._graph.name, "n_nodes": self._n}


class EpochSchedule(TopologySchedule):
    """A fixed sequence of (graph, length) phases, optionally repeating.

    Parameters
    ----------
    phases:
        ``(graph, length)`` pairs in epoch order.  All graphs must share
        the node universe.  With ``repeat=True`` the sequence cycles
        forever (all lengths must be finite); with ``repeat=False`` the
        final phase holds forever (its length is ignored and may be
        ``None``).
    repeat:
        Whether to cycle through the phases indefinitely.
    """

    def __init__(
        self, phases: Sequence[Tuple[Graph, Optional[int]]], repeat: bool = False
    ) -> None:
        phases = list(phases)
        if not phases:
            raise ScheduleError("an epoch schedule needs at least one phase")
        super().__init__(phases[0][0].n_nodes)
        self._graphs: List[Graph] = []
        self._lengths: List[Optional[int]] = []
        for position, (graph, length) in enumerate(phases):
            self._check_epoch_graph(graph, f"phase {position}")
            final = position == len(phases) - 1
            if final and not repeat:
                length = None
            elif length is None or int(length) < 1:
                raise ScheduleError(
                    f"phase {position}: needs a positive length (got {length!r}); "
                    "only the final phase of a non-repeating schedule may be open-ended"
                )
            else:
                length = int(length)
            self._graphs.append(graph)
            self._lengths.append(length)
        self._repeat = bool(repeat)
        self._union: Optional[Graph] = None

    @classmethod
    def from_graphs(
        cls, graphs: Sequence[Graph], epoch_length: int, repeat: bool = True
    ) -> "EpochSchedule":
        """Equal-length phases over ``graphs`` (the clique→cycle→star form)."""
        if epoch_length < 1:
            raise ScheduleError("epoch_length must be positive")
        return cls([(graph, epoch_length) for graph in graphs], repeat=repeat)

    def _phase_index(self, index: int) -> int:
        count = len(self._graphs)
        return index % count if self._repeat else min(index, count - 1)

    def epoch_graph(self, index: int) -> Graph:
        return self._graphs[self._phase_index(index)]

    def epoch_length(self, index: int) -> Optional[int]:
        if self._repeat:
            return self._lengths[index % len(self._lengths)]
        if index >= len(self._lengths) - 1:
            return None
        return self._lengths[index]

    def union_graph(self) -> Graph:
        if self._union is None:
            edges = set()
            for graph in self._graphs:
                edges.update(graph.edges())
            self._union = Graph(
                self._n,
                sorted(edges),
                name=f"union({'+'.join(g.name for g in self._graphs)})",
                check_connected=False,
            )
        return self._union

    def describe(self) -> dict:
        return {
            "kind": "epochs",
            "phases": [
                (graph.name, length)
                for graph, length in zip(self._graphs, self._lengths)
            ],
            "repeat": self._repeat,
            "n_nodes": self._n,
        }


class EdgeChurnSchedule(TopologySchedule):
    """Bernoulli edge churn over a base graph, re-sampled every epoch.

    Epoch ``k`` keeps each base edge independently with probability
    ``keep_probability``, drawn from the child stream
    ``derive_seed(seed, "edge-churn", k)`` — a pure function of the
    schedule seed and the epoch index.  An all-edges-dropped sample is
    re-drawn from the same stream (deterministically); after
    ``max_resample`` failed attempts the base graph itself is used.

    ``require_connected=True`` additionally re-draws disconnected
    samples, modelling churn that never partitions the network; the
    default allows temporary partitions (the interesting regime).
    """

    _CHURN_TAG = "edge-churn"

    def __init__(
        self,
        base: Graph,
        keep_probability: float,
        epoch_length: int,
        seed: int = 0,
        require_connected: bool = False,
        max_resample: int = 8,
    ) -> None:
        super().__init__(base.n_nodes)
        self._base = self._check_epoch_graph(base, "edge churn base")
        if not (0.0 < keep_probability <= 1.0):
            raise ScheduleError("keep_probability must be in (0, 1]")
        if epoch_length < 1:
            raise ScheduleError("epoch_length must be positive")
        if max_resample < 0:
            raise ScheduleError("max_resample must be non-negative")
        self._keep = float(keep_probability)
        self._epoch_length = int(epoch_length)
        self._seed = int(seed)
        self._require_connected = bool(require_connected)
        self._max_resample = int(max_resample)
        self._cache: Dict[int, Graph] = {}

    @property
    def base_graph(self) -> Graph:
        """The graph whose edges churn."""
        return self._base

    def epoch_length(self, index: int) -> Optional[int]:
        return self._epoch_length

    def epoch_graph(self, index: int) -> Graph:
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        rng = np.random.default_rng(derive_seed(self._seed, self._CHURN_TAG, index))
        base = self._base
        graph = base
        for _ in range(self._max_resample + 1):
            mask = rng.random(base.n_edges) < self._keep
            if not mask.any():
                continue
            candidate = Graph(
                self._n,
                list(zip(base.edges_u[mask].tolist(), base.edges_v[mask].tolist())),
                name=f"{base.name}[churn@{index}]",
                check_connected=False,
            )
            if self._require_connected and not candidate.is_connected():
                continue
            graph = candidate
            break
        if len(self._cache) >= _EPOCH_CACHE_LIMIT:
            self._cache.clear()
        self._cache[index] = graph
        return graph

    def union_graph(self) -> Graph:
        # Any dropped edge can return in a later epoch, so the base graph
        # is exactly the union of all possible epoch graphs.
        return self._base

    def describe(self) -> dict:
        return {
            "kind": "edge-churn",
            "base": self._base.name,
            "keep_probability": self._keep,
            "epoch_length": self._epoch_length,
            "seed": self._seed,
            "require_connected": self._require_connected,
            "n_nodes": self._n,
        }


class NodeChurnSchedule(TopologySchedule):
    """Grow/shrink node churn: a varying active prefix of a full graph.

    The node universe is the full graph's node set; epoch ``k`` activates
    the induced subgraph on nodes ``0 .. counts[k] - 1`` (embedded in the
    universe, so inactive nodes keep their protocol states but are never
    sampled).  With ``repeat=False`` the final count holds forever —
    leader-election workloads should end at the full size so every
    node's state can eventually be resolved.

    Parameters
    ----------
    full:
        The graph on the complete node universe.
    counts:
        Active-node counts per epoch, each in ``[2, n]``; increasing
        sequences model growth, decreasing ones shrinkage.
    epoch_length:
        Steps per epoch.
    repeat:
        Whether to cycle through ``counts`` indefinitely.
    """

    def __init__(
        self,
        full: Graph,
        counts: Sequence[int],
        epoch_length: int,
        repeat: bool = False,
    ) -> None:
        super().__init__(full.n_nodes)
        self._full = self._check_epoch_graph(full, "node churn full graph")
        counts = [int(c) for c in counts]
        if not counts:
            raise ScheduleError("node churn needs at least one active-node count")
        for count in counts:
            if not (2 <= count <= full.n_nodes):
                raise ScheduleError(
                    f"active-node count {count} out of range [2, {full.n_nodes}]"
                )
        if epoch_length < 1:
            raise ScheduleError("epoch_length must be positive")
        self._counts = counts
        self._epoch_length = int(epoch_length)
        self._repeat = bool(repeat)
        self._by_count: Dict[int, Graph] = {}
        for count in counts:
            self._active_graph(count)  # validate every prefix up front

    def _active_graph(self, count: int) -> Graph:
        graph = self._by_count.get(count)
        if graph is None:
            full = self._full
            mask = (full.edges_u < count) & (full.edges_v < count)
            edges = list(zip(full.edges_u[mask].tolist(), full.edges_v[mask].tolist()))
            if not edges:
                raise ScheduleError(
                    f"active prefix of {count} nodes induces no edges on {full.name}"
                )
            graph = Graph(
                self._n, edges, name=f"{full.name}[:{count}]", check_connected=False
            )
            self._by_count[count] = graph
        return graph

    def _count_at(self, index: int) -> int:
        size = len(self._counts)
        return self._counts[index % size if self._repeat else min(index, size - 1)]

    def epoch_graph(self, index: int) -> Graph:
        return self._active_graph(self._count_at(index))

    def epoch_length(self, index: int) -> Optional[int]:
        if not self._repeat and index >= len(self._counts) - 1:
            return None
        return self._epoch_length

    def union_graph(self) -> Graph:
        return self._active_graph(max(self._counts))

    def describe(self) -> dict:
        return {
            "kind": "node-churn",
            "full": self._full.name,
            "counts": tuple(self._counts),
            "epoch_length": self._epoch_length,
            "repeat": self._repeat,
            "n_nodes": self._n,
        }
