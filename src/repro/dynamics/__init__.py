"""Dynamic-topology subsystem: time-varying interaction graphs.

A :class:`TopologySchedule` describes the active interaction graph as a
function of the interaction count (epoch-switching sequences, Bernoulli
edge churn, grow/shrink node churn); :class:`DynamicScheduler` samples
interaction pairs from the currently active edge table with the same
seeded-stream contract as the static scheduler.  See
``docs/ARCHITECTURE.md`` ("Dynamic topologies") for how the simulator
engines, the replica-batched analytics stacks and the orchestrator
consume schedules.
"""

from .schedule import (
    EdgeChurnSchedule,
    EpochSchedule,
    NodeChurnSchedule,
    ScheduleError,
    StaticSchedule,
    TopologySchedule,
)
from .scheduler import DynamicScheduler

__all__ = [
    "DynamicScheduler",
    "EdgeChurnSchedule",
    "EpochSchedule",
    "NodeChurnSchedule",
    "ScheduleError",
    "StaticSchedule",
    "TopologySchedule",
]
