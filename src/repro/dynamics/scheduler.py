"""The stochastic scheduler for time-varying topologies.

:class:`DynamicScheduler` is the dynamic-topology twin of
:class:`repro.core.scheduler.RandomScheduler`: in every step it samples
an ordered pair ``(u, v)`` uniformly among the ``2·m_k`` ordered pairs of
the **currently active** epoch graph (a uniform edge of that graph plus a
uniform orientation).

Both schedulers are shells over the same
:class:`repro.runtime.source.InteractionSource`, so the seeded-stream
contract — refills happen only on an empty buffer, with the same
two-call ``integers(0, m) / integers(0, 2)`` draw order and the
refill size single-sourced in :data:`repro.runtime.source.REFILL_SIZE` —
is defined once.  The only dynamic addition (also implemented in the
shared source) is that a refill is **capped at the current epoch
boundary**: a pre-sample buffer never crosses an epoch switch, so every
draw is made against the edge table it will be applied to.  For a
single-epoch schedule no cap ever applies, so the stream — and therefore
every downstream seeded result — is bit-identical to
``RandomScheduler(graph, rng=seed)`` on the same seed.

All three compiled-engine backends (native / vector / scalar) consume
this scheduler through the same :meth:`next_arrays` batches the static
scheduler provides, so dynamic runs stay bit-identical across backends
for free.
"""

from __future__ import annotations

from ..core.scheduler import _DEFAULT_BATCH, BufferedSampler
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from .schedule import TopologySchedule


class DynamicScheduler(BufferedSampler):
    """Uniform stochastic scheduler over a :class:`TopologySchedule`.

    Parameters
    ----------
    schedule:
        The time-varying topology to sample from.
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    batch_size:
        Pre-sample size per numpy refill (shared with the static
        scheduler's seeded-stream definition).
    """

    def __init__(
        self,
        schedule: TopologySchedule,
        rng: RngLike = None,
        batch_size: int = _DEFAULT_BATCH,
    ) -> None:
        super().__init__(schedule, rng=rng, batch_size=batch_size)

    @property
    def schedule(self) -> TopologySchedule:
        """The topology schedule being sampled."""
        assert self._schedule is not None
        return self._schedule

    @property
    def graph(self) -> Graph:
        """The epoch graph the *next* interaction will be drawn from."""
        return self.active_graph
