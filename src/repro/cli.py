"""Command-line interface for the reproduction (``repro-popsim``).

Sub-commands:

* ``workloads``       — list the available graph-family workloads.
* ``scenarios``       — list the registered sweep scenarios.
* ``engines``         — show the available execution engines / backends.
* ``elect``           — run one leader-election protocol on one workload
  and print the simulation result.
* ``compare``         — run all three Table 1 protocols on one workload.
* ``table1``          — regenerate a Table 1 row group (sweep over sizes).
* ``sweep``           — run a registered scenario through the parallel
  orchestrator (``--jobs N`` worker processes, persistent result cache
  under ``.repro_cache/``).
* ``serve``           — start the long-lived job server (asyncio socket
  front-end; validates submissions, serves cache hits, dispatches unit
  plans to local and remote workers).
* ``worker``          — connect a remote shard worker to a job server
  (``--connect host:port``) and execute shipped unit plans.
* ``submit``          — submit a registered scenario to a job server,
  stream per-unit progress, print the same tables as ``sweep``.
* ``chaos``           — run a scenario through the full service stack
  under a seeded fault schedule (worker crashes, garbled frames, store
  corruption) and verify the result is byte-identical to a fault-free
  in-process run.
* ``broadcast``       — estimate ``B(G)`` and print the Theorem 6 bounds.
* ``graph-info``      — structural properties of a workload graph.

``elect``, ``compare`` and ``table1`` accept ``--engine
{auto,compiled,reference}``: ``compiled`` runs through the table-driven
engine (:mod:`repro.engine`), ``reference`` through the pure-Python
interpreter, and ``auto`` (the default) prefers the compiled engine and
falls back when a protocol cannot be compiled.  Results are identical
across engines for a given seed.

Examples::

    repro-popsim elect --workload clique --size 100 --protocol token
    repro-popsim table1 --family cycle --sizes 24 36 48 --repetitions 2
    repro-popsim elect --workload clique --size 100 --engine reference
    repro-popsim broadcast --workload torus --size 64
    repro-popsim sweep --scenario table1-clique --jobs 4
    repro-popsim sweep --scenario clique-n100 --jobs 2 --no-cache
    repro-popsim serve --port 7070 --local-workers 2
    repro-popsim worker --connect 127.0.0.1:7070 --reconnect-retries 10
    repro-popsim submit --connect 127.0.0.1:7070 --scenario table1-clique
    repro-popsim chaos --scenario table1-stars --sizes 6 8 --repetitions 6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments.harness import (
    DegenerateSweepError,
    compare_protocols_on_graph,
    default_protocol_specs,
    default_step_budget,
    fast_protocol_spec,
    identifier_protocol_spec,
    measure_protocol_on_graph,
    star_protocol_spec,
    token_protocol_spec,
)
from .experiments.reporting import render_comparison, render_table
from .experiments.table1 import graph_parameters_for, run_table1_family
from .experiments.workloads import available_workloads, get_workload
from .orchestration import available_scenarios, get_scenario, run_scenario
from .graphs.properties import summarize
from .propagation.bounds import broadcast_bounds
from .propagation.broadcast import broadcast_time_estimate

_PROTOCOL_CHOICES = {
    "token": token_protocol_spec,
    "identifier": identifier_protocol_spec,
    "fast": fast_protocol_spec,
    "star": star_protocol_spec,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``repro-popsim``."""
    parser = argparse.ArgumentParser(
        prog="repro-popsim",
        description="Leader election in population protocols on graphs (PODC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list available graph workloads")

    subparsers.add_parser("scenarios", help="list registered sweep scenarios")

    subparsers.add_parser("engines", help="show available execution engines/backends")

    elect = subparsers.add_parser("elect", help="run a single leader election")
    _add_graph_arguments(elect)
    elect.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOL_CHOICES),
        default="token",
        help="which protocol to run",
    )
    elect.add_argument("--repetitions", type=int, default=3)
    _add_engine_argument(elect)

    compare = subparsers.add_parser("compare", help="compare the Table 1 protocols")
    _add_graph_arguments(compare)
    compare.add_argument("--repetitions", type=int, default=3)
    _add_engine_argument(compare)

    table1 = subparsers.add_parser("table1", help="regenerate a Table 1 row group")
    table1.add_argument("--family", required=True, help="workload name")
    table1.add_argument("--sizes", type=int, nargs="+", required=True)
    table1.add_argument("--repetitions", type=int, default=2)
    table1.add_argument("--seed", type=int, default=0)
    table1.add_argument("--jobs", type=int, default=1, help="worker processes")
    _add_engine_argument(table1)

    sweep = subparsers.add_parser(
        "sweep", help="run a registered scenario (parallel, cached)"
    )
    sweep.add_argument("--scenario", required=True, help="scenario name (see `scenarios`)")
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result store",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="result-store root (default: .repro_cache/ in the working directory)",
    )
    sweep.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="override the size grid"
    )
    sweep.add_argument(
        "--repetitions", type=int, default=None, help="override the trial count"
    )
    sweep.add_argument("--seed", type=int, default=None, help="override the base seed")
    sweep.add_argument(
        "--engine",
        choices=["auto", "compiled", "reference"],
        default=None,
        help="override the execution engine",
    )
    sweep.add_argument(
        "--threads",
        type=int,
        default=None,
        help="kernel threads per execution plan (default: REPRO_KERNEL_THREADS)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        help="graph shards per execution plan (partitioned executor)",
    )
    sweep.add_argument(
        "--shard-workers",
        dest="shard_workers",
        type=int,
        default=None,
        help="shard-worker processes per execution plan (0 = in-process)",
    )

    serve = subparsers.add_parser(
        "serve", help="start the long-lived simulation job server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (for scripts)",
    )
    serve.add_argument(
        "--local-workers",
        type=int,
        default=0,
        help="in-process workers executing units on the server machine",
    )
    serve.add_argument(
        "--unit-timeout",
        type=float,
        default=600.0,
        help="seconds a dispatched unit may take before it is re-queued",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="dispatch attempts per unit before its job fails",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result store",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="result-store root (default: .repro_cache/ in the working directory)",
    )
    serve.add_argument(
        "--liveness-timeout",
        type=float,
        default=None,
        help=(
            "seconds a mid-unit worker may stay silent (no heartbeat) before "
            "being written off; 0 disables the check (default: 10)"
        ),
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive dispatch failures that quarantine a worker",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds a quarantined worker waits before its probe dispatch",
    )
    serve.add_argument(
        "--degrade-local",
        action="store_true",
        help=(
            "execute queued units in-process whenever no worker is available "
            "(graceful degradation instead of a hanging job)"
        ),
    )

    worker = subparsers.add_parser(
        "worker", help="connect a remote shard worker to a job server"
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="job server endpoint"
    )
    worker.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="exit after executing this many units (default: run until drained)",
    )
    worker.add_argument(
        "--reconnect-retries",
        type=int,
        default=0,
        help=(
            "reconnect this many times (seeded exponential backoff) after a "
            "lost connection before giving up (default: 0, fail fast)"
        ),
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="seconds between mid-unit heartbeat frames (default: 2)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a registered scenario to a job server"
    )
    submit.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="job server endpoint"
    )
    submit.add_argument("--scenario", required=True, help="scenario name (see `scenarios`)")
    submit.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="override the size grid"
    )
    submit.add_argument(
        "--repetitions", type=int, default=None, help="override the trial count"
    )
    submit.add_argument("--seed", type=int, default=None, help="override the base seed")
    submit.add_argument(
        "--engine",
        choices=["auto", "compiled", "reference"],
        default=None,
        help="override the execution engine",
    )
    submit.add_argument(
        "--threads",
        type=int,
        default=None,
        help="kernel threads per unit on the workers",
    )
    submit.add_argument(
        "--shards",
        type=int,
        default=None,
        help="graph shards per unit on the workers",
    )
    submit.add_argument(
        "--shard-workers",
        dest="shard_workers",
        type=int,
        default=None,
        help="shard-worker processes per unit on the workers (0 = in-process)",
    )
    submit.add_argument(
        "--no-cache",
        action="store_true",
        help="ask the server to bypass its result store for this job",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="overall submission deadline in seconds",
    )
    submit.add_argument(
        "--events",
        action="store_true",
        help="print every per-unit progress event as it streams in",
    )
    submit.add_argument(
        "--connect-retries",
        type=int,
        default=0,
        help=(
            "retry an unreachable server this many times with seeded backoff "
            "(useful when racing the server's startup)"
        ),
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="soak a scenario through the service stack under injected faults",
    )
    chaos.add_argument(
        "--scenario", default="table1-stars", help="scenario name (see `scenarios`)"
    )
    chaos.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="override the size grid"
    )
    chaos.add_argument(
        "--repetitions", type=int, default=None, help="override the trial count"
    )
    chaos.add_argument("--seed", type=int, default=None, help="override the base seed")
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the fault schedule (same seed + spec = same faults)",
    )
    chaos.add_argument(
        "--fault",
        action="append",
        metavar="KIND=RATE",
        default=None,
        help=(
            "override one fault kind's per-opportunity rate "
            "(repeatable; e.g. --fault worker-crash=0.3)"
        ),
    )
    chaos.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="scale every default fault rate by this factor",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=180.0,
        help="overall deadline in seconds per chaos submission",
    )

    broadcast = subparsers.add_parser("broadcast", help="estimate B(G) and print bounds")
    _add_graph_arguments(broadcast)
    broadcast.add_argument("--repetitions", type=int, default=6)

    info = subparsers.add_parser("graph-info", help="structural properties of a workload graph")
    _add_graph_arguments(info)
    return parser


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True, help="workload name (see `workloads`)")
    parser.add_argument("--size", type=int, required=True, help="target population size")
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["auto", "compiled", "reference"],
        default="auto",
        help="execution engine (results are seed-identical across engines)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "engines":
        return _cmd_engines()
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "elect":
        return _cmd_elect(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "broadcast":
        return _cmd_broadcast(args)
    if args.command == "graph-info":
        return _cmd_graph_info(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _build_graph(args: argparse.Namespace):
    workload = get_workload(args.workload)
    return workload.build(args.size, seed=args.seed)


def _cmd_workloads() -> int:
    rows = []
    for name in available_workloads():
        workload = get_workload(name)
        rows.append({"name": name, "description": workload.description, "regular": workload.regular})
    print(render_table(rows, title="Available workloads"))
    return 0


def _cmd_scenarios() -> int:
    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name)
        rows.append(
            {
                "name": name,
                "workload": scenario.workload,
                "sizes": "/".join(str(s) for s in scenario.sizes),
                "trials": scenario.repetitions,
                "protocols": ",".join(p.builder for p in scenario.protocols),
                "description": scenario.description,
            }
        )
    print(render_table(rows, title="Registered scenarios"))
    return 0


def _scenario_overrides(args: argparse.Namespace) -> dict:
    """The ``--sizes/--repetitions/--seed/--engine/--threads/--shards/--shard-workers`` overrides."""
    overrides = {}
    if getattr(args, "sizes", None) is not None:
        overrides["sizes"] = tuple(args.sizes)
    if getattr(args, "repetitions", None) is not None:
        overrides["repetitions"] = args.repetitions
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "threads", None) is not None:
        overrides["threads"] = args.threads
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
    if getattr(args, "shard_workers", None) is not None:
        overrides["shard_workers"] = args.shard_workers
    return overrides


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    overrides = _scenario_overrides(args)
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    result = run_scenario(
        scenario,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    _print_scenario_result(scenario, result)
    served = (
        f"{result.cache_hits}/{result.total_units} units from cache, "
        f"{result.executed_units} executed with jobs={result.jobs}"
        if not args.no_cache
        else f"{result.executed_units} units executed with jobs={result.jobs} (cache off)"
    )
    print(f"{served}; wall time {result.wall_time_seconds:.2f}s")
    return 0


def _print_scenario_result(scenario, result) -> None:
    """Render the per-protocol sweep tables (shared by sweep and submit)."""
    for sweep in result.sweeps:
        rows = []
        for size, measurement in zip(sweep.sizes, sweep.measurements):
            rows.append(
                {
                    "size": size,
                    "graph": measurement.graph_name,
                    "n": measurement.n_nodes,
                    "mean_steps": measurement.stabilization_steps.mean,
                    "q90_steps": measurement.stabilization_steps.q90,
                    "success": measurement.success_rate,
                    "states": measurement.max_states_observed,
                }
            )
        try:
            fit = sweep.fit()
            fit_note = f"fitted exponent {fit.exponent:.2f} (R²={fit.r_squared:.3f})"
        except DegenerateSweepError as error:
            fit_note = f"no scaling fit: {error}"
        print(render_table(rows, title=f"{scenario.name} — {sweep.protocol_name}"))
        print(f"  {fit_note}")
        print()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service.server import JobServer

    from .service.protocol import DEFAULT_LIVENESS_TIMEOUT

    liveness = args.liveness_timeout
    if liveness is None:
        liveness = DEFAULT_LIVENESS_TIMEOUT
    elif liveness <= 0:
        liveness = None  # 0 disables the liveness check entirely

    async def _serve() -> int:
        server = JobServer(
            host=args.host,
            port=args.port,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            local_workers=args.local_workers,
            unit_timeout=args.unit_timeout,
            max_attempts=args.max_attempts,
            liveness_timeout=liveness,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            degrade_to_local=args.degrade_local,
        )
        host, port = await server.start()
        print(
            f"repro-popsim job server listening on {host}:{port} "
            f"(local workers: {args.local_workers}, "
            f"cache: {'off' if args.no_cache else 'on'})",
            flush=True,
        )
        if args.port_file:
            import os
            import tempfile
            from pathlib import Path

            # Atomic so a script polling the file can never read a
            # half-written port number.
            target = Path(args.port_file)
            descriptor, temp_name = tempfile.mkstemp(
                prefix=".port.", dir=str(target.parent or Path("."))
            )
            with os.fdopen(descriptor, "w", encoding="ascii") as handle:
                handle.write(f"{port}\n")
            os.replace(temp_name, target)
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signal_number,
                    lambda: loop.create_task(server.drain(timeout=args.unit_timeout)),
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
                pass
        await server.wait_closed()
        print("job server drained and stopped", flush=True)
        return 0

    return asyncio.run(_serve())


def _cmd_worker(args: argparse.Namespace) -> int:
    from .service.protocol import ServiceError, parse_endpoint
    from .service.worker import run_worker

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    worker_kwargs = {
        "max_units": args.max_units,
        "reconnect_retries": args.reconnect_retries,
    }
    if args.heartbeat_interval is not None:
        worker_kwargs["heartbeat_interval"] = (
            args.heartbeat_interval if args.heartbeat_interval > 0 else None
        )
    try:
        executed = run_worker(host, port, **worker_kwargs)
    except (ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"worker finished after {executed} unit(s)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient
    from .service.protocol import ServiceError, parse_endpoint

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    overrides = _scenario_overrides(args)
    threads = overrides.pop("threads", None)
    if "sizes" in overrides:
        overrides["sizes"] = list(overrides["sizes"])  # JSON-native

    def _print_event(event: dict) -> None:
        if not args.events:
            return
        note = f" (attempt {event.get('attempts')})" if event.get("attempts") else ""
        print(f"[{event.get('state')}] {event.get('unit')}{note}", flush=True)

    client = ServiceClient(
        host, port, timeout=args.timeout, connect_retries=args.connect_retries
    )
    try:
        result = client.submit(
            name=args.scenario,
            overrides={**overrides, **({"threads": threads} if threads else {})},
            cache=not args.no_cache,
            on_event=_print_event,
        )
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_scenario_result(result.scenario, result)
    print(
        f"{result.cache_hits}/{result.total_units} units from server cache, "
        f"{result.executed_units} executed by {result.jobs} worker(s); "
        f"wall time {result.wall_time_seconds:.2f}s"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import FaultSpec, default_fault_spec, run_chaos_soak

    scenario = get_scenario(args.scenario)
    overrides = _scenario_overrides(args)
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    base = default_fault_spec()
    rates = {kind: rate for kind, rate in base.rates}
    if args.intensity != 1.0:
        if args.intensity < 0:
            print("error: --intensity must be non-negative", file=sys.stderr)
            return 2
        rates = {kind: min(1.0, rate * args.intensity) for kind, rate in rates.items()}
    for item in args.fault or []:
        kind, separator, value = item.partition("=")
        if not separator:
            print(f"error: --fault expects KIND=RATE, got {item!r}", file=sys.stderr)
            return 2
        try:
            rates[kind.strip()] = float(value)
        except ValueError:
            print(f"error: fault rate {value!r} is not a number", file=sys.stderr)
            return 2
    try:
        spec = FaultSpec.from_rates(
            rates,
            stall_seconds=base.stall_seconds,
            slow_seconds=base.slow_seconds,
            delay_seconds=base.delay_seconds,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = run_chaos_soak(
            scenario, args.chaos_seed, spec, client_timeout=args.timeout
        )
    except Exception as error:  # noqa: BLE001 — soak failures are the verdict
        print(f"error: chaos soak failed: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    rows = [
        {"fault": kind, "fired": count}
        for kind, count in sorted(report.counts_by_kind.items())
    ]
    if rows:
        print(
            render_table(
                rows,
                title=f"Chaos soak — {scenario.name} (chaos seed {report.chaos_seed})",
            )
        )
    print(
        f"{report.injected} fault(s) injected across 2 submissions of "
        f"{report.units} unit(s)"
    )
    if report.byte_identical:
        print("PASS: both chaos results byte-identical to the fault-free run")
        return 0
    print("FAIL: chaos result diverged from the fault-free run", file=sys.stderr)
    return 1


def _cmd_engines() -> int:
    from .engine import available_backends

    backends = available_backends()
    rows = [
        {
            "engine": "reference",
            "description": "pure-Python interpreter (semantic reference)",
        },
        {
            "engine": "compiled",
            "description": "table-driven engine; backends: " + ", ".join(backends),
        },
        {
            "engine": "auto",
            "description": "compiled when possible, reference otherwise (default)",
        },
    ]
    print(render_table(rows, title="Execution engines"))
    return 0


def _cmd_elect(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    spec = _PROTOCOL_CHOICES[args.protocol]()
    measurement = measure_protocol_on_graph(
        spec,
        graph,
        repetitions=args.repetitions,
        seed=args.seed,
        max_steps=default_step_budget(graph),
        engine=args.engine,
    )
    print(render_table([measurement.as_dict()], title=f"{spec.name} on {graph.name}"))
    return 0 if measurement.success_rate == 1.0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    measurements = compare_protocols_on_graph(
        default_protocol_specs(),
        graph,
        repetitions=args.repetitions,
        seed=args.seed,
        max_steps=default_step_budget(graph),
        engine=args.engine,
    )
    print(render_comparison(f"Protocol comparison on {graph.name}", measurements))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    group = run_table1_family(
        args.family,
        args.sizes,
        repetitions=args.repetitions,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
    )
    print(group.render())
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    estimate = broadcast_time_estimate(graph, repetitions=args.repetitions, rng=args.seed)
    bounds = broadcast_bounds(graph)
    rows = [
        {
            "graph": graph.name,
            "measured B(G)": estimate.value,
            "lower bound (Lem 12)": bounds.lower,
            "upper (diameter form)": bounds.upper_diameter_form,
            "upper (expansion form)": bounds.upper_expansion_form,
        }
    ]
    print(render_table(rows, title="Broadcast time"))
    return 0


def _cmd_graph_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    rows = [summarize(graph)]
    print(render_table(rows, title="Graph properties"))
    extra = graph_parameters_for(graph, estimate_broadcast=False)
    print()
    print(render_table([extra], title="Table 1 parameters"))
    return 0


if __name__ == "__main__":  # pragma: no cover - direct execution helper
    sys.exit(main())
