"""Command-line interface for the reproduction (``repro-popsim``).

Sub-commands:

* ``workloads``       — list the available graph-family workloads.
* ``scenarios``       — list the registered sweep scenarios.
* ``engines``         — show the available execution engines / backends.
* ``elect``           — run one leader-election protocol on one workload
  and print the simulation result.
* ``compare``         — run all three Table 1 protocols on one workload.
* ``table1``          — regenerate a Table 1 row group (sweep over sizes).
* ``sweep``           — run a registered scenario through the parallel
  orchestrator (``--jobs N`` worker processes, persistent result cache
  under ``.repro_cache/``).
* ``broadcast``       — estimate ``B(G)`` and print the Theorem 6 bounds.
* ``graph-info``      — structural properties of a workload graph.

``elect``, ``compare`` and ``table1`` accept ``--engine
{auto,compiled,reference}``: ``compiled`` runs through the table-driven
engine (:mod:`repro.engine`), ``reference`` through the pure-Python
interpreter, and ``auto`` (the default) prefers the compiled engine and
falls back when a protocol cannot be compiled.  Results are identical
across engines for a given seed.

Examples::

    repro-popsim elect --workload clique --size 100 --protocol token
    repro-popsim table1 --family cycle --sizes 24 36 48 --repetitions 2
    repro-popsim elect --workload clique --size 100 --engine reference
    repro-popsim broadcast --workload torus --size 64
    repro-popsim sweep --scenario table1-clique --jobs 4
    repro-popsim sweep --scenario clique-n100 --jobs 2 --no-cache
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments.harness import (
    DegenerateSweepError,
    compare_protocols_on_graph,
    default_protocol_specs,
    default_step_budget,
    fast_protocol_spec,
    identifier_protocol_spec,
    measure_protocol_on_graph,
    star_protocol_spec,
    token_protocol_spec,
)
from .experiments.reporting import render_comparison, render_table
from .experiments.table1 import graph_parameters_for, run_table1_family
from .experiments.workloads import available_workloads, get_workload
from .orchestration import available_scenarios, get_scenario, run_scenario
from .graphs.properties import summarize
from .propagation.bounds import broadcast_bounds
from .propagation.broadcast import broadcast_time_estimate

_PROTOCOL_CHOICES = {
    "token": token_protocol_spec,
    "identifier": identifier_protocol_spec,
    "fast": fast_protocol_spec,
    "star": star_protocol_spec,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``repro-popsim``."""
    parser = argparse.ArgumentParser(
        prog="repro-popsim",
        description="Leader election in population protocols on graphs (PODC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list available graph workloads")

    subparsers.add_parser("scenarios", help="list registered sweep scenarios")

    subparsers.add_parser("engines", help="show available execution engines/backends")

    elect = subparsers.add_parser("elect", help="run a single leader election")
    _add_graph_arguments(elect)
    elect.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOL_CHOICES),
        default="token",
        help="which protocol to run",
    )
    elect.add_argument("--repetitions", type=int, default=3)
    _add_engine_argument(elect)

    compare = subparsers.add_parser("compare", help="compare the Table 1 protocols")
    _add_graph_arguments(compare)
    compare.add_argument("--repetitions", type=int, default=3)
    _add_engine_argument(compare)

    table1 = subparsers.add_parser("table1", help="regenerate a Table 1 row group")
    table1.add_argument("--family", required=True, help="workload name")
    table1.add_argument("--sizes", type=int, nargs="+", required=True)
    table1.add_argument("--repetitions", type=int, default=2)
    table1.add_argument("--seed", type=int, default=0)
    table1.add_argument("--jobs", type=int, default=1, help="worker processes")
    _add_engine_argument(table1)

    sweep = subparsers.add_parser(
        "sweep", help="run a registered scenario (parallel, cached)"
    )
    sweep.add_argument("--scenario", required=True, help="scenario name (see `scenarios`)")
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result store",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="result-store root (default: .repro_cache/ in the working directory)",
    )
    sweep.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="override the size grid"
    )
    sweep.add_argument(
        "--repetitions", type=int, default=None, help="override the trial count"
    )
    sweep.add_argument("--seed", type=int, default=None, help="override the base seed")
    sweep.add_argument(
        "--engine",
        choices=["auto", "compiled", "reference"],
        default=None,
        help="override the execution engine",
    )

    broadcast = subparsers.add_parser("broadcast", help="estimate B(G) and print bounds")
    _add_graph_arguments(broadcast)
    broadcast.add_argument("--repetitions", type=int, default=6)

    info = subparsers.add_parser("graph-info", help="structural properties of a workload graph")
    _add_graph_arguments(info)
    return parser


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True, help="workload name (see `workloads`)")
    parser.add_argument("--size", type=int, required=True, help="target population size")
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["auto", "compiled", "reference"],
        default="auto",
        help="execution engine (results are seed-identical across engines)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "engines":
        return _cmd_engines()
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "elect":
        return _cmd_elect(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "broadcast":
        return _cmd_broadcast(args)
    if args.command == "graph-info":
        return _cmd_graph_info(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _build_graph(args: argparse.Namespace):
    workload = get_workload(args.workload)
    return workload.build(args.size, seed=args.seed)


def _cmd_workloads() -> int:
    rows = []
    for name in available_workloads():
        workload = get_workload(name)
        rows.append({"name": name, "description": workload.description, "regular": workload.regular})
    print(render_table(rows, title="Available workloads"))
    return 0


def _cmd_scenarios() -> int:
    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name)
        rows.append(
            {
                "name": name,
                "workload": scenario.workload,
                "sizes": "/".join(str(s) for s in scenario.sizes),
                "trials": scenario.repetitions,
                "protocols": ",".join(p.builder for p in scenario.protocols),
                "description": scenario.description,
            }
        )
    print(render_table(rows, title="Registered scenarios"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    overrides = {}
    if args.sizes is not None:
        overrides["sizes"] = tuple(args.sizes)
    if args.repetitions is not None:
        overrides["repetitions"] = args.repetitions
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.engine is not None:
        overrides["engine"] = args.engine
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    result = run_scenario(
        scenario,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    for sweep in result.sweeps:
        rows = []
        for size, measurement in zip(sweep.sizes, sweep.measurements):
            rows.append(
                {
                    "size": size,
                    "graph": measurement.graph_name,
                    "n": measurement.n_nodes,
                    "mean_steps": measurement.stabilization_steps.mean,
                    "q90_steps": measurement.stabilization_steps.q90,
                    "success": measurement.success_rate,
                    "states": measurement.max_states_observed,
                }
            )
        try:
            fit = sweep.fit()
            fit_note = f"fitted exponent {fit.exponent:.2f} (R²={fit.r_squared:.3f})"
        except DegenerateSweepError as error:
            fit_note = f"no scaling fit: {error}"
        print(render_table(rows, title=f"{scenario.name} — {sweep.protocol_name}"))
        print(f"  {fit_note}")
        print()
    served = (
        f"{result.cache_hits}/{result.total_units} units from cache, "
        f"{result.executed_units} executed with jobs={result.jobs}"
        if not args.no_cache
        else f"{result.executed_units} units executed with jobs={result.jobs} (cache off)"
    )
    print(f"{served}; wall time {result.wall_time_seconds:.2f}s")
    return 0


def _cmd_engines() -> int:
    from .engine import available_backends

    backends = available_backends()
    rows = [
        {
            "engine": "reference",
            "description": "pure-Python interpreter (semantic reference)",
        },
        {
            "engine": "compiled",
            "description": "table-driven engine; backends: " + ", ".join(backends),
        },
        {
            "engine": "auto",
            "description": "compiled when possible, reference otherwise (default)",
        },
    ]
    print(render_table(rows, title="Execution engines"))
    return 0


def _cmd_elect(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    spec = _PROTOCOL_CHOICES[args.protocol]()
    measurement = measure_protocol_on_graph(
        spec,
        graph,
        repetitions=args.repetitions,
        seed=args.seed,
        max_steps=default_step_budget(graph),
        engine=args.engine,
    )
    print(render_table([measurement.as_dict()], title=f"{spec.name} on {graph.name}"))
    return 0 if measurement.success_rate == 1.0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    measurements = compare_protocols_on_graph(
        default_protocol_specs(),
        graph,
        repetitions=args.repetitions,
        seed=args.seed,
        max_steps=default_step_budget(graph),
        engine=args.engine,
    )
    print(render_comparison(f"Protocol comparison on {graph.name}", measurements))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    group = run_table1_family(
        args.family,
        args.sizes,
        repetitions=args.repetitions,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
    )
    print(group.render())
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    estimate = broadcast_time_estimate(graph, repetitions=args.repetitions, rng=args.seed)
    bounds = broadcast_bounds(graph)
    rows = [
        {
            "graph": graph.name,
            "measured B(G)": estimate.value,
            "lower bound (Lem 12)": bounds.lower,
            "upper (diameter form)": bounds.upper_diameter_form,
            "upper (expansion form)": bounds.upper_expansion_form,
        }
    ]
    print(render_table(rows, title="Broadcast time"))
    return 0


def _cmd_graph_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    rows = [summarize(graph)]
    print(render_table(rows, title="Graph properties"))
    extra = graph_parameters_for(graph, estimate_broadcast=False)
    print()
    print(render_table([extra], title="Table 1 parameters"))
    return 0


if __name__ == "__main__":  # pragma: no cover - direct execution helper
    sys.exit(main())
