"""Isolating covers (Section 6.1) and empirical isolation times.

A ``(K, ℓ)``-cover of a graph ``G`` is a collection ``V_0, ..., V_{K-1}``
of node sets such that (1) the subgraphs induced by the distance-``ℓ``
neighbourhoods ``B_ℓ(V_i)`` are pairwise isomorphic (via isomorphisms
mapping ``V_i`` to ``V_j``), (2) at least two of those neighbourhoods are
disjoint, and (3) the sets cover all of ``V``.  The cover's *isolation
time* ``Y(C)`` is the first step at which some ``V_i`` is influenced by a
node outside ``B_ℓ(V_i)``; a cover is ``t``-isolating when
``Pr[Y(C) >= t] >= 1/2``.

Theorem 34 turns a ``f(n)``-isolating cover into an ``Ω(f(n))`` lower bound
for stable leader election.  This module verifies the structural cover
properties and estimates isolation times by Monte-Carlo simulation of the
influencer dynamics, so the renitent-graph benchmarks can demonstrate the
lower-bound mechanism quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from ..graphs.renitent import RenitentConstruction
from ..propagation.influence import InfluenceProcess


@dataclass(frozen=True)
class Cover:
    """A candidate ``(K, ℓ)``-cover of a graph."""

    graph: Graph
    sets: Tuple[Tuple[int, ...], ...]
    ell: int

    @property
    def k(self) -> int:
        """Number of cover sets ``K``."""
        return len(self.sets)

    def neighbourhoods(self) -> List[frozenset]:
        """The distance-``ℓ`` neighbourhoods ``B_ℓ(V_i)``."""
        return [self.graph.ball_of_set(s, self.ell) for s in self.sets]

    @classmethod
    def from_construction(cls, construction: RenitentConstruction) -> "Cover":
        """Wrap the canonical cover attached to a renitent construction."""
        return cls(
            graph=construction.graph,
            sets=construction.cover_sets,
            ell=construction.ell,
        )


@dataclass(frozen=True)
class CoverCheck:
    """Outcome of the structural checks on a cover."""

    covers_all_nodes: bool
    sets_equal_size: bool
    has_disjoint_pair: bool
    neighbourhoods_isomorphic: Optional[bool]

    @property
    def valid(self) -> bool:
        """All verified properties hold (isomorphism treated as ``True`` if skipped)."""
        iso = True if self.neighbourhoods_isomorphic is None else self.neighbourhoods_isomorphic
        return self.covers_all_nodes and self.sets_equal_size and self.has_disjoint_pair and iso


def check_cover(cover: Cover, check_isomorphism: bool = True, isomorphism_node_limit: int = 400) -> CoverCheck:
    """Verify the three defining properties of a ``(K, ℓ)``-cover.

    The isomorphism check (property 1) uses :mod:`networkx` VF2 on the
    induced neighbourhood subgraphs and is skipped (reported as ``None``)
    when the neighbourhoods exceed ``isomorphism_node_limit`` nodes.
    """
    graph = cover.graph
    union = set()
    sizes = set()
    for node_set in cover.sets:
        union.update(node_set)
        sizes.add(len(node_set))
    covers_all = union == set(range(graph.n_nodes))
    equal_size = len(sizes) == 1

    neighbourhoods = cover.neighbourhoods()
    disjoint = False
    for i in range(len(neighbourhoods)):
        for j in range(i + 1, len(neighbourhoods)):
            if not (neighbourhoods[i] & neighbourhoods[j]):
                disjoint = True
                break
        if disjoint:
            break

    isomorphic: Optional[bool] = None
    if check_isomorphism:
        if all(len(nb) <= isomorphism_node_limit for nb in neighbourhoods):
            isomorphic = _neighbourhoods_isomorphic(graph, neighbourhoods)
    return CoverCheck(
        covers_all_nodes=covers_all,
        sets_equal_size=equal_size,
        has_disjoint_pair=disjoint,
        neighbourhoods_isomorphic=isomorphic,
    )


def _neighbourhoods_isomorphic(graph: Graph, neighbourhoods: Sequence[frozenset]) -> bool:
    import networkx as nx
    from networkx.algorithms import isomorphism

    subgraphs = []
    for nb in neighbourhoods:
        sub, _mapping = graph.induced_subgraph(sorted(nb))
        subgraphs.append(sub.to_networkx())
    reference = subgraphs[0]
    for other in subgraphs[1:]:
        matcher = isomorphism.GraphMatcher(reference, other)
        if not matcher.is_isomorphic():
            return False
    return True


@dataclass(frozen=True)
class IsolationEstimate:
    """Monte-Carlo estimate of a cover's isolation behaviour.

    Attributes
    ----------
    threshold:
        The step count ``t`` the estimate refers to.
    survival_probability:
        Estimated ``Pr[Y(C) >= t]`` — a cover is ``t``-isolating when this
        is at least one half.
    isolation_times:
        Summary of the sampled isolation times ``Y(C)`` (censored samples
        are recorded at the censoring horizon).
    """

    threshold: float
    survival_probability: float
    isolation_times: SummaryStatistics


def estimate_isolation_time(
    cover: Cover,
    threshold: float,
    trials: int = 20,
    rng: RngLike = None,
    horizon_factor: float = 4.0,
) -> IsolationEstimate:
    """Estimate ``Pr[Y(C) >= threshold]`` by simulating the influencer dynamics.

    Each trial runs the influencer process until some cover set is
    influenced from outside its ``ℓ``-neighbourhood, or until
    ``horizon_factor * threshold`` steps have elapsed (censoring).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    generator = as_rng(rng)
    neighbourhoods = cover.neighbourhoods()
    horizon = int(horizon_factor * threshold)
    check_every = max(int(threshold // 50), 1)
    samples: List[float] = []
    survived = 0
    for _ in range(trials):
        process = InfluenceProcess(cover.graph, rng=generator)
        isolation_step: Optional[int] = None
        while process.step < horizon:
            process.advance(min(check_every, horizon - process.step))
            escaped = any(
                process.set_escaped(node_set, allowed)
                for node_set, allowed in zip(cover.sets, neighbourhoods)
            )
            if escaped:
                isolation_step = process.step
                break
        if isolation_step is None:
            isolation_step = horizon
        samples.append(float(isolation_step))
        if isolation_step >= threshold:
            survived += 1
    return IsolationEstimate(
        threshold=float(threshold),
        survival_probability=survived / trials,
        isolation_times=summarize_samples(samples),
    )


def theorem34_lower_bound(isolation_steps: float, survival_probability: float) -> float:
    """The ``Ω(f)`` lower bound implied by an ``f``-isolating cover.

    Theorem 34's proof gives ``E[T] >= (1 - C)/4 · f(n)`` for a constant
    ``C < 1`` depending on ``K``; as a conservative quantitative proxy the
    harness reports ``survival_probability / 4 · isolation_steps``, which is
    what the benchmark compares measured stabilization times against.
    """
    if isolation_steps < 0:
        raise ValueError("isolation_steps must be non-negative")
    if not (0.0 <= survival_probability <= 1.0):
        raise ValueError("survival_probability must lie in [0, 1]")
    return survival_probability / 4.0 * isolation_steps
