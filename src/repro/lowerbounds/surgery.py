"""Surgery-technique ingredients for constant-state protocols (Section 7.2).

The Theorem 46 lower bound argues about *leader-generating sets*: a set of
states ``S ⊆ Λ`` is leader generating when, given enough nodes in each
state of ``S`` on a clique, some finite interaction sequence produces a
node whose output is leader.  The surgery argument shows that a protocol
stabilizing in ``o(n^2)`` expected steps on dense random graphs must reach
configurations where every leader-generating set contains a state of count
below ``2^{|Λ|}`` — and then derives a contradiction.

For the reproduction we implement the computable pieces:

* :func:`leader_generating_sets` — decide, for a concrete constant-state
  protocol, which subsets of its (reachable) state space are leader
  generating, via breadth-first search over capped count-vector
  configurations on a virtual clique (the cap ``2^{|Λ|}`` is the bound from
  Alistarh et al. [4, Lemma A.7] cited by the paper);
* :func:`low_count_states` — the states below the ``2^{|Λ|}`` threshold in
  a configuration;
* :func:`stable_configuration_has_guarded_generators` — the empirical check
  of Lemma 51: in a stable configuration, every leader-generating set must
  intersect the low-count states;
* :func:`find_bottlenecks` — ``k``-bottleneck interactions of a schedule
  (interactions between two states both in count ``<= k``), the quantity
  whose absence drives Lemma 52.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.protocol import LEADER, PopulationProtocol


def reachable_states(protocol: PopulationProtocol, max_states: int = 64) -> FrozenSet[Hashable]:
    """All states producible from the uniform initial configuration on cliques.

    Closure of the initial state under the transition function (both as
    initiator and responder, against every known state).  Constant-state
    protocols only; guarded by ``max_states``.
    """
    initial = protocol.initial_state(None)
    known: Set[Hashable] = {initial}
    frontier = deque([initial])
    while frontier:
        state = frontier.popleft()
        for other in list(known):
            for a, b in ((state, other), (other, state)):
                for produced in protocol.transition(a, b):
                    if produced not in known:
                        known.add(produced)
                        frontier.append(produced)
                        if len(known) > max_states:
                            raise ValueError(
                                f"protocol produces more than {max_states} states; "
                                "surgery analysis targets constant-state protocols"
                            )
    return frozenset(known)


def _counts_key(counts: Dict[Hashable, int], order: Sequence[Hashable]) -> Tuple[int, ...]:
    return tuple(counts.get(state, 0) for state in order)


def can_generate_leader_on_clique(
    protocol: PopulationProtocol,
    source_states: Iterable[Hashable],
    copies_per_state: int,
    max_configurations: int = 250_000,
) -> bool:
    """Whether ``copies_per_state`` nodes of each source state can produce a leader.

    Explores reachable *count vectors* (the clique makes node identity
    irrelevant), capping each count at ``copies_per_state`` donors plus the
    transient excess, and returns ``True`` as soon as a state with output
    ``LEADER`` appears.
    """
    source_list = sorted(set(source_states), key=repr)
    if not source_list:
        return False
    if copies_per_state < 1:
        raise ValueError("copies_per_state must be positive")
    total_nodes = copies_per_state * len(source_list)
    order = source_list + [
        s for s in reachable_states(protocol) if s not in source_list
    ]
    initial_counts = {state: copies_per_state for state in source_list}
    if any(protocol.output(state) == LEADER for state in source_list):
        return True
    start_key = _counts_key(initial_counts, order)
    seen = {start_key}
    frontier = deque([initial_counts])
    while frontier:
        counts = frontier.popleft()
        present = [s for s, c in counts.items() if c > 0]
        for a in present:
            for b in present:
                if a == b and counts[a] < 2:
                    continue
                new_a, new_b = protocol.transition(a, b)
                if new_a == a and new_b == b:
                    continue
                next_counts = dict(counts)
                next_counts[a] -= 1
                next_counts[b] -= 1
                next_counts[new_a] = next_counts.get(new_a, 0) + 1
                next_counts[new_b] = next_counts.get(new_b, 0) + 1
                if protocol.output(new_a) == LEADER or protocol.output(new_b) == LEADER:
                    return True
                for state in (new_a, new_b):
                    if state not in order:
                        order.append(state)
                key = _counts_key(next_counts, order)
                if key in seen:
                    continue
                seen.add(key)
                if len(seen) > max_configurations:
                    raise RuntimeError(
                        "leader-generation search exceeded its configuration budget"
                    )
                frontier.append(next_counts)
    return False


def leader_generating_sets(
    protocol: PopulationProtocol,
    copies_per_state: Optional[int] = None,
    max_set_size: Optional[int] = None,
) -> List[FrozenSet[Hashable]]:
    """All (inclusion-minimal) leader-generating subsets of the reachable states.

    ``copies_per_state`` defaults to ``2^{|Λ|}`` per [4, Lemma A.7]; for the
    6-state token protocol that is 64, which makes the count-vector search
    large, so callers typically pass a small value — by monotonicity a set
    that generates a leader from fewer copies also does from more.
    """
    states = sorted(reachable_states(protocol), key=repr)
    if copies_per_state is None:
        copies_per_state = 2 ** len(states)
    if max_set_size is None:
        max_set_size = len(states)
    generating: List[FrozenSet[Hashable]] = []
    for size in range(1, max_set_size + 1):
        for subset in itertools.combinations(states, size):
            candidate = frozenset(subset)
            if any(existing <= candidate for existing in generating):
                continue
            if can_generate_leader_on_clique(protocol, candidate, copies_per_state):
                generating.append(candidate)
    return generating


def low_count_states(
    state_counts: Counter, state_space_size: int, threshold: Optional[int] = None
) -> FrozenSet[Hashable]:
    """States with count below ``2^{|Λ|}`` (the paper's "low count").

    Includes states with count zero only implicitly: callers should pass
    the full state space separately when absent states matter.
    """
    if threshold is None:
        threshold = 2**state_space_size
    return frozenset(state for state, count in state_counts.items() if count < threshold)


@dataclass(frozen=True)
class GuardedGeneratorReport:
    """Lemma 51's empirical check on one stable configuration."""

    generating_sets: Tuple[FrozenSet[Hashable], ...]
    low_count: FrozenSet[Hashable]
    all_generators_guarded: bool


def stable_configuration_has_guarded_generators(
    protocol: PopulationProtocol,
    final_states: Sequence[Hashable],
    copies_per_state: int = 3,
    threshold: Optional[int] = None,
) -> GuardedGeneratorReport:
    """Check that every leader-generating set touches a low-count state.

    ``final_states`` is the configuration reached by a (stabilized) run.
    States *absent* from the configuration count as low-count.  Lemma 51
    predicts this holds in stable configurations reached quickly on dense
    random graphs; the benchmark measures how often it holds in practice.
    """
    counts = Counter(final_states)
    all_states = reachable_states(protocol)
    if threshold is None:
        threshold = 2 ** len(all_states)
    low = set(low_count_states(counts, len(all_states), threshold))
    low.update(state for state in all_states if counts.get(state, 0) == 0)
    generating = leader_generating_sets(protocol, copies_per_state=copies_per_state)
    guarded = all(bool(gen & low) for gen in generating)
    return GuardedGeneratorReport(
        generating_sets=tuple(generating),
        low_count=frozenset(low),
        all_generators_guarded=guarded,
    )


def find_bottlenecks(
    protocol: PopulationProtocol,
    initial_states: Sequence[Hashable],
    schedule: Sequence[Tuple[int, int]],
    k: int,
) -> List[int]:
    """Steps of the schedule that are ``k``-bottleneck interactions.

    A ``k``-bottleneck is an interaction between two nodes whose states both
    have count at most ``k`` at the moment of the interaction (Section 7.2).
    The Doty–Soloveichik argument, which Lemma 52 extends, shows fast
    protocols must have bottleneck-free executions.
    """
    if k < 1:
        raise ValueError("k must be positive")
    states = list(initial_states)
    counts = Counter(states)
    bottleneck_steps: List[int] = []
    for index, (u, v) in enumerate(schedule, start=1):
        a, b = states[u], states[v]
        if counts[a] <= k and counts[b] <= k:
            bottleneck_steps.append(index)
        new_a, new_b = protocol.transition(a, b)
        counts[a] -= 1
        counts[b] -= 1
        counts[new_a] += 1
        counts[new_b] += 1
        states[u] = new_a
        states[v] = new_b
    return bottleneck_steps
