"""Influencer multigraphs and the unfolding argument (Section 7, Figure 1).

The surgery-style lower bound for dense graphs tracks, for each node ``v``,
the *multigraph of influencers* ``I_t(v)``: the timestamped directed
interactions that could have affected ``v``'s state by step ``t``.  An
interaction is *internal* when both endpoints were already part of the
multigraph; internal interactions create cycles and obstruct the embedding
argument, so Lemma 45 (illustrated by the paper's Figure 1) shows how to
*unfold* one internal interaction at a time — at most doubling the number
of nodes — until the pattern becomes a tree.

This module provides:

* :class:`InfluencerMultigraph` — construction of ``I_t(v)`` from an
  interaction schedule, with internal-interaction counting (Lemma 44's
  measured quantities),
* :func:`unfold_once` / :func:`unfold_to_tree` — the Lemma 45 / Figure 1
  transformation, preserving the influence relation on the root,
* :func:`tree_embeds_in_fresh_nodes` — the Lemma 43-style check that a tree
  of the unfolded pattern's shape embeds into the set of nodes that have
  not interacted yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Graph

TimedEdge = Tuple[int, int, int]  # (initiator, responder, timestamp)


@dataclass
class InfluencerMultigraph:
    """The multigraph of influencers ``I_t(root)``.

    Attributes
    ----------
    root:
        The node whose influencers are tracked.
    nodes:
        All nodes appearing in the multigraph (always contains ``root``).
    edges:
        Timestamped directed interactions ``(initiator, responder, t)`` in
        increasing timestamp order.
    internal_edges:
        The subset of edges whose endpoints were both already present when
        the interaction occurred.
    """

    root: int
    nodes: Set[int] = field(default_factory=set)
    edges: List[TimedEdge] = field(default_factory=list)
    internal_edges: List[TimedEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.nodes.add(self.root)

    @property
    def size(self) -> int:
        """Number of distinct nodes in the multigraph."""
        return len(self.nodes)

    @property
    def internal_interaction_count(self) -> int:
        """Number of internal interactions (cycle-creating edges)."""
        return len(self.internal_edges)

    def is_tree_like(self) -> bool:
        """Whether the pattern has no internal interactions."""
        return not self.internal_edges


def build_influencer_multigraph(
    root: int,
    schedule: Sequence[Tuple[int, int]],
    up_to_step: Optional[int] = None,
) -> InfluencerMultigraph:
    """Construct ``I_t(root)`` from an interaction schedule.

    Follows the reverse-time recurrence of Section 7 (``J_t(v)``): walk the
    schedule backwards from ``up_to_step`` and add every interaction with at
    least one endpoint already in the multigraph.  Timestamps are the
    1-based positions in the schedule, so the result equals the
    forward-time definition ``I_t(v)``.
    """
    if up_to_step is None:
        up_to_step = len(schedule)
    if up_to_step > len(schedule):
        raise ValueError("up_to_step exceeds the schedule length")
    result = InfluencerMultigraph(root=root)
    reversed_edges: List[TimedEdge] = []
    for index in range(up_to_step - 1, -1, -1):
        initiator, responder = schedule[index]
        timestamp = index + 1
        in_initiator = initiator in result.nodes
        in_responder = responder in result.nodes
        if not (in_initiator or in_responder):
            continue
        edge = (initiator, responder, timestamp)
        if in_initiator and in_responder:
            result.internal_edges.append(edge)
        result.nodes.add(initiator)
        result.nodes.add(responder)
        reversed_edges.append(edge)
    result.edges = list(reversed(reversed_edges))
    result.internal_edges.sort(key=lambda e: e[2])
    return result


@dataclass(frozen=True)
class AbstractPattern:
    """A graph-agnostic interaction pattern (the object Lemma 45 rewrites).

    Nodes are abstract labels (integers); edges are timestamped ordered
    pairs.  ``root`` is the node whose final state the pattern determines.
    """

    root: int
    edges: Tuple[TimedEdge, ...]

    @property
    def nodes(self) -> Set[int]:
        result = {self.root}
        for u, v, _t in self.edges:
            result.add(u)
            result.add(v)
        return result

    @property
    def size(self) -> int:
        return len(self.nodes)

    def internal_edges(self) -> List[TimedEdge]:
        """Edges that are *internal* in the reverse-time sense of Section 7.

        Walking the edges from the latest timestamp down towards the root
        (the order in which ``J_t(v)`` is built), an edge is internal when
        both its endpoints have already been reached — such edges create
        cycles in the influencer multigraph.
        """
        seen: Set[int] = {self.root}
        internal: List[TimedEdge] = []
        for u, v, t in sorted(self.edges, key=lambda e: e[2], reverse=True):
            if u in seen and v in seen:
                internal.append((u, v, t))
            seen.add(u)
            seen.add(v)
        internal.sort(key=lambda e: e[2])
        return internal

    def is_tree_like(self) -> bool:
        return not self.internal_edges()

    def undirected_skeleton(self) -> Set[Tuple[int, int]]:
        """The underlying undirected edge set (multiplicities dropped)."""
        return {(min(u, v), max(u, v)) for u, v, _t in self.edges}


def pattern_from_multigraph(multigraph: InfluencerMultigraph) -> AbstractPattern:
    """Forget the concrete node identities' graph context; keep the pattern."""
    return AbstractPattern(root=multigraph.root, edges=tuple(multigraph.edges))


def _influencing_edges(pattern: AbstractPattern, node: int, before: int) -> List[TimedEdge]:
    """Edges with timestamp < ``before`` that (transitively) influence ``node``."""
    ordered = sorted((e for e in pattern.edges if e[2] < before), key=lambda e: e[2], reverse=True)
    influenced: Set[int] = {node}
    chosen: List[TimedEdge] = []
    for u, v, t in ordered:
        if u in influenced or v in influenced:
            chosen.append((u, v, t))
            influenced.add(u)
            influenced.add(v)
    chosen.reverse()
    return chosen


def unfold_once(pattern: AbstractPattern) -> AbstractPattern:
    """Apply one step of the Lemma 45 unfolding (the paper's Figure 1).

    Removes the earliest internal interaction ``(u, w, r)`` and replaces it
    by interactions with fresh copies ``u'``, ``w'`` of the subtrees that
    influenced ``u`` and ``w`` before time ``r``.  The result influences the
    root identically (nodes are anonymous), has at least one internal
    interaction fewer, and at most doubles the node count.
    """
    internal = pattern.internal_edges()
    if not internal:
        return pattern
    u, w, r = internal[0]
    influence_u = _influencing_edges(pattern, u, r)
    influence_w = _influencing_edges(pattern, w, r)

    next_label = max(pattern.nodes) + 1 if pattern.nodes else 1

    def make_copier() -> Dict[int, int]:
        return {}

    def copy_label(mapping: Dict[int, int], node: int) -> int:
        nonlocal next_label
        if node not in mapping:
            mapping[node] = next_label
            next_label += 1
        return mapping[node]

    new_edges: List[TimedEdge] = []
    shift = 2 * r + 2
    for a, b, t in pattern.edges:
        if (a, b, t) == (u, w, r):
            continue
        if t > r:
            new_edges.append((a, b, t + shift))
        else:
            new_edges.append((a, b, t))

    # Copy the influencer trees of u and w with fresh node labels, shifting
    # their timestamps into the (r, 3r) window so all timestamps stay
    # distinct (originals keep t <= r, shifted originals move past 3r+2).
    copy_u_relabel = make_copier()
    for a, b, t in influence_u:
        new_edges.append((copy_label(copy_u_relabel, a), copy_label(copy_u_relabel, b), t + r))
    copy_w_relabel = make_copier()
    for a, b, t in influence_w:
        new_edges.append((copy_label(copy_w_relabel, a), copy_label(copy_w_relabel, b), t + 2 * r))

    u_copy = copy_label(copy_u_relabel, u)
    w_copy = copy_label(copy_w_relabel, w)
    # The two replacement interactions of Figure 1(b): u meets the copy of
    # w's history, and w meets the copy of u's history.
    new_edges.append((u, w_copy, 3 * r + 1))
    new_edges.append((u_copy, w, 3 * r + 2))
    return AbstractPattern(root=pattern.root, edges=tuple(sorted(new_edges, key=lambda e: e[2])))


def unfold_to_tree(pattern: AbstractPattern, max_rounds: int = 64) -> AbstractPattern:
    """Repeatedly unfold until the pattern is tree-like (Lemma 45 applied k times)."""
    current = pattern
    for _ in range(max_rounds):
        if current.is_tree_like():
            return current
        current = unfold_once(current)
    if not current.is_tree_like():
        raise RuntimeError("pattern did not become tree-like within max_rounds")
    return current


def fresh_nodes(schedule: Sequence[Tuple[int, int]], n_nodes: int, up_to_step: int) -> Set[int]:
    """Nodes that have not interacted during the first ``up_to_step`` interactions.

    This is the set ``S(t)`` of Lemma 42/43: the pool in which an unfolded
    leader-generating tree must embed for the Theorem 40 argument.
    """
    touched: Set[int] = set()
    for index in range(min(up_to_step, len(schedule))):
        u, v = schedule[index]
        touched.add(u)
        touched.add(v)
    return set(range(n_nodes)) - touched


def tree_embeds_in_fresh_nodes(
    graph: Graph,
    pattern: AbstractPattern,
    available: Set[int],
) -> Optional[Dict[int, int]]:
    """Greedy BFS embedding of a tree-like pattern into ``available`` nodes.

    Follows the constructive argument of Lemma 43: order the tree by BFS
    from the root and map each node to an unused available neighbour of its
    parent's image.  Returns the embedding or ``None`` when the greedy
    construction gets stuck (which, per Lemma 43, is unlikely on dense
    graphs when ``available`` is large).
    """
    if not pattern.is_tree_like():
        raise ValueError("pattern must be tree-like; call unfold_to_tree first")
    skeleton = pattern.undirected_skeleton()
    adjacency: Dict[int, List[int]] = {}
    for u, v in skeleton:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    adjacency.setdefault(pattern.root, [])

    order: List[int] = []
    parent: Dict[int, Optional[int]] = {pattern.root: None}
    queue = [pattern.root]
    seen = {pattern.root}
    while queue:
        current = queue.pop(0)
        order.append(current)
        for nxt in adjacency.get(current, []):
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = current
                queue.append(nxt)

    usable = set(available)
    embedding: Dict[int, int] = {}
    for tree_node in order:
        if parent[tree_node] is None:
            if not usable:
                return None
            image = min(usable)
        else:
            parent_image = embedding[parent[tree_node]]
            candidates = [
                w for w in graph.neighbors(parent_image) if w in usable
            ]
            if not candidates:
                return None
            image = candidates[0]
        embedding[tree_node] = image
        usable.discard(image)
    return embedding
