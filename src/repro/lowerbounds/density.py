"""Density evolution and influencer growth on dense graphs (Section 7.1).

Two measurable ingredients of the Theorem 40 / Theorem 46 lower bounds:

* **Lemma 41** — for ``t <= c·n·log n`` steps, the influencer set of any
  node stays small (``<= n^ε``) with overwhelming probability on graphs
  with ``m >= λ n^2`` edges.
* **Lemma 48** — starting from the uniform initial configuration, a
  protocol on a dense Erdős–Rényi graph reaches a *fully α-dense*
  configuration (every producible state present in count ``>= α n``, no
  other states) within ``O(n)`` steps with very high probability.
* **Lemma 42 / 43** — a constant fraction of nodes have not interacted at
  all by ``o(n log n)`` steps, and the untouched set contains large trees.

The functions here measure these quantities on concrete runs so the
benchmarks can verify the shape of each lemma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.protocol import PopulationProtocol
from ..core.scheduler import RandomScheduler
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from ..propagation.influence import InfluenceProcess


@dataclass(frozen=True)
class InfluencerGrowthReport:
    """Maximum influencer-set size at a sequence of checkpoints (Lemma 41)."""

    checkpoints: Tuple[int, ...]
    max_influencer_sizes: Tuple[int, ...]

    def max_size_at(self, step: int) -> int:
        """Largest observed ``|I_t(v)|`` at the latest checkpoint ``<= step``."""
        best = 1
        for checkpoint, size in zip(self.checkpoints, self.max_influencer_sizes):
            if checkpoint <= step:
                best = size
        return best


def measure_influencer_growth(
    graph: Graph,
    checkpoints: Sequence[int],
    rng: RngLike = None,
) -> InfluencerGrowthReport:
    """Run the influencer dynamics and record ``max_v |I_t(v)|`` at checkpoints."""
    ordered = sorted(set(int(c) for c in checkpoints))
    if not ordered or ordered[0] < 0:
        raise ValueError("checkpoints must be non-negative and non-empty")
    process = InfluenceProcess(graph, rng=rng)
    sizes: List[int] = []
    for checkpoint in ordered:
        process.advance(checkpoint - process.step)
        sizes.append(max(process.influencer_count(v) for v in range(graph.n_nodes)))
    return InfluencerGrowthReport(
        checkpoints=tuple(ordered), max_influencer_sizes=tuple(sizes)
    )


@dataclass(frozen=True)
class UntouchedNodesReport:
    """Number of nodes that have not interacted, per checkpoint (Lemma 42)."""

    checkpoints: Tuple[int, ...]
    untouched_counts: Tuple[int, ...]


def measure_untouched_nodes(
    graph: Graph,
    checkpoints: Sequence[int],
    rng: RngLike = None,
) -> UntouchedNodesReport:
    """Count nodes with no interactions at each checkpoint."""
    ordered = sorted(set(int(c) for c in checkpoints))
    if not ordered or ordered[0] < 0:
        raise ValueError("checkpoints must be non-negative and non-empty")
    scheduler = RandomScheduler(graph, rng=rng)
    touched = np.zeros(graph.n_nodes, dtype=bool)
    counts: List[int] = []
    step = 0
    for checkpoint in ordered:
        while step < checkpoint:
            batch = min(8192, checkpoint - step)
            initiators, responders = scheduler.next_arrays(batch)
            touched[initiators] = True
            touched[responders] = True
            step += batch
        counts.append(int((~touched).sum()))
    return UntouchedNodesReport(
        checkpoints=tuple(ordered), untouched_counts=tuple(counts)
    )


@dataclass(frozen=True)
class DensityReport:
    """When the execution reached a fully dense configuration (Lemma 48).

    Attributes
    ----------
    producible_states:
        The states the run produced at least once (a lower bound on the
        producible set ``Λ`` of the protocol).
    fully_dense_step:
        First checkpoint at which every producible state had count at least
        ``alpha · n`` (``None`` if never observed within the budget).
    alpha:
        The density threshold used.
    min_density_trace:
        ``(step, min_state_density)`` checkpoints, where the minimum runs
        over the states producible by the protocol that the run had already
        discovered.
    """

    producible_states: Tuple[Hashable, ...]
    fully_dense_step: Optional[int]
    alpha: float
    min_density_trace: Tuple[Tuple[int, float], ...]


def measure_density_evolution(
    protocol: PopulationProtocol,
    graph: Graph,
    alpha: float,
    max_steps: int,
    check_every: Optional[int] = None,
    rng: RngLike = None,
) -> DensityReport:
    """Track state densities of a protocol run on ``graph`` (Lemma 48).

    The protocol is started from its uniform initial configuration; at each
    checkpoint the minimum density over all states *observed so far* is
    recorded, and the first checkpoint at which that minimum is at least
    ``alpha`` (and no unexpected state is present — trivially true since the
    observed set is exactly the states present or previously present) is
    reported as ``fully_dense_step``.
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError("alpha must lie in (0, 1)")
    if max_steps < 1:
        raise ValueError("max_steps must be positive")
    n = graph.n_nodes
    if check_every is None:
        check_every = max(n // 4, 1)
    scheduler = RandomScheduler(graph, rng=rng)
    states: List[Hashable] = [protocol.initial_state(None)] * n
    observed: Set[Hashable] = set(states)
    trace: List[Tuple[int, float]] = []
    fully_dense_step: Optional[int] = None
    step = 0
    while step < max_steps:
        batch = min(check_every, max_steps - step)
        for u, v in scheduler.next_batch(batch):
            new_u, new_v = protocol.transition(states[u], states[v])
            states[u] = new_u
            states[v] = new_v
            observed.add(new_u)
            observed.add(new_v)
        step += batch
        counts: Dict[Hashable, int] = {}
        for s in states:
            counts[s] = counts.get(s, 0) + 1
        min_density = min(counts.get(s, 0) for s in observed) / n
        trace.append((step, min_density))
        if fully_dense_step is None and min_density >= alpha:
            fully_dense_step = step
    return DensityReport(
        producible_states=tuple(sorted(observed, key=repr)),
        fully_dense_step=fully_dense_step,
        alpha=alpha,
        min_density_trace=tuple(trace),
    )


def lemma41_size_bound(n_nodes: int, epsilon: float) -> float:
    """The ``n^ε`` influencer-size bound of Lemma 41."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be positive")
    if not (0.0 < epsilon < 1.0):
        raise ValueError("epsilon must lie in (0, 1)")
    return float(n_nodes) ** epsilon


def lemma42_untouched_bound(n_nodes: int, epsilon: float) -> float:
    """The ``N^{1-ε}`` surviving-untouched-nodes bound of Lemma 42."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be positive")
    if not (0.0 < epsilon <= 1.0):
        raise ValueError("epsilon must lie in (0, 1]")
    return float(n_nodes) ** (1.0 - epsilon)
