"""Distance-k propagation times ``T_k(G)`` (Section 3.2, lower bounds).

``T_k(u)`` is the first step at which the message originating at ``u``
reaches a node at distance exactly ``k``; ``T_k(G) = min_u T_k(u)``.  The
renitent-graph lower bound (Theorem 34) rests on showing that covers stay
isolated — i.e. that ``T_ℓ(G)`` is large — so the harness needs Monte-Carlo
estimates of these quantities to compare against Lemma 13/14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from .influence import distance_k_propagation_steps


@dataclass(frozen=True)
class PropagationTimeEstimate:
    """Estimate of ``T_k(G)`` obtained by minimising over sampled sources."""

    distance: int
    value: float
    per_source: Dict[int, float]
    repetitions: int


def propagation_time_from(
    graph: Graph,
    source: int,
    distance: int,
    repetitions: int = 10,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[SummaryStatistics]:
    """Monte-Carlo estimate of ``E[T_k(source)]``.

    Returns ``None`` when no node lies at the requested distance from the
    source (``T_k(source) = ∞`` in the paper's notation).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_rng(rng)
    samples: List[float] = []
    for _ in range(repetitions):
        steps = distance_k_propagation_steps(
            graph, source, distance, rng=generator, max_steps=max_steps
        )
        if steps is None:
            return None
        samples.append(float(steps))
    return summarize_samples(samples)


def propagation_time_estimate(
    graph: Graph,
    distance: int,
    repetitions: int = 8,
    max_sources: int = 16,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> PropagationTimeEstimate:
    """Estimate ``T_k(G) = min_u T_k(u)`` over all (or sampled) sources.

    Only sources that actually have a node at distance ``k`` contribute;
    if none do, a :class:`ValueError` is raised (``T_k(G) = ∞``).
    """
    generator = as_rng(rng)
    eligible = [
        v
        for v in range(graph.n_nodes)
        if bool((graph.bfs_distances(v) == distance).any())
    ]
    if not eligible:
        raise ValueError(f"no pair of nodes at distance {distance} in {graph.name}")
    if len(eligible) > max_sources:
        chosen = generator.choice(np.array(eligible), size=max_sources, replace=False)
        sources = sorted(int(v) for v in chosen)
    else:
        sources = eligible
    per_source: Dict[int, float] = {}
    for source in sources:
        stats = propagation_time_from(
            graph,
            source,
            distance,
            repetitions=repetitions,
            rng=generator,
            max_steps=max_steps,
        )
        if stats is not None:
            per_source[source] = stats.mean
    if not per_source:
        raise ValueError("no source produced a finite propagation time")
    return PropagationTimeEstimate(
        distance=distance,
        value=min(per_source.values()),
        per_source=per_source,
        repetitions=repetitions,
    )


def empirical_violation_rate(
    graph: Graph,
    distance: int,
    threshold: float,
    trials: int = 50,
    rng: RngLike = None,
    sources: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
) -> float:
    """Fraction of trials where ``T_k(source) < threshold`` (Lemma 14 check).

    Lemma 14 claims this rate is at most ``1/n`` when the threshold is
    ``k·m/(Δ·e^3)`` and ``k >= ln n``; the benchmark compares the measured
    rate against that guarantee.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    generator = as_rng(rng)
    if sources is None:
        eligible = [
            v
            for v in range(graph.n_nodes)
            if bool((graph.bfs_distances(v) == distance).any())
        ]
        if not eligible:
            raise ValueError(f"no node has a distance-{distance} peer in {graph.name}")
        sources = eligible
    violations = 0
    for trial in range(trials):
        source = int(sources[trial % len(sources)])
        steps = distance_k_propagation_steps(
            graph, source, distance, rng=generator, max_steps=max_steps
        )
        if steps is not None and steps < threshold:
            violations += 1
    return violations / trials
