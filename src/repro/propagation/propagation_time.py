"""Distance-k propagation times ``T_k(G)`` (Section 3.2, lower bounds).

``T_k(u)`` is the first step at which the message originating at ``u``
reaches a node at distance exactly ``k``; ``T_k(G) = min_u T_k(u)``.  The
renitent-graph lower bound (Theorem 34) rests on showing that covers stay
isolated — i.e. that ``T_ℓ(G)`` is large — so the harness needs Monte-Carlo
estimates of these quantities to compare against Lemma 13/14.

The repeated measurements run replica-batched: all repetitions (or
violation trials) advance in lockstep on the analytics engine, each with
its own child-seeded stream and a per-replica stop mask marking the
distance-``k`` target set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..analytics.epidemics import run_epidemic_batch
from ..analytics.estimators import DISTANCE_K_TAG
from ..analytics.streams import resolve_base_seed
from ..core.seeds import derive_seed
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from .broadcast import default_broadcast_budget as _default_broadcast_budget


@dataclass(frozen=True)
class PropagationTimeEstimate:
    """Estimate of ``T_k(G)`` obtained by minimising over sampled sources."""

    distance: int
    value: float
    per_source: Dict[int, float]
    repetitions: int


def _distance_targets(graph: Graph, source: int, distance: int) -> np.ndarray:
    return np.flatnonzero(graph.bfs_distances(source) == distance)


def propagation_time_from(
    graph: Graph,
    source: int,
    distance: int,
    repetitions: int = 10,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> Optional[SummaryStatistics]:
    """Monte-Carlo estimate of ``E[T_k(source)]``.

    Returns ``None`` when no node lies at the requested distance from the
    source (``T_k(source) = ∞`` in the paper's notation) or when any
    repetition exhausts its step budget.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    targets = _distance_targets(graph, source, distance)
    if targets.size == 0:
        return None
    if distance == 0:
        return summarize_samples([0.0] * repetitions)
    base = resolve_base_seed(rng)
    if max_steps is None:
        max_steps = _default_broadcast_budget(graph)
    stopmasks = np.zeros((repetitions, graph.n_nodes), dtype=np.uint8)
    stopmasks[:, targets] = 1
    seeds = [
        derive_seed(base, DISTANCE_K_TAG, int(source), t) for t in range(repetitions)
    ]
    steps = run_epidemic_batch(
        graph,
        [int(source)] * repetitions,
        seeds,
        max_steps,
        stopmasks=stopmasks,
        replica_batch=replica_batch,
    )
    if (steps < 0).any():
        return None
    return summarize_samples([float(s) for s in steps])


def propagation_time_estimate(
    graph: Graph,
    distance: int,
    repetitions: int = 8,
    max_sources: int = 16,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> PropagationTimeEstimate:
    """Estimate ``T_k(G) = min_u T_k(u)`` over all (or sampled) sources.

    Only sources that actually have a node at distance ``k`` contribute;
    if none do, a :class:`ValueError` is raised (``T_k(G) = ∞``).
    """
    generator = as_rng(rng)
    eligible = [
        v
        for v in range(graph.n_nodes)
        if bool((graph.bfs_distances(v) == distance).any())
    ]
    if not eligible:
        raise ValueError(f"no pair of nodes at distance {distance} in {graph.name}")
    if len(eligible) > max_sources:
        chosen = generator.choice(np.array(eligible), size=max_sources, replace=False)
        sources = sorted(int(v) for v in chosen)
    else:
        sources = eligible
    per_source: Dict[int, float] = {}
    for source in sources:
        stats = propagation_time_from(
            graph,
            source,
            distance,
            repetitions=repetitions,
            rng=generator,
            max_steps=max_steps,
        )
        if stats is not None:
            per_source[source] = stats.mean
    if not per_source:
        raise ValueError("no source produced a finite propagation time")
    return PropagationTimeEstimate(
        distance=distance,
        value=min(per_source.values()),
        per_source=per_source,
        repetitions=repetitions,
    )


def empirical_violation_rate(
    graph: Graph,
    distance: int,
    threshold: float,
    trials: int = 50,
    rng: RngLike = None,
    sources: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
) -> float:
    """Fraction of trials where ``T_k(source) < threshold`` (Lemma 14 check).

    Lemma 14 claims this rate is at most ``1/n`` when the threshold is
    ``k·m/(Δ·e^3)`` and ``k >= ln n``; the benchmark compares the measured
    rate against that guarantee.  All trials advance in one replica stack,
    trial ``t`` starting at ``sources[t % len(sources)]``.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    base = resolve_base_seed(rng)
    if sources is None:
        eligible = [
            v
            for v in range(graph.n_nodes)
            if bool((graph.bfs_distances(v) == distance).any())
        ]
        if not eligible:
            raise ValueError(f"no node has a distance-{distance} peer in {graph.name}")
        sources = eligible
    if max_steps is None:
        max_steps = _default_broadcast_budget(graph)
    target_cache: Dict[int, np.ndarray] = {}
    trial_sources: List[int] = []
    trial_seeds: List[int] = []
    stopmask_rows: List[np.ndarray] = []
    zero_hits = 0
    for trial in range(trials):
        source = int(sources[trial % len(sources)])
        if source not in target_cache:
            target_cache[source] = _distance_targets(graph, source, distance)
        targets = target_cache[source]
        if targets.size == 0:
            # T_k(source) = ∞: can never beat a finite threshold.
            continue
        if distance == 0:
            zero_hits += 1 if 0 < threshold else 0
            continue
        row = np.zeros(graph.n_nodes, dtype=np.uint8)
        row[targets] = 1
        stopmask_rows.append(row)
        trial_sources.append(source)
        trial_seeds.append(derive_seed(base, DISTANCE_K_TAG, "violation", trial))
    violations = zero_hits
    if trial_sources:
        steps = run_epidemic_batch(
            graph,
            trial_sources,
            trial_seeds,
            max_steps,
            stopmasks=np.asarray(stopmask_rows),
            replica_batch=replica_batch,
        )
        violations += int(((steps >= 0) & (steps < threshold)).sum())
    return violations / trials
