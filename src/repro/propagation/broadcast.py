"""Monte-Carlo estimation of broadcast times (Section 3.2).

The key quantity parameterising the paper's upper bounds is the worst-case
expected broadcast time

    ``B(G) = max_v E[T(v)]``,

where ``T(v)`` is the number of scheduler steps until a one-way epidemic
started at ``v`` has reached every node.  This module estimates ``E[T(v)]``
per source, ``B(G)`` (maximising over all or a sample of sources), and the
full-information time ``T(G) = max_{u,v} T(v, u)``.

The fast protocol of Theorem 24 is non-uniform: it is parameterised by an
estimate of ``B(G)·Δ/m``.  :func:`broadcast_time_estimate` is exactly the
estimator the experiment harness feeds it.

All estimators here run on the replica-batched analytics engine
(:mod:`repro.analytics`): the ``repetitions × sources`` epidemics of one
estimate advance in lockstep, each on a private stream derived from the
base seed, so every sample is a pure function of ``(base seed,
trajectory identity)`` — independent of replica-batch width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..analytics.epidemics import run_influence_batch
from ..analytics.estimators import (
    FULL_INFORMATION_TAG,
    batched_broadcast_samples,
    select_sources,
)
from ..analytics.streams import resolve_base_seed
from ..core.seeds import derive_seed
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dynamics.schedule import TopologySchedule


@dataclass(frozen=True)
class BroadcastTimeEstimate:
    """Estimated worst-case expected broadcast time ``B(G)``.

    Attributes
    ----------
    value:
        The estimate of ``B(G)`` (max over sampled sources of the mean
        broadcast time from that source).
    per_source:
        Mapping from source node to its estimated ``E[T(source)]``.
    repetitions:
        Number of Monte-Carlo repetitions per source.
    sources:
        The sources that were sampled.
    """

    value: float
    per_source: Dict[int, float]
    repetitions: int
    sources: Sequence[int]


def expected_broadcast_time_from(
    graph: Graph,
    source: int,
    repetitions: int = 10,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> SummaryStatistics:
    """Monte-Carlo estimate of ``E[T(source)]`` with summary statistics.

    ``schedule`` estimates the broadcast time over a time-varying
    topology; ``graph`` then names the node universe and supplies the
    default step budget.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if graph.n_nodes == 1:
        return summarize_samples([0.0] * repetitions)
    base = resolve_base_seed(rng)
    if max_steps is None:
        max_steps = _budget(graph)
    samples = batched_broadcast_samples(
        graph,
        [source],
        repetitions,
        base,
        max_steps,
        replica_batch=replica_batch,
        schedule=schedule,
    )[int(source)]
    return summarize_samples(samples.tolist())


def broadcast_time_estimate(
    graph: Graph,
    repetitions: int = 8,
    max_sources: Optional[int] = None,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> BroadcastTimeEstimate:
    """Estimate ``B(G) = max_v E[T(v)]``.

    For graphs with at most ``max_sources`` nodes every node is used as a
    source; otherwise a degree-stratified sample of sources is used (the
    maximiser of ``E[T(v)]`` tends to be a low-degree, peripheral node, so
    the sample always includes the minimum-degree and maximum-eccentricity
    nodes).  All ``sources × repetitions`` epidemics run in one replica
    stack; ``replica_batch`` caps the stack width without changing any
    sampled value.

    ``schedule`` estimates the dynamic-topology analogue of ``B(G)``:
    epidemics spread over the epoch graph active at each step, with all
    trajectories crossing epoch switches in lockstep.  Source selection
    and the default budget still use ``graph`` (the node universe).
    """
    n = graph.n_nodes
    if n == 1:
        return BroadcastTimeEstimate(value=0.0, per_source={0: 0.0}, repetitions=0, sources=(0,))
    base = resolve_base_seed(rng)
    if max_sources is None:
        max_sources = 24
    sources = select_sources(graph, max_sources, base)
    if max_steps is None:
        max_steps = _budget(graph)
    by_source = batched_broadcast_samples(
        graph,
        sources,
        repetitions,
        base,
        max_steps,
        replica_batch=replica_batch,
        schedule=schedule,
    )
    per_source = {source: float(samples.mean()) for source, samples in by_source.items()}
    value = max(per_source.values())
    return BroadcastTimeEstimate(
        value=value, per_source=per_source, repetitions=repetitions, sources=tuple(sources)
    )


def full_information_time(
    graph: Graph,
    repetitions: int = 5,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
    replica_batch: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
) -> SummaryStatistics:
    """Monte-Carlo estimate of ``T(G)``: all nodes influenced by all nodes.

    ``T(G) >= T(v)`` for every source, so ``E[T(G)] >= B(G)``; Lemmas 7–9
    bound exactly this quantity.  The ``repetitions`` influence processes
    run replica-batched with packed-bitset influencer sets.  ``schedule``
    runs them over a time-varying topology (lockstep epoch switches, as
    in :func:`broadcast_time_estimate`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    base = resolve_base_seed(rng)
    if max_steps is None:
        max_steps = _budget(graph)
    seeds = [derive_seed(base, FULL_INFORMATION_TAG, t) for t in range(repetitions)]
    steps = run_influence_batch(
        graph, seeds, max_steps, replica_batch=replica_batch, schedule=schedule
    )
    if (steps < 0).any():
        raise RuntimeError(
            "full-information dissemination did not finish within budget"
        )
    return summarize_samples([float(s) for s in steps])


def default_broadcast_budget(graph: Graph) -> int:
    """The estimators' default step budget (Theorem 6 bound with slack)."""
    n = graph.n_nodes
    m = graph.n_edges
    d = graph.diameter()
    return int(20 * m * (6 * math.log(max(n, 2)) + d)) + 1000


_budget = default_broadcast_budget
