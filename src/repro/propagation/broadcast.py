"""Monte-Carlo estimation of broadcast times (Section 3.2).

The key quantity parameterising the paper's upper bounds is the worst-case
expected broadcast time

    ``B(G) = max_v E[T(v)]``,

where ``T(v)`` is the number of scheduler steps until a one-way epidemic
started at ``v`` has reached every node.  This module estimates ``E[T(v)]``
per source, ``B(G)`` (maximising over all or a sample of sources), and the
full-information time ``T(G) = max_{u,v} T(v, u)``.

The fast protocol of Theorem 24 is non-uniform: it is parameterised by an
estimate of ``B(G)·Δ/m``.  :func:`broadcast_time_estimate` is exactly the
estimator the experiment harness feeds it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from .influence import InfluenceProcess, single_source_broadcast_steps


@dataclass(frozen=True)
class BroadcastTimeEstimate:
    """Estimated worst-case expected broadcast time ``B(G)``.

    Attributes
    ----------
    value:
        The estimate of ``B(G)`` (max over sampled sources of the mean
        broadcast time from that source).
    per_source:
        Mapping from source node to its estimated ``E[T(source)]``.
    repetitions:
        Number of Monte-Carlo repetitions per source.
    sources:
        The sources that were sampled.
    """

    value: float
    per_source: Dict[int, float]
    repetitions: int
    sources: Sequence[int]


def expected_broadcast_time_from(
    graph: Graph,
    source: int,
    repetitions: int = 10,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> SummaryStatistics:
    """Monte-Carlo estimate of ``E[T(source)]`` with summary statistics."""
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_rng(rng)
    samples: List[float] = []
    for _ in range(repetitions):
        steps = single_source_broadcast_steps(
            graph, source, rng=generator, max_steps=max_steps
        )
        if steps is None:
            raise RuntimeError(
                "broadcast did not complete within the step budget; "
                "increase max_steps"
            )
        samples.append(float(steps))
    return summarize_samples(samples)


def broadcast_time_estimate(
    graph: Graph,
    repetitions: int = 8,
    max_sources: Optional[int] = None,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> BroadcastTimeEstimate:
    """Estimate ``B(G) = max_v E[T(v)]``.

    For graphs with at most ``max_sources`` nodes every node is used as a
    source; otherwise a degree-stratified sample of sources is used (the
    maximiser of ``E[T(v)]`` tends to be a low-degree, peripheral node, so
    the sample always includes the minimum-degree and maximum-eccentricity
    nodes).
    """
    n = graph.n_nodes
    if n == 1:
        return BroadcastTimeEstimate(value=0.0, per_source={0: 0.0}, repetitions=0, sources=(0,))
    generator = as_rng(rng)
    if max_sources is None:
        max_sources = 24
    if n <= max_sources:
        sources = list(range(n))
    else:
        sources = _stratified_sources(graph, max_sources, generator)
    per_source: Dict[int, float] = {}
    for source in sources:
        stats = expected_broadcast_time_from(
            graph, source, repetitions=repetitions, rng=generator, max_steps=max_steps
        )
        per_source[source] = stats.mean
    value = max(per_source.values())
    return BroadcastTimeEstimate(
        value=value, per_source=per_source, repetitions=repetitions, sources=tuple(sources)
    )


def _stratified_sources(graph: Graph, count: int, rng: np.random.Generator) -> List[int]:
    degrees = graph.degrees
    eccentricities = graph.eccentricities()
    forced = {
        int(np.argmin(degrees)),
        int(np.argmax(degrees)),
        int(np.argmax(eccentricities)),
    }
    remaining = [v for v in range(graph.n_nodes) if v not in forced]
    extra_count = max(count - len(forced), 0)
    extra = (
        rng.choice(remaining, size=min(extra_count, len(remaining)), replace=False).tolist()
        if remaining and extra_count
        else []
    )
    return sorted(forced | set(int(v) for v in extra))


def full_information_time(
    graph: Graph,
    repetitions: int = 5,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> SummaryStatistics:
    """Monte-Carlo estimate of ``T(G)``: all nodes influenced by all nodes.

    ``T(G) >= T(v)`` for every source, so ``E[T(G)] >= B(G)``; Lemmas 7–9
    bound exactly this quantity.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_rng(rng)
    if max_steps is None:
        max_steps = _budget(graph)
    samples: List[float] = []
    for _ in range(repetitions):
        process = InfluenceProcess(graph, rng=generator)
        steps = process.run_until_full(max_steps=max_steps)
        if steps is None:
            raise RuntimeError(
                "full-information dissemination did not finish within budget"
            )
        samples.append(float(steps))
    return summarize_samples(samples)


def _budget(graph: Graph) -> int:
    n = graph.n_nodes
    m = graph.n_edges
    d = graph.diameter()
    return int(20 * m * (6 * math.log(max(n, 2)) + d)) + 1000
