"""Influencer-set dynamics ("one-way epidemics", Section 3.2).

Each node starts out holding a unique message; whenever two nodes interact
they exchange every message they have seen.  The set of *influencers*
``I_t(v)`` collects the nodes whose initial state could, in principle, have
affected ``v``'s state after ``t`` steps.  These dynamics drive both the
upper bounds (broadcast-based protocols) and the lower bounds (isolating
covers, Lemma 41) of the paper.

Implementation note: influencer sets are stored as Python integers used as
bitsets, so the per-interaction union is a single ``|`` of two big ints and
simulating the full all-pairs process is quadratic only in memory-touched
words, not in Python-level loop iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike
from ..core.scheduler import RandomScheduler


@dataclass
class InfluenceSnapshot:
    """State of the influencer dynamics after a number of steps.

    Attributes
    ----------
    step:
        Number of interactions executed.
    influencer_bitsets:
        ``influencer_bitsets[v]`` is a bitmask whose bit ``u`` is set iff
        ``u ∈ I_step(v)``.
    """

    step: int
    influencer_bitsets: List[int]

    def influencers(self, node: int) -> frozenset:
        """The set ``I_t(node)`` as a frozenset of node ids."""
        mask = self.influencer_bitsets[node]
        result = []
        index = 0
        while mask:
            if mask & 1:
                result.append(index)
            mask >>= 1
            index += 1
        return frozenset(result)

    def influencer_count(self, node: int) -> int:
        """``|I_t(node)|``."""
        return int(self.influencer_bitsets[node].bit_count())


class InfluenceProcess:
    """Simulates the influencer-set dynamics on a graph.

    Parameters
    ----------
    graph:
        Interaction graph.
    rng:
        Seed or generator for the scheduler.
    track_nodes:
        If given, only these nodes' influencer sets are updated as
        *receivers*; all nodes still spread information.  (The lower-bound
        experiments only care about ``I_t(V_i)`` for cover sets.)
    """

    def __init__(
        self,
        graph: Graph,
        rng: RngLike = None,
        track_nodes: Optional[Sequence[int]] = None,
    ) -> None:
        self.graph = graph
        self._scheduler = RandomScheduler(graph, rng=rng)
        self._bitsets: List[int] = [1 << v for v in range(graph.n_nodes)]
        self._step = 0
        self._tracked = None if track_nodes is None else frozenset(int(v) for v in track_nodes)

    @property
    def step(self) -> int:
        """Number of interactions executed so far."""
        return self._step

    def snapshot(self) -> InfluenceSnapshot:
        """A copy of the current influencer sets."""
        return InfluenceSnapshot(step=self._step, influencer_bitsets=list(self._bitsets))

    def advance(self, steps: int) -> None:
        """Run the dynamics for ``steps`` further interactions."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        bitsets = self._bitsets
        remaining = steps
        while remaining > 0:
            batch = min(remaining, 8192)
            for u, v in self._scheduler.next_batch(batch):
                merged = bitsets[u] | bitsets[v]
                bitsets[u] = merged
                bitsets[v] = merged
            remaining -= batch
            self._step += batch

    def run_until_full(self, max_steps: int) -> Optional[int]:
        """Run until every node is influenced by every other node.

        Returns the step ``T(G)`` at which this first happens, or ``None``
        if ``max_steps`` is exhausted first.  A count of fully informed
        nodes is maintained incrementally (nodes never lose fullness), so
        each improving merge costs O(1) extra work instead of an O(n)
        rescan of every bitset.
        """
        n = self.graph.n_nodes
        full_mask = (1 << n) - 1
        bitsets = self._bitsets
        full_count = sum(1 for b in bitsets if b == full_mask)
        if full_count == n:
            return self._step
        while self._step < max_steps:
            batch = min(4096, max_steps - self._step)
            interactions = self._scheduler.next_batch(batch)
            for offset, (u, v) in enumerate(interactions, start=1):
                merged = bitsets[u] | bitsets[v]
                if merged == full_mask:
                    full_count += (bitsets[u] != full_mask) + (bitsets[v] != full_mask)
                bitsets[u] = merged
                bitsets[v] = merged
                if full_count == n:
                    self._step += offset
                    return self._step
            self._step += batch
        return None

    def influencer_count(self, node: int) -> int:
        """Current ``|I_t(node)|``."""
        return int(self._bitsets[node].bit_count())

    def set_escaped(self, node_set: Sequence[int], allowed: Sequence[int]) -> bool:
        """Whether any node in ``node_set`` is influenced by a node outside ``allowed``.

        This is the isolation-violation event ``I_t(V_i) \\ B_ℓ(V_i) ≠ ∅``
        used to measure isolation times of covers (Section 6.1).
        """
        allowed_mask = 0
        for v in allowed:
            allowed_mask |= 1 << int(v)
        for v in node_set:
            if self._bitsets[int(v)] & ~allowed_mask:
                return True
        return False


def single_source_broadcast_steps(
    graph: Graph,
    source: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until a broadcast from ``source`` reaches every node (``T(source)``).

    Unlike the all-pairs process, a single-source epidemic only needs one
    boolean per node, so this is the workhorse of the ``B(G)`` estimator.
    Runs as a width-1 stack of the replica-batched engine
    (:mod:`repro.analytics.epidemics`) on the canonical stream of ``rng``;
    returns ``None`` if ``max_steps`` is exhausted.
    """
    n = graph.n_nodes
    if not (0 <= source < n):
        raise ValueError("source out of range")
    if n == 1:
        return 0
    if max_steps is None:
        max_steps = _default_broadcast_budget(graph)
    from ..analytics.epidemics import run_single_epidemic
    from ..analytics.streams import TrajectoryStream

    return run_single_epidemic(graph, source, TrajectoryStream(graph, rng), max_steps)


def distance_k_propagation_steps(
    graph: Graph,
    source: int,
    distance: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until the message from ``source`` reaches some node at the given distance.

    This is ``T_k(source)`` from Section 3.2.  Returns ``None`` when no node
    is at that distance, or when the budget is exhausted.  Shares the
    engine — and for a given seed the exact interaction schedule — with
    :func:`single_source_broadcast_steps`, so with the same ``rng`` seed a
    distance-``k`` hit can never come later than the full broadcast.
    """
    n = graph.n_nodes
    distances = graph.bfs_distances(source)
    targets = np.flatnonzero(distances == distance)
    if targets.size == 0:
        return None
    if distance == 0:
        return 0
    if max_steps is None:
        max_steps = _default_broadcast_budget(graph)
    from ..analytics.epidemics import run_single_epidemic
    from ..analytics.streams import TrajectoryStream

    stopmask = np.zeros(n, dtype=np.uint8)
    stopmask[targets] = 1
    return run_single_epidemic(
        graph, source, TrajectoryStream(graph, rng), max_steps, stopmask=stopmask
    )


def _default_broadcast_budget(graph: Graph) -> int:
    # One budget for every epidemic estimator; the formula lives with the
    # B(G) estimators in repro.propagation.broadcast (lazy import: this
    # module loads before broadcast in the package __init__).
    from .broadcast import default_broadcast_budget

    return default_broadcast_budget(graph)
