"""Node-sampling ("push–pull") dynamics for comparison (Section 3.1).

Section 3.1 of the paper contrasts the population model — where the
scheduler samples an *edge* uniformly at random — with the classical
asynchronous rumour-spreading models, where a *node* activates (at unit
rate, or uniformly per step) and then contacts a uniformly random
neighbour.  On regular graphs the two give the same interaction
distribution, but on non-regular graphs they differ: in the population
model high-degree nodes interact more often, whereas in node-sampling
dynamics every node is activated equally often.

This module implements the discrete-time node-sampling dynamics so the
difference can be measured directly (it is the reason the paper's
clock/tournament machinery is biased towards high-degree nodes):

* :class:`NodeSamplingScheduler` — a drop-in scheduler that picks a uniform
  node as initiator and a uniform neighbour as responder,
* :func:`node_sampling_broadcast_steps` — single-source epidemic time under
  node sampling,
* :func:`compare_broadcast_dynamics` — measured edge-sampling vs
  node-sampling broadcast times on the same graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.estimators import SummaryStatistics, summarize_samples
from ..core.scheduler import Interaction, Scheduler
from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng


class NodeSamplingScheduler(Scheduler):
    """Scheduler for the node-sampling (asynchronous push–pull) dynamics.

    In every step a node is chosen uniformly at random to be the initiator
    and one of its neighbours, uniformly at random, to be the responder.
    On ``Δ``-regular graphs the induced distribution over ordered pairs is
    identical to the population model's; on irregular graphs it is not.
    """

    def __init__(self, graph: Graph, rng: RngLike = None, batch_size: int = 65536) -> None:
        if graph.n_edges == 0:
            raise ValueError("cannot schedule interactions on an edgeless graph")
        if graph.min_degree == 0:
            raise ValueError("every node must have at least one neighbour")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._graph = graph
        self._rng = as_rng(rng)
        self._batch_size = int(batch_size)
        self._neighbors = [np.asarray(graph.neighbors(v), dtype=np.int64) for v in graph.nodes]
        self._buffer: List[Interaction] = []
        self._cursor = 0
        self._steps_emitted = 0

    @property
    def graph(self) -> Graph:
        """The interaction graph being scheduled."""
        return self._graph

    @property
    def steps_emitted(self) -> int:
        """Total number of interactions handed out so far."""
        return self._steps_emitted

    def _refill(self, minimum: int) -> None:
        size = max(self._batch_size, minimum)
        initiators = self._rng.integers(0, self._graph.n_nodes, size=size)
        picks = self._rng.random(size)
        buffer: List[Interaction] = []
        for initiator, pick in zip(initiators.tolist(), picks.tolist()):
            neighbors = self._neighbors[initiator]
            responder = int(neighbors[int(pick * neighbors.shape[0])])
            buffer.append((initiator, responder))
        self._buffer = buffer
        self._cursor = 0

    def next_interaction(self) -> Interaction:
        if self._cursor >= len(self._buffer):
            self._refill(1)
        interaction = self._buffer[self._cursor]
        self._cursor += 1
        self._steps_emitted += 1
        return interaction

    def next_batch(self, size: int) -> List[Interaction]:
        if size < 0:
            raise ValueError("batch size must be non-negative")
        result: List[Interaction] = []
        remaining = size
        while remaining > 0:
            available = len(self._buffer) - self._cursor
            if available == 0:
                self._refill(remaining)
                available = len(self._buffer)
            take = min(available, remaining)
            result.extend(self._buffer[self._cursor : self._cursor + take])
            self._cursor += take
            remaining -= take
        self._steps_emitted += size
        return result


def node_sampling_broadcast_steps(
    graph: Graph,
    source: int,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps until a broadcast from ``source`` informs every node under node sampling.

    Mirrors :func:`repro.propagation.influence.single_source_broadcast_steps`
    but drives the epidemic with :class:`NodeSamplingScheduler`.
    """
    n = graph.n_nodes
    if not (0 <= source < n):
        raise ValueError("source out of range")
    if n == 1:
        return 0
    if max_steps is None:
        import math

        max_steps = int(40 * n * (graph.diameter() + 6 * math.log(max(n, 2)))) + 1000
    scheduler = NodeSamplingScheduler(graph, rng=rng)
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_count = 1
    step = 0
    while step < max_steps:
        batch = min(8192, max_steps - step)
        for u, v in scheduler.next_batch(batch):
            step += 1
            iu = informed[u]
            iv = informed[v]
            if iu != iv:
                informed[v if iu else u] = True
                informed_count += 1
                if informed_count == n:
                    return step
    return None


@dataclass(frozen=True)
class DynamicsComparison:
    """Broadcast times under the two schedulers on the same graph.

    Attributes
    ----------
    edge_sampling:
        Summary of single-source broadcast times in the population model.
    node_sampling:
        Summary under node-sampling dynamics.
    steps_ratio:
        ``edge_sampling.mean / node_sampling.mean`` — close to 1 on regular
        graphs, typically larger than 1 on graphs with strong degree
        imbalance when the source is a low-degree node (its activation rate
        in the population model is ``deg(v)·/m`` per step vs ``1/n`` under
        node sampling).
    """

    edge_sampling: SummaryStatistics
    node_sampling: SummaryStatistics
    steps_ratio: float


def compare_broadcast_dynamics(
    graph: Graph,
    source: int,
    repetitions: int = 10,
    rng: RngLike = None,
) -> DynamicsComparison:
    """Measure edge-sampling vs node-sampling broadcast times from ``source``."""
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    from .influence import single_source_broadcast_steps

    generator = as_rng(rng)
    edge_samples: List[float] = []
    node_samples: List[float] = []
    for _ in range(repetitions):
        edge_steps = single_source_broadcast_steps(graph, source, rng=generator)
        node_steps = node_sampling_broadcast_steps(graph, source, rng=generator)
        if edge_steps is None or node_steps is None:
            raise RuntimeError("broadcast did not finish within its budget")
        edge_samples.append(float(edge_steps))
        node_samples.append(float(node_steps))
    edge_summary = summarize_samples(edge_samples)
    node_summary = summarize_samples(node_samples)
    return DynamicsComparison(
        edge_sampling=edge_summary,
        node_sampling=node_summary,
        steps_ratio=edge_summary.mean / node_summary.mean,
    )


def interaction_rate_imbalance(graph: Graph) -> float:
    """Ratio of max to min per-node interaction probability in the population model.

    A node of degree ``d`` is involved in a step with probability ``d/m``;
    the imbalance ``Δ/δ`` quantifies how far the graph is from the regular
    case where the two dynamics coincide.
    """
    if graph.min_degree == 0:
        raise ValueError("graph has an isolated node")
    return graph.max_degree / graph.min_degree
