"""Analytical bounds on broadcast and propagation times (Section 3).

These functions evaluate the paper's formulas so benchmarks can print
"paper bound" next to "measured" columns:

* Theorem 6 upper bounds: ``B(G) ∈ O(m·(ln n + D))`` (Lemma 8) and
  ``B(G) ∈ O(m·log n / β)`` (Lemma 10),
* Lemma 12 lower bound: ``B(G) >= (m/Δ)·ln(n-1)``,
* Lemma 14 propagation lower bound:
  ``Pr[T_k(G) < km/(Δ e^3)] <= 1/n`` for ``k >= ln n``,
* Theorem 15: ``B(G) ∈ Θ(n·max{D, log n})`` for bounded-degree graphs.

Constant factors follow the statements of the lemmas (e.g. Lemma 8 uses
``max{6 ln n, D} + 2``); where the paper leaves an unspecified constant
(Lemma 10's ``λ_0``) the documented choice is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..graphs.graph import Graph
from ..graphs.properties import edge_expansion_estimate


@dataclass(frozen=True)
class BroadcastBounds:
    """Analytic lower and upper bounds on ``B(G)`` for a specific graph."""

    lower: float
    upper_diameter_form: float
    upper_expansion_form: Optional[float]

    @property
    def upper(self) -> float:
        """The tighter of the two upper bounds."""
        candidates = [self.upper_diameter_form]
        if self.upper_expansion_form is not None:
            candidates.append(self.upper_expansion_form)
        return min(candidates)


def broadcast_upper_bound_diameter(graph: Graph) -> float:
    """Lemma 8: ``B(G) <= m·max{6 ln n, D} + 2``."""
    n = graph.n_nodes
    if n <= 1:
        return 0.0
    m = graph.n_edges
    d = graph.diameter()
    return m * max(6.0 * math.log(n), float(d)) + 2.0


def broadcast_upper_bound_expansion(graph: Graph, expansion: Optional[float] = None) -> Optional[float]:
    """Lemma 10: ``B(G) <= 2 λ_0 m log n / β + 2`` with ``λ_0 = 4``.

    The paper only requires ``λ_0 >= 2`` with ``λ - e - ln λ >= λ/2``;
    ``λ_0 = 4`` satisfies this.  Returns ``None`` when β is zero (edgeless
    or disconnected inputs used in tests).
    """
    n = graph.n_nodes
    if n <= 1:
        return 0.0
    if expansion is None:
        expansion = edge_expansion_estimate(graph).value
    if expansion <= 0:
        return None
    lambda_0 = 4.0
    return 2.0 * lambda_0 * graph.n_edges * math.log(n) / expansion + 2.0


def broadcast_lower_bound(graph: Graph) -> float:
    """Lemma 12: ``B(G) >= (m / Δ)·ln(n - 1)``."""
    n = graph.n_nodes
    if n <= 2:
        return 0.0
    return graph.n_edges / graph.max_degree * math.log(n - 1)


def broadcast_bounds(graph: Graph, expansion: Optional[float] = None) -> BroadcastBounds:
    """All Theorem 6 / Lemma 12 bounds packaged together."""
    return BroadcastBounds(
        lower=broadcast_lower_bound(graph),
        upper_diameter_form=broadcast_upper_bound_diameter(graph),
        upper_expansion_form=broadcast_upper_bound_expansion(graph, expansion),
    )


def propagation_lower_bound_threshold(graph: Graph, distance: int) -> float:
    """Lemma 14: the threshold ``k·m / (Δ·e^3)`` below which ``T_k(G)`` is unlikely.

    For ``k >= ln n`` the probability that the distance-``k`` propagation
    time falls below this threshold is at most ``1/n``.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    return distance * graph.n_edges / (graph.max_degree * math.exp(3.0))


def bounded_degree_broadcast_order(graph: Graph) -> float:
    """Theorem 15 shape: ``n · max{D, ln n}`` for bounded-degree graphs."""
    n = graph.n_nodes
    if n <= 1:
        return 0.0
    return n * max(float(graph.diameter()), math.log(n))


def trivial_broadcast_lower_bound(graph: Graph) -> float:
    """Every node must interact at least once: ``T(G) >= n/2``."""
    return graph.n_nodes / 2.0


def dense_random_graph_broadcast_order(n: int) -> float:
    """Lemma 11 shape: ``B(G) ∈ O(n log n)`` w.h.p. for dense ``G(n, p)``."""
    if n <= 1:
        return 0.0
    return n * math.log(n)
