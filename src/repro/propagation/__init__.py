"""Information propagation in the population model (Section 3 of the paper)."""

from .bounds import (
    BroadcastBounds,
    bounded_degree_broadcast_order,
    broadcast_bounds,
    broadcast_lower_bound,
    broadcast_upper_bound_diameter,
    broadcast_upper_bound_expansion,
    dense_random_graph_broadcast_order,
    propagation_lower_bound_threshold,
    trivial_broadcast_lower_bound,
)
from .broadcast import (
    BroadcastTimeEstimate,
    broadcast_time_estimate,
    expected_broadcast_time_from,
    full_information_time,
)
from .node_dynamics import (
    DynamicsComparison,
    NodeSamplingScheduler,
    compare_broadcast_dynamics,
    interaction_rate_imbalance,
    node_sampling_broadcast_steps,
)
from .influence import (
    InfluenceProcess,
    InfluenceSnapshot,
    distance_k_propagation_steps,
    single_source_broadcast_steps,
)
from .propagation_time import (
    PropagationTimeEstimate,
    empirical_violation_rate,
    propagation_time_estimate,
    propagation_time_from,
)

__all__ = [
    "BroadcastBounds",
    "DynamicsComparison",
    "NodeSamplingScheduler",
    "compare_broadcast_dynamics",
    "interaction_rate_imbalance",
    "node_sampling_broadcast_steps",
    "BroadcastTimeEstimate",
    "InfluenceProcess",
    "InfluenceSnapshot",
    "PropagationTimeEstimate",
    "bounded_degree_broadcast_order",
    "broadcast_bounds",
    "broadcast_lower_bound",
    "broadcast_time_estimate",
    "broadcast_upper_bound_diameter",
    "broadcast_upper_bound_expansion",
    "dense_random_graph_broadcast_order",
    "distance_k_propagation_steps",
    "empirical_violation_rate",
    "expected_broadcast_time_from",
    "full_information_time",
    "propagation_lower_bound_threshold",
    "propagation_time_estimate",
    "propagation_time_from",
    "single_source_broadcast_steps",
    "trivial_broadcast_lower_bound",
]
