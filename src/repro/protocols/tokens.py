"""The 6-state token-based leader-election protocol (Theorem 16).

This is the constant-state protocol of Beauquier, Blanchard and Burman
[OPODIS 2013], used by the paper both as the constant-state baseline of
Table 1 and as the always-correct backup embedded in the faster protocols.

Protocol sketch (Section 4.1):

* every leader candidate starts holding a *black* token;
* on every interaction the two nodes swap their tokens;
* when two black tokens meet, one is recoloured *white*;
* when a candidate holds a white token, it becomes a follower and removes
  the token from the system.

Node states are pairs ``(role, token)`` with ``role ∈ {candidate,
follower}`` and ``token ∈ {none, black, white}`` — exactly 6 states.

Invariant (used by the stability certificate and checked by property
tests): ``#candidates = #black + #white`` and ``#black >= 1`` in every
reachable configuration.  The configuration with one black token and no
white tokens is therefore correct (a single candidate) and stable (white
tokens can no longer be created, so the last candidate can never be
demoted).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..core.protocol import FOLLOWER, LEADER, LeaderElectionProtocol

# Roles
CANDIDATE = "C"
FOLLOWER_ROLE = "F"
# Tokens
NO_TOKEN = "-"
BLACK = "B"
WHITE = "W"

TokenState = Tuple[str, str]

#: The six states of the protocol, for reference and tests.
ALL_TOKEN_STATES: Tuple[TokenState, ...] = (
    (CANDIDATE, NO_TOKEN),
    (CANDIDATE, BLACK),
    (CANDIDATE, WHITE),
    (FOLLOWER_ROLE, NO_TOKEN),
    (FOLLOWER_ROLE, BLACK),
    (FOLLOWER_ROLE, WHITE),
)


def token_initial_state(is_candidate: bool) -> TokenState:
    """``init(leader)`` / ``init(follower)`` of the token protocol.

    A candidate starts holding a fresh black token; a follower starts with
    no token.
    """
    if is_candidate:
        return (CANDIDATE, BLACK)
    return (FOLLOWER_ROLE, NO_TOKEN)


def token_transition(initiator: TokenState, responder: TokenState) -> Tuple[TokenState, TokenState]:
    """One interaction of the token protocol.

    The steps are applied in sequence: swap tokens, resolve black–black
    meetings (the responder's token is whitened), then demote any candidate
    left holding a white token (removing that token).
    """
    role_a, token_a = initiator
    role_b, token_b = responder
    # 1. Swap tokens.
    token_a, token_b = token_b, token_a
    # 2. Two black tokens meet: one of them turns white.
    if token_a == BLACK and token_b == BLACK:
        token_b = WHITE
    # 3. A candidate holding a white token becomes a follower; the white
    #    token leaves the system.
    if role_a == CANDIDATE and token_a == WHITE:
        role_a, token_a = FOLLOWER_ROLE, NO_TOKEN
    if role_b == CANDIDATE and token_b == WHITE:
        role_b, token_b = FOLLOWER_ROLE, NO_TOKEN
    return (role_a, token_a), (role_b, token_b)


def count_tokens(states: Sequence[TokenState]) -> Tuple[int, int, int]:
    """Return ``(#candidates, #black, #white)`` for a token-state sequence."""
    candidates = blacks = whites = 0
    for role, token in states:
        if role == CANDIDATE:
            candidates += 1
        if token == BLACK:
            blacks += 1
        elif token == WHITE:
            whites += 1
    return candidates, blacks, whites


def token_states_stable(states: Sequence[TokenState]) -> bool:
    """Certificate: one black token, no white tokens (hence one candidate)."""
    candidates, blacks, whites = count_tokens(states)
    return blacks == 1 and whites == 0 and candidates == 1


class TokenLeaderElection(LeaderElectionProtocol):
    """The 6-state protocol as a standalone leader-election protocol.

    The input symbol selects whether a node starts as a leader candidate.
    The default input ``None`` makes every node a candidate, which is the
    uniform-start configuration used for stable leader election from
    identical states (Table 1 rows "O(1) states").
    """

    name = "token-6state"

    # The certificate (one black token, no whites, one candidate) cannot
    # hold with a leader count other than one.
    certificate_requires_unique_leader = True

    def initial_state(self, input_symbol: Any = None) -> TokenState:
        if input_symbol is None:
            return token_initial_state(True)
        return token_initial_state(bool(input_symbol))

    def transition(self, initiator: TokenState, responder: TokenState) -> Tuple[TokenState, TokenState]:
        return token_transition(initiator, responder)

    def output(self, state: TokenState) -> str:
        return LEADER if state[0] == CANDIDATE else FOLLOWER

    def state_space_size(self) -> Optional[int]:
        return len(ALL_TOKEN_STATES)

    def enumerate_states(self) -> Tuple[TokenState, ...]:
        return ALL_TOKEN_STATES

    def compile_key(self) -> Tuple[str, ...]:
        # The protocol is parameter-free: all instances share one table set.
        return ("token-6state",)

    def is_output_stable_configuration(self, states: Sequence[TokenState], graph) -> bool:
        return token_states_stable(list(states))
