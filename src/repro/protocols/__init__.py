"""Leader-election protocols reproduced from the paper (Sections 4–5)."""

from .clocks import (
    ClockParameters,
    expected_interactions_for_streaks,
    expected_interactions_per_tick,
    expected_steps_per_tick,
    simulate_interactions_until_tick,
    simulate_steps_until_ticks,
    streak_update,
)
from .fast import BACKUP, FAST, FastLeaderElection
from .identifier import IdentifierLeaderElection, default_identifier_bits
from .star import ALL_STAR_STATES, StarLeaderElection
from .tokens import (
    ALL_TOKEN_STATES,
    BLACK,
    CANDIDATE,
    FOLLOWER_ROLE,
    NO_TOKEN,
    TokenLeaderElection,
    WHITE,
    count_tokens,
    token_initial_state,
    token_states_stable,
    token_transition,
)

__all__ = [
    "ALL_STAR_STATES",
    "ALL_TOKEN_STATES",
    "BACKUP",
    "BLACK",
    "CANDIDATE",
    "ClockParameters",
    "FAST",
    "FOLLOWER_ROLE",
    "FastLeaderElection",
    "IdentifierLeaderElection",
    "NO_TOKEN",
    "StarLeaderElection",
    "TokenLeaderElection",
    "WHITE",
    "count_tokens",
    "default_identifier_bits",
    "expected_interactions_for_streaks",
    "expected_interactions_per_tick",
    "expected_steps_per_tick",
    "simulate_interactions_until_tick",
    "simulate_steps_until_ticks",
    "streak_update",
    "token_initial_state",
    "token_states_stable",
    "token_transition",
]
