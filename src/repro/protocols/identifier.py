"""The time-efficient identifier-based protocol of Theorem 21.

Every node generates a ``k``-bit identifier using the initiator/responder
coin implicit in the scheduler (rule 1), broadcasts the maximum generated
identifier (rule 2), and runs the 6-state token protocol *within the
instance labelled by that identifier* to break the (unlikely) ties
(rule 3).  With ``k = ⌈4 log n⌉`` the protocol uses ``O(n^4)`` states and
stabilizes in ``O(B(G) + n log n)`` expected steps; on regular graphs
``k = ⌈3 log n⌉`` suffices for ``O(n^3)`` states.

Faithfulness notes (see DESIGN.md):

* rules (1) and (2) are evaluated against the partner's *pre-interaction*
  identifier, which makes ``Ξ`` a pure function of the state pair as
  required by the model;
* rule (3) — the embedded token-protocol step — is applied only when both
  nodes belong to the same instance (equal identifiers ``>= 2^k``) after
  rules (1)–(2).  The paper describes instances as *labelled* by their
  identifier; gating the token step on the label is what keeps tokens from
  leaking between instances and preserves the "always exactly one black
  token per surviving instance" invariant that the correctness argument
  relies on.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence, Tuple

from ..core.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from .tokens import (
    ALL_TOKEN_STATES,
    CANDIDATE,
    TokenState,
    count_tokens,
    token_initial_state,
    token_transition,
)

IdentifierState = Tuple[int, TokenState]


def default_identifier_bits(n_nodes: int, regular: bool = False) -> int:
    """The identifier width ``k`` used by Theorem 21.

    ``k = ⌈4 log2 n⌉`` in general and ``⌈3 log2 n⌉`` on regular graphs,
    giving ``O(n^4)`` / ``O(n^3)`` states respectively.
    """
    if n_nodes < 1:
        raise ValueError("population size must be positive")
    factor = 3 if regular else 4
    return max(factor * int(math.ceil(math.log2(max(n_nodes, 2)))), 1)


class IdentifierLeaderElection(LeaderElectionProtocol):
    """Theorem 21's ``O(B(G) + n log n)``-step, polynomial-state protocol.

    Parameters
    ----------
    n_nodes:
        Population size (the protocol is non-uniform: ``k`` depends on it).
    identifier_bits:
        Overrides ``k``.  Benchmarks use smaller ``k`` for ablations; the
        protocol remains always-correct for any ``k >= 1`` because of the
        embedded token protocol.
    regular:
        Use the regular-graph parameterisation ``k = ⌈3 log n⌉``.
    """

    name = "identifier-broadcast"

    # The certificate requires exactly one candidate sub-state, and a node
    # outputs LEADER iff its sub-state is the candidate.
    certificate_requires_unique_leader = True

    def __init__(
        self,
        n_nodes: int,
        identifier_bits: Optional[int] = None,
        regular: bool = False,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("population size must be positive")
        if identifier_bits is None:
            identifier_bits = default_identifier_bits(n_nodes, regular=regular)
        if identifier_bits < 1:
            raise ValueError("identifier_bits must be at least 1")
        self.n_nodes = int(n_nodes)
        self.identifier_bits = int(identifier_bits)
        self.generation_threshold = 1 << self.identifier_bits

    def initial_state(self, input_symbol: Any = None) -> IdentifierState:
        return (1, token_initial_state(False))

    def transition(
        self, initiator: IdentifierState, responder: IdentifierState
    ) -> Tuple[IdentifierState, IdentifierState]:
        threshold = self.generation_threshold
        pre_ids = (initiator[0], responder[0])
        states = [initiator, responder]
        new_ids = [initiator[0], responder[0]]
        new_subs = [initiator[1], responder[1]]
        for i in (0, 1):
            own_id, own_sub = states[i]
            partner_id = pre_ids[1 - i]
            # Rule (1): extend the identifier with the role bit.
            if own_id < threshold:
                own_id = 2 * own_id + i
                if own_id >= threshold:
                    own_sub = token_initial_state(True)
            # Rule (2): adopt a larger, fully generated identifier.
            if own_id < partner_id and partner_id >= threshold:
                own_id = partner_id
                own_sub = token_initial_state(False)
            new_ids[i] = own_id
            new_subs[i] = own_sub
        # Rule (3): run the token protocol within a common instance.
        if new_ids[0] == new_ids[1] and new_ids[0] >= threshold:
            new_subs[0], new_subs[1] = token_transition(new_subs[0], new_subs[1])
        return (new_ids[0], new_subs[0]), (new_ids[1], new_subs[1])

    def output(self, state: IdentifierState) -> str:
        return LEADER if state[1][0] == CANDIDATE else FOLLOWER

    def state_space_size(self) -> Optional[int]:
        # Identifiers take values in {1, ..., 2^{k+1} - 1}; each pairs with
        # one of the 6 token states.
        return (2 ** (self.identifier_bits + 1) - 1) * len(ALL_TOKEN_STATES)

    def enumerate_states(self) -> Optional[Sequence[IdentifierState]]:
        """Full enumeration only for small ``k``.

        At realistic widths the state universe is ``O(n^4)`` while a run
        touches a few thousand states, so the compiled engine's lazy
        discovery is the right mode and we return ``None``.
        """
        size = self.state_space_size()
        if size is None or size > 2048:
            return None
        return [
            (identifier, token)
            for identifier in range(1, self.generation_threshold * 2)
            for token in ALL_TOKEN_STATES
        ]

    def compile_key(self) -> Tuple[str, int]:
        # The transition depends only on the generation threshold 2^k.
        return ("identifier-broadcast", self.identifier_bits)

    def is_output_stable_configuration(self, states: Sequence[IdentifierState], graph) -> bool:
        threshold = self.generation_threshold
        first_id = states[0][0]
        if first_id < threshold:
            return False
        for identifier, _sub in states:
            if identifier != first_id:
                return False
        candidates, blacks, whites = count_tokens([sub for _id, sub in states])
        return candidates == 1 and blacks == 1 and whites == 0

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "identifier_bits": self.identifier_bits,
                "generation_threshold": self.generation_threshold,
            }
        )
        return info
