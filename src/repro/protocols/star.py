"""The trivial constant-state protocol for star graphs (Table 1, last row).

Section 1.3 and 6.3 of the paper point out that on a star there is an
``O(1)``-state protocol that elects a leader after a *single* interaction:
the graph structure itself breaks symmetry, because after the first
interaction the centre is "used up" and no two fresh nodes are ever
adjacent again.

States:

* ``FRESH`` — initial state, outputs follower;
* ``LEADER_DONE`` — outputs leader, never changes again;
* ``FOLLOWER_DONE`` — outputs follower, never changes again.

Rules: two fresh nodes interacting produce one ``LEADER_DONE`` (the
responder) and one ``FOLLOWER_DONE`` (the initiator); a fresh node
interacting with a done node becomes ``FOLLOWER_DONE``.

On a star this is correct and stabilizes at the first interaction: the
first interaction necessarily involves the centre, afterwards no two fresh
nodes are adjacent, so no second leader can ever appear.  On general graphs
the protocol is *not* correct (two disjoint edges can both create leaders)
— the stability certificate below is still sound on any graph, it simply
never fires in the multi-leader case.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..core.protocol import FOLLOWER, LEADER, LeaderElectionProtocol

FRESH = "fresh"
LEADER_DONE = "leader"
FOLLOWER_DONE = "follower"

StarState = str

ALL_STAR_STATES: Tuple[StarState, ...] = (FRESH, LEADER_DONE, FOLLOWER_DONE)


class StarLeaderElection(LeaderElectionProtocol):
    """The 3-state, single-interaction protocol for star graphs."""

    name = "star-trivial"

    # The certificate requires exactly one LEADER_DONE node.
    certificate_requires_unique_leader = True

    def initial_state(self, input_symbol: Any = None) -> StarState:
        return FRESH

    def transition(self, initiator: StarState, responder: StarState) -> Tuple[StarState, StarState]:
        if initiator == FRESH and responder == FRESH:
            return FOLLOWER_DONE, LEADER_DONE
        if initiator == FRESH:
            return FOLLOWER_DONE, responder
        if responder == FRESH:
            return initiator, FOLLOWER_DONE
        return initiator, responder

    def output(self, state: StarState) -> str:
        return LEADER if state == LEADER_DONE else FOLLOWER

    def state_space_size(self) -> Optional[int]:
        return len(ALL_STAR_STATES)

    def enumerate_states(self) -> Tuple[StarState, ...]:
        return ALL_STAR_STATES

    def compile_key(self) -> Tuple[str, ...]:
        # The protocol is parameter-free: all instances share one table set.
        return ("star-trivial",)

    def is_output_stable_configuration(self, states: Sequence[StarState], graph) -> bool:
        """Sound on any graph: one leader and no edge joining two fresh nodes.

        ``LEADER_DONE`` nodes never change, fresh nodes output follower and
        can only become leaders through a fresh–fresh interaction, which the
        no-fresh-edge condition rules out forever (fresh nodes never
        reappear).
        """
        leaders = sum(1 for s in states if s == LEADER_DONE)
        if leaders != 1:
            return False
        state_list = list(states)
        for u, v in graph.edges():
            if state_list[u] == FRESH and state_list[v] == FRESH:
                return False
        return True
