"""Local approximate clocks via streak counters (Section 5.1).

Each node keeps a counter ``streak ∈ {0, ..., h}``: it is incremented when
the node acts as the initiator of an interaction and reset to zero when it
acts as the responder.  Reaching ``h`` "completes a streak" (a local clock
tick) and resets the counter.  Because the scheduler assigns roles by fair
coin flips, a node needs ``K`` fair coin flips with ``E[K] = 2^{h+1} - 2``
interactions per tick (Lemma 27a), and a degree-``d`` node needs
``E[X(d)] = E[K]·m/d`` scheduler steps per tick (Lemma 27b) — high-degree
nodes tick faster, which is what drives the tournament of Section 5.2.

This module provides the pure streak-counter logic reused by the fast
protocol, Monte-Carlo simulators for ``K`` and ``X(d)``, and the analytic
expectations used by the Lemma 27/28 benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from ..core.scheduler import RandomScheduler


def streak_update(streak: int, is_initiator: bool, streak_length: int) -> Tuple[int, bool]:
    """Apply one interaction to a streak counter.

    Returns ``(new_streak, completed)``: the counter after the update and
    whether this interaction completed a streak (a clock tick).
    """
    if streak_length < 1:
        raise ValueError("streak_length must be at least 1")
    if not (0 <= streak < streak_length):
        raise ValueError("streak counter out of range")
    if not is_initiator:
        return 0, False
    streak += 1
    if streak >= streak_length:
        return 0, True
    return streak, False


def expected_interactions_per_tick(streak_length: int) -> float:
    """Lemma 27(a): ``E[K] = 2^{h+1} - 2`` interactions per completed streak."""
    if streak_length < 1:
        raise ValueError("streak_length must be at least 1")
    return float(2 ** (streak_length + 1) - 2)


def expected_steps_per_tick(streak_length: int, n_edges: int, degree: int) -> float:
    """Lemma 27(b): ``E[X(d)] = E[K]·m/d`` scheduler steps per tick."""
    if degree < 1:
        raise ValueError("degree must be at least 1")
    if n_edges < 1:
        raise ValueError("graph must have at least one edge")
    return expected_interactions_per_tick(streak_length) * n_edges / degree


def expected_interactions_for_streaks(streak_length: int, n_streaks: int) -> float:
    """Lemma 28(a): ``E[R] = (2^{h+1} - 2)·ℓ`` interactions for ``ℓ`` ticks."""
    if n_streaks < 0:
        raise ValueError("n_streaks must be non-negative")
    return expected_interactions_per_tick(streak_length) * n_streaks


def simulate_interactions_until_tick(streak_length: int, rng: RngLike = None) -> int:
    """Sample ``K``: coin flips (interactions) until ``h`` consecutive heads."""
    generator = as_rng(rng)
    streak = 0
    count = 0
    while True:
        count += 1
        is_initiator = bool(generator.integers(0, 2))
        streak, completed = streak_update(streak, is_initiator, streak_length)
        if completed:
            return count


def simulate_steps_until_ticks(
    graph: Graph,
    node: int,
    streak_length: int,
    n_ticks: int = 1,
    rng: RngLike = None,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Sample ``S(d, ℓ)``: scheduler steps until ``node`` completes ``n_ticks`` streaks.

    Simulates the actual edge-sampling scheduler on ``graph`` so the
    degree-dependence of Lemma 29 is exercised end to end.  Returns ``None``
    if ``max_steps`` is exhausted first.
    """
    if n_ticks < 1:
        raise ValueError("n_ticks must be positive")
    generator = as_rng(rng)
    if max_steps is None:
        expected = expected_steps_per_tick(streak_length, graph.n_edges, graph.degree(node))
        max_steps = int(100 * expected * n_ticks) + 10_000
    scheduler = RandomScheduler(graph, rng=generator)
    streak = 0
    completed = 0
    step = 0
    while step < max_steps:
        batch = min(8192, max_steps - step)
        for initiator, responder in scheduler.next_batch(batch):
            step += 1
            if initiator == node:
                streak, ticked = streak_update(streak, True, streak_length)
            elif responder == node:
                streak, ticked = streak_update(streak, False, streak_length)
            else:
                continue
            if ticked:
                completed += 1
                if completed >= n_ticks:
                    return step
    return None


@dataclass(frozen=True)
class ClockParameters:
    """The non-uniform parameters of the fast protocol (Section 5.2).

    Attributes
    ----------
    streak_length:
        ``h`` — the streak counter length.
    phase_length:
        ``L`` — number of levels in the waiting phase.
    max_level:
        ``α(τ)·L`` — the level at which a node switches to the backup.
    """

    streak_length: int
    phase_length: int
    max_level: int

    def __post_init__(self) -> None:
        if self.streak_length < 1:
            raise ValueError("streak_length must be at least 1")
        if self.phase_length < 1:
            raise ValueError("phase_length must be at least 1")
        if self.max_level <= self.phase_length:
            raise ValueError("max_level must exceed phase_length")

    @property
    def state_count(self) -> int:
        """Number of fast-phase states: streaks × statuses × levels, plus backup."""
        fast = self.streak_length * 2 * (self.max_level + 1)
        backup = 6
        return fast + backup

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        broadcast_time: float,
        tau: float = 1.0,
        h_offset: int = 8,
        alpha: float = 4.0,
    ) -> "ClockParameters":
        """The paper's parameter choice (Section 5.2).

        ``h = h_offset + ⌈log2(B(G)·Δ/m)⌉`` (paper: ``h_offset = 8``),
        ``L = ⌈2 τ log n⌉`` and ``max_level = ⌈α·L⌉`` for a constant
        ``α = α(τ) > 1``.  The paper's constants make the waiting phase
        roughly ``2^{h+1} L`` interactions per node, which is prohibitive at
        simulation scale, so benchmarks pass smaller ``h_offset`` / ``tau``;
        correctness is unaffected (the backup makes the protocol
        always-correct), only the failure probability of the fast path
        changes.
        """
        if broadcast_time <= 0:
            raise ValueError("broadcast_time must be positive")
        n = graph.n_nodes
        m = graph.n_edges
        delta = graph.max_degree
        ratio = max(broadcast_time * delta / max(m, 1), 1.0)
        streak_length = max(h_offset + int(math.ceil(math.log2(ratio))), 1)
        phase_length = max(int(math.ceil(2 * tau * math.log(max(n, 2)))), 2)
        max_level = max(int(math.ceil(alpha * phase_length)), phase_length + 1)
        return cls(
            streak_length=streak_length,
            phase_length=phase_length,
            max_level=max_level,
        )

    @classmethod
    def practical(cls, graph: Graph, broadcast_time: float, tau: float = 0.5) -> "ClockParameters":
        """Simulation-scale parameters: ``h_offset = 1`` and small ``τ``.

        Used by the benchmark harness so that the fast protocol's absolute
        running time fits a pure-Python budget while keeping the structural
        behaviour (waiting phase → elimination phase → backup) intact.
        """
        return cls.from_graph(
            graph, broadcast_time, tau=tau, h_offset=1, alpha=3.0
        )
