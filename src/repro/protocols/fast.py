"""The fast, space-efficient leader-election protocol of Theorem 24.

Stabilizes in ``O(B(G)·log n)`` steps using ``O(log n · h(G))`` states,
where ``h(G) ∈ O(log(Δ/β · log n))``.  Structure (Section 5.2):

* **streak clock** — every node runs the Section 5.1 streak counter with
  parameter ``h`` chosen so a degree-``Θ(Δ)`` node ticks roughly every
  ``Θ(B(G))`` steps;
* **waiting phase** (levels ``< L``) — leaders increase their level by one
  per completed streak; nothing is eliminated yet, which filters out
  low-degree nodes (they tick too slowly to keep up);
* **elimination phase** (levels ``>= L``) — a node that learns of a higher
  level ``>= L`` becomes a follower, and all nodes propagate the maximum
  level they have seen (one-way epidemic), so leaders are eliminated until,
  w.h.p., a single ``Θ(Δ)``-degree leader remains;
* **backup phase** (level ``= α(τ)·L``) — the first node to reach the top
  level switches to the always-correct 6-state token protocol, seeding it
  with its current status, and keeps broadcasting the top level so every
  node eventually joins the backup instance.  This gives finite expected
  stabilization time even when the fast path fails.

Rule evaluation uses the partner's *pre-interaction* level so that the
transition is a pure function of the state pair; with this convention the
invariant "some node holding the maximum level is a leader" (and hence
"at least one leader always exists") is preserved — see
``tests/test_fast_protocol.py`` for the property test.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence, Tuple

from ..core.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from ..graphs.graph import Graph
from .clocks import ClockParameters, streak_update
from .tokens import (
    CANDIDATE,
    TokenState,
    count_tokens,
    token_initial_state,
    token_transition,
)

# State layout
# ------------
# Fast phase:  ("fast", streak, is_leader, level)
# Backup phase: ("backup", role, token)  — level is implicitly max_level.
FAST = "fast"
BACKUP = "backup"

FastState = Tuple[str, int, bool, int]
BackupState = Tuple[str, str, str]
ProtocolState = Tuple


class FastLeaderElection(LeaderElectionProtocol):
    """Theorem 24's ``O(B(G) log n)``-step, ``O(log^2 n)``-state protocol.

    Parameters
    ----------
    parameters:
        The :class:`~repro.protocols.clocks.ClockParameters` (``h``, ``L``,
        ``α(τ)L``) — non-uniform knowledge derived from ``n`` and an
        estimate of ``B(G)·Δ/m``.
    """

    name = "fast-space-efficient"

    # The certificate starts with an explicit leader_count == 1 check.
    certificate_requires_unique_leader = True

    def __init__(self, parameters: ClockParameters) -> None:
        self.parameters = parameters

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_graph(
        cls,
        graph: Graph,
        broadcast_time: float,
        tau: float = 1.0,
        h_offset: int = 8,
        alpha: float = 4.0,
    ) -> "FastLeaderElection":
        """Instantiate with the paper's parameter choice for ``graph``."""
        return cls(
            ClockParameters.from_graph(
                graph, broadcast_time, tau=tau, h_offset=h_offset, alpha=alpha
            )
        )

    @classmethod
    def practical_for_graph(
        cls, graph: Graph, broadcast_time: float, tau: float = 0.5
    ) -> "FastLeaderElection":
        """Instantiate with simulation-scale constants (see ClockParameters)."""
        return cls(ClockParameters.practical(graph, broadcast_time, tau=tau))

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def initial_state(self, input_symbol: Any = None) -> ProtocolState:
        return (FAST, 0, True, 0)

    def transition(
        self, initiator: ProtocolState, responder: ProtocolState
    ) -> Tuple[ProtocolState, ProtocolState]:
        params = self.parameters
        pre_levels = (self._level(initiator), self._level(responder))
        new_states = [initiator, responder]
        for i, (state, partner_level) in enumerate(
            zip((initiator, responder), (pre_levels[1], pre_levels[0]))
        ):
            if state[0] == FAST:
                new_states[i] = self._fast_step(state, i == 0, partner_level, params)
            else:
                new_states[i] = state
        # Backup token dynamics between two backup-phase nodes.
        if new_states[0][0] == BACKUP and new_states[1][0] == BACKUP:
            sub_a = (new_states[0][1], new_states[0][2])
            sub_b = (new_states[1][1], new_states[1][2])
            sub_a, sub_b = token_transition(sub_a, sub_b)
            new_states[0] = (BACKUP, sub_a[0], sub_a[1])
            new_states[1] = (BACKUP, sub_b[0], sub_b[1])
        return new_states[0], new_states[1]

    def _fast_step(
        self,
        state: FastState,
        is_initiator: bool,
        partner_level: int,
        params: ClockParameters,
    ) -> ProtocolState:
        _tag, streak, is_leader, level = state
        streak, completed = streak_update(streak, is_initiator, params.streak_length)
        # Rule (1): a leader completing a streak climbs one level.
        if completed and is_leader:
            level = min(level + 1, params.max_level)
        # Rule (2): seeing a strictly higher level in the elimination phase
        # eliminates this node from contention.
        if level < partner_level and partner_level >= params.phase_length:
            is_leader = False
        # Rule (3): propagate the maximum level once the elimination phase
        # has started.
        if max(level, partner_level) >= params.phase_length:
            level = max(level, partner_level)
        # Backup phase entry: the top level switches to the token protocol,
        # seeded with the node's current status (Section 5.2).
        if level >= params.max_level:
            sub = token_initial_state(is_leader)
            return (BACKUP, sub[0], sub[1])
        return (FAST, streak, is_leader, level)

    def _level(self, state: ProtocolState) -> int:
        if state[0] == BACKUP:
            return self.parameters.max_level
        return state[3]

    def output(self, state: ProtocolState) -> str:
        if state[0] == BACKUP:
            return LEADER if state[1] == CANDIDATE else FOLLOWER
        return LEADER if state[2] else FOLLOWER

    def state_space_size(self) -> Optional[int]:
        return self.parameters.state_count

    def enumerate_states(self) -> Sequence[ProtocolState]:
        """All fast-phase states (streak × status × level) plus backup."""
        from .tokens import ALL_TOKEN_STATES

        params = self.parameters
        states: list = [
            (FAST, streak, is_leader, level)
            for streak in range(params.streak_length)
            for is_leader in (True, False)
            for level in range(params.max_level + 1)
        ]
        states.extend((BACKUP, role, token) for role, token in ALL_TOKEN_STATES)
        return states

    def compile_key(self) -> Tuple[str, int, int, int]:
        # The transition depends only on the three clock parameters.
        return (
            "fast-space-efficient",
            self.parameters.streak_length,
            self.parameters.phase_length,
            self.parameters.max_level,
        )

    def is_output_stable_configuration(self, states: Sequence[ProtocolState], graph) -> bool:
        """Sound stability certificate (see DESIGN.md §4).

        Requires: exactly one node outputs leader, that node holds the
        maximum level in the system, and the backup-token population cannot
        demote it (no white tokens, at most one black token, and if the
        leader is in the backup it is the backup candidate).
        """
        params = self.parameters
        leader_index = -1
        leader_count = 0
        max_level = 0
        backup_subs = []
        for index, state in enumerate(states):
            level = self._level(state)
            max_level = max(max_level, level)
            if state[0] == BACKUP:
                backup_subs.append((state[1], state[2]))
            if self.output(state) == LEADER:
                leader_count += 1
                leader_index = index
        if leader_count != 1:
            return False
        leader_state = states[leader_index]
        if self._level(leader_state) != max_level:
            return False
        if backup_subs:
            candidates, blacks, whites = count_tokens(backup_subs)
            if whites != 0 or blacks > 1:
                return False
            if leader_state[0] == BACKUP and leader_state[1] != CANDIDATE:
                return False
            if leader_state[0] != BACKUP and candidates > 0:
                # Some backup node still outputs leader-capable state while
                # the unique leader is outside the backup — cannot happen
                # when leader_count == 1, but keep the check for safety.
                return False
        return True

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "streak_length": self.parameters.streak_length,
                "phase_length": self.parameters.phase_length,
                "max_level": self.parameters.max_level,
            }
        )
        return info
