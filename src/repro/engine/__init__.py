"""Compiled execution engine for population protocols.

The engine turns a :class:`~repro.core.protocol.PopulationProtocol` whose
transition function is a pure function of the two interacting states into
dense lookup tables (:mod:`repro.engine.compiler`), and then executes
scheduler batches against those tables with three interchangeable, exactly
equivalent backends (:mod:`repro.engine.stepper`):

* ``native`` — a small C kernel compiled on demand with the system C
  compiler and driven through :mod:`ctypes`;
* ``vector`` — NumPy block application with a conflict-splitting pass that
  partitions each 64k-interaction block into node-disjoint segments;
* ``scalar`` — a tight Python loop over integer state codes.

:mod:`repro.engine.replicas` runs R independent replicas of the same
(graph, protocol) pair through one compiled table set — by default as a
replica-batched stack in which one ``repro_run_multi`` kernel call
advances every replica through a whole certificate-cadence block (see
:mod:`repro.runtime.execute`), with an exact sequential fallback when no
C compiler is available.  The experiment harness routes repeated
Monte-Carlo trials through the same execution plans.

All backends reproduce the reference simulator's sequential semantics
bit-for-bit: same scheduler stream, same stabilization step, same output
history.  ``tests/test_engine_equivalence.py`` enforces this for every
bundled protocol.
"""

from .compiler import (
    CompiledProtocol,
    ProtocolCompilationError,
    clear_compilation_cache,
    compilation_worthwhile,
    compile_protocol,
    get_compiled,
)
from .replicas import run_replicas
from .stepper import CompiledRun, available_backends

__all__ = [
    "CompiledProtocol",
    "CompiledRun",
    "ProtocolCompilationError",
    "available_backends",
    "clear_compilation_cache",
    "compilation_worthwhile",
    "compile_protocol",
    "get_compiled",
    "run_replicas",
]
