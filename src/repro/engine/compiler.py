"""Protocol compiler: from transition functions to dense lookup tables.

A :class:`~repro.core.protocol.PopulationProtocol` whose transition function
is a pure function of the two interacting states (``cacheable_transitions``)
can be *compiled*: every state is assigned a small integer code, and the
transition function is materialised into a dense table indexed by the pair
code ``a * K + b`` (``K`` is the current table stride, a power of two).

Each table entry packs everything the execution backends need to apply one
interaction without calling back into Python::

    entry = ((na * K + nb) << 4) | ((dl + 2) << 1) | chg

* ``na`` / ``nb`` — successor codes for the initiator / responder,
* ``dl ∈ [-2, 2]`` — change in the number of leader outputs,
* ``chg`` — whether either endpoint's *output* symbol changed.

A missing entry is the sentinel ``-1``.  Entries are filled lazily, the
first time a state pair is observed, so protocols with astronomically large
state *universes* but small reachable sets (the identifier protocol's
``O(n^4)`` states, of which a run touches a few thousand) compile fine.
Protocols that know their full state space implement
:meth:`~repro.core.protocol.PopulationProtocol.enumerate_states`, which lets
the compiler pre-register codes and size the tables once.

When state discovery outgrows the current stride the tables are re-packed
to the next power of two, up to ``max_states``; beyond that the compiler
raises :class:`ProtocolCompilationError` and callers fall back to the
reference interpreter.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.protocol import LEADER, PopulationProtocol

#: Default bound on the number of distinct states the compiler will track.
DEFAULT_MAX_STATES = 4096

#: Hard bound imposed by the int32 packed-entry layout (2*13 + 4 = 30 bits).
HARD_MAX_STATES = 8192

#: Fixed stride used for scalar-cache keys, stable across table growth.
_SCALAR_STRIDE = 1 << 14


class ProtocolCompilationError(RuntimeError):
    """The protocol cannot be compiled to lookup tables."""


class CompiledProtocol:
    """Dense-table representation of a population protocol.

    Parameters
    ----------
    protocol:
        The protocol to compile.  Its transition function must be a pure
        function of the ordered state pair (``cacheable_transitions``).
    max_states:
        Bound on the number of distinct states tracked before compilation
        fails (capped at :data:`HARD_MAX_STATES`).
    """

    def __init__(self, protocol: PopulationProtocol, max_states: int = DEFAULT_MAX_STATES) -> None:
        if not protocol.cacheable_transitions:
            raise ProtocolCompilationError(
                f"{protocol.name}: transition function is declared non-memoisable "
                "(cacheable_transitions=False); use the reference engine"
            )
        if max_states < 1:
            raise ValueError("max_states must be positive")
        self.protocol = protocol
        self.max_states = min(int(max_states), HARD_MAX_STATES)

        self.states: List[Hashable] = []
        self.index: Dict[Hashable, int] = {}
        self.out_symbols: List[Any] = []
        self.out_index: Dict[Any, int] = {}
        self.out_codes: List[int] = []
        self.is_leader_list: List[bool] = []
        #: Bumped whenever the tables grow (steppers may cache derived data).
        self.generation = 0
        #: Number of filled (state, state) table entries.
        self.filled_pairs = 0

        self._K = 64
        self._kshift = self._K.bit_length() - 1
        self.dpack = np.full(self._K * self._K, -1, dtype=np.int32)
        #: Scalar-path cache: ``a * _SCALAR_STRIDE + b`` -> ``None`` for an
        #: exact no-op, else ``(na, nb, dl, chg)``.
        self.scalar: Dict[int, Optional[Tuple[int, int, int, int]]] = {}
        self._out_np = np.zeros(self._K, dtype=np.int32)
        self._leader_np = np.zeros(self._K, dtype=bool)

        enumerated = protocol.enumerate_states()
        if enumerated is not None:
            for state in enumerated:
                self.code_for(state)
            # Tiny state spaces are compiled eagerly so the hot paths never
            # hit a missing entry (token: 36 pairs, star: 9).
            if self.n_states <= 64:
                self.ensure_pairs_among(range(self.n_states))

    # ------------------------------------------------------------------
    # Code assignment
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of distinct states discovered so far."""
        return len(self.states)

    @property
    def stride(self) -> int:
        """Current table stride ``K`` (a power of two)."""
        return self._K

    @property
    def kshift(self) -> int:
        """``log2(stride)``, used to unpack successor codes."""
        return self._kshift

    @property
    def tables_complete(self) -> bool:
        """True when every pair over the discovered states is filled.

        A complete table cannot miss or grow (transitions are closed over
        the discovered states), so steppers may skip the miss check.
        """
        return self.filled_pairs == len(self.states) * len(self.states)

    def code_for(self, state: Hashable) -> int:
        """The integer code of ``state``, registering it if new."""
        code = self.index.get(state)
        if code is not None:
            return code
        code = len(self.states)
        if code >= self.max_states:
            raise ProtocolCompilationError(
                f"{self.protocol.name}: state space exceeds max_states={self.max_states}; "
                "use the reference engine"
            )
        self.states.append(state)
        self.index[state] = code
        symbol = self.protocol.output(state)
        out_code = self.out_index.get(symbol)
        if out_code is None:
            out_code = len(self.out_symbols)
            self.out_symbols.append(symbol)
            self.out_index[symbol] = out_code
        self.out_codes.append(out_code)
        self.is_leader_list.append(symbol == LEADER)
        if code >= self._K:
            self._grow()
        else:
            self._out_np[code] = out_code
            self._leader_np[code] = self.is_leader_list[code]
        return code

    def encode(self, states: Iterable[Hashable]) -> np.ndarray:
        """Encode a state sequence into an ``int64`` code array."""
        return np.fromiter(
            (self.code_for(s) for s in states), dtype=np.int64
        )

    def decode_codes(self, codes: Iterable[int]) -> List[Hashable]:
        """Decode integer codes back into state objects."""
        states = self.states
        return [states[int(c)] for c in codes]

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def fill_pair(self, a: int, b: int) -> int:
        """Compute, store and return the packed entry for pair ``(a, b)``."""
        na_state, nb_state = self.protocol.transition(self.states[a], self.states[b])
        na = self.code_for(na_state)
        nb = self.code_for(nb_state)
        dl = (
            int(self.is_leader_list[na])
            - int(self.is_leader_list[a])
            + int(self.is_leader_list[nb])
            - int(self.is_leader_list[b])
        )
        chg = int(
            self.out_codes[na] != self.out_codes[a]
            or self.out_codes[nb] != self.out_codes[b]
        )
        packed = (((na * self._K) + nb) << 4) | ((dl + 2) << 1) | chg
        self.dpack[a * self._K + b] = packed
        self.filled_pairs += 1
        if na == a and nb == b and not chg:
            self.scalar[a * _SCALAR_STRIDE + b] = None
        else:
            self.scalar[a * _SCALAR_STRIDE + b] = (na, nb, dl, chg)
        return packed

    def scalar_entry(self, a: int, b: int) -> Optional[Tuple[int, int, int, int]]:
        """Scalar-path entry for ``(a, b)``: ``None`` means exact no-op."""
        key = a * _SCALAR_STRIDE + b
        try:
            return self.scalar[key]
        except KeyError:
            self.fill_pair(a, b)
            return self.scalar[key]

    def lookup_block(self, a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
        """Packed entries for parallel code arrays, filling misses.

        May grow the tables; callers must re-read :attr:`stride` /
        :attr:`kshift` afterwards (or check :attr:`generation`).
        """
        while True:
            stride = self._K
            pair = a_codes * stride + b_codes
            packed = self.dpack[pair]
            missing = packed < 0
            if not missing.any():
                return packed
            for flat in np.unique(pair[missing]).tolist():
                a, b = divmod(int(flat), stride)
                self.fill_pair(a, b)
                if self._K != stride:
                    # Growth re-packed the tables: the remaining flat pair
                    # encodings are stale, recompute from scratch.
                    break

    def ensure_pairs_among(self, codes: Sequence[int]) -> None:
        """Pre-fill all ordered pairs over ``codes`` (eager compilation)."""
        for a in codes:
            for b in codes:
                if self.dpack[a * self._K + b] < 0:
                    self.fill_pair(int(a), int(b))

    # ------------------------------------------------------------------
    # Derived per-code arrays
    # ------------------------------------------------------------------
    def leader_count(self, codes: np.ndarray) -> int:
        """Number of codes whose output is ``LEADER``."""
        return int(self._leader_np[codes].sum())

    @property
    def out_np(self) -> np.ndarray:
        """Output-symbol code per state code (padded to the stride)."""
        return self._out_np

    @property
    def leader_np(self) -> np.ndarray:
        """Leader mask per state code (padded to the stride)."""
        return self._leader_np

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old_k = self._K
        new_k = old_k * 2
        if new_k > self.max_states:
            raise ProtocolCompilationError(
                f"{self.protocol.name}: state space exceeds max_states={self.max_states}; "
                "use the reference engine"
            )
        new_pack = np.full(new_k * new_k, -1, dtype=np.int32)
        filled = np.nonzero(self.dpack >= 0)[0]
        if filled.size:
            old_entries = self.dpack[filled]
            flags = old_entries & 0xF
            vals = old_entries >> 4
            na = vals // old_k
            nb = vals % old_k
            a = filled // old_k
            b = filled % old_k
            new_pack[a * new_k + b] = (((na * new_k) + nb) << 4) | flags
        self.dpack = new_pack
        self._K = new_k
        self._kshift = new_k.bit_length() - 1
        out_np = np.zeros(new_k, dtype=np.int32)
        leader_np = np.zeros(new_k, dtype=bool)
        count = len(self.states)
        out_np[:count] = self.out_codes
        leader_np[:count] = self.is_leader_list
        self._out_np = out_np
        self._leader_np = leader_np
        self.generation += 1


# ----------------------------------------------------------------------
# Compilation cache
# ----------------------------------------------------------------------
_keyed_cache: Dict[Hashable, CompiledProtocol] = {}
_instance_cache: "weakref.WeakKeyDictionary[PopulationProtocol, CompiledProtocol]" = (
    weakref.WeakKeyDictionary()
)


def compile_protocol(
    protocol: PopulationProtocol, max_states: int = DEFAULT_MAX_STATES
) -> CompiledProtocol:
    """Compile ``protocol`` into fresh lookup tables (no caching)."""
    return CompiledProtocol(protocol, max_states=max_states)


def get_compiled(
    protocol: PopulationProtocol, max_states: int = DEFAULT_MAX_STATES
) -> CompiledProtocol:
    """Compile ``protocol``, reusing tables across runs when possible.

    Protocols that implement
    :meth:`~repro.core.protocol.PopulationProtocol.compile_key` share one
    table set per key (two instances with equal keys must have identical
    transition functions); others are cached per instance, so repeated runs
    of the same protocol object still reuse the lazily-learned tables.
    """
    key = protocol.compile_key()
    if key is not None:
        cached = _keyed_cache.get(key)
        if cached is None or cached.max_states < max_states:
            cached = CompiledProtocol(protocol, max_states=max_states)
            _keyed_cache[key] = cached
        return cached
    cached = _instance_cache.get(protocol)
    if cached is None or cached.max_states < max_states:
        cached = CompiledProtocol(protocol, max_states=max_states)
        _instance_cache[protocol] = cached
    return cached


def clear_compilation_cache() -> None:
    """Drop all cached compiled protocols (tests, memory pressure)."""
    _keyed_cache.clear()
    _instance_cache.clear()


def compilation_worthwhile(
    protocol: PopulationProtocol, max_states: Optional[int] = None
) -> bool:
    """Heuristic used by ``engine="auto"`` callers.

    Compiled execution is always *correct* for memoisable protocols, but
    for a protocol with a huge state universe and no enumeration hook
    (e.g. the identifier protocol at full width) lazy pair discovery can
    cost more than a short interpreted run saves.  Compilation is
    considered worthwhile when the state space is known to be enumerable
    within the table bound.  ``engine="compiled"`` ignores this heuristic.
    """
    if not protocol.cacheable_transitions:
        return False
    if protocol.enumerate_states() is not None:
        return True
    size = protocol.state_space_size()
    limit = max_states if max_states is not None else DEFAULT_MAX_STATES
    return size is not None and size <= limit
