"""Embarrassingly-parallel replicas of one (graph, protocol) pair.

Monte-Carlo experiments run the same protocol on the same graph many times
with different seeds.  :func:`run_replicas` executes R such replicas as
*one* stacked computation: the configurations live in a single flat
``(R * n)`` code array, every replica draws from its own independent
scheduler stream, and at each time step the engine applies interaction
``t`` of **all** replicas with one set of array operations.  Replicas never
share nodes, so the stacked update is conflict-free by construction while
each replica's sequence is applied strictly in order — semantics are
bit-identical to R separate reference runs with the same seeds.

Stability certificates are evaluated at the same ``check_interval`` cadence
as the reference simulator; a replica whose certificate fires drops out of
the stack (its scheduler stops being consumed) and the remaining replicas
continue.

On stabilization workloads replicas stop at widely different steps, so the
stack thins out and sequential execution through the compiled single-run
engine (the native kernel where available, the scalar table loop
otherwise) is usually faster end to end; ``mode="auto"`` therefore runs
sequentially, and ``mode="lockstep"`` opts into the stacked path, which
wins for wide stacks of fixed-length executions.  Both are exact.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

import numpy as np

from ..core.configuration import Configuration
from ..graphs.graph import Graph
from ..core.protocol import PopulationProtocol
from ..core.scheduler import RandomScheduler
from .compiler import DEFAULT_MAX_STATES, CompiledProtocol, get_compiled

#: Sustained stack width needed for the lockstep path to beat the
#: sequential scalar loop (NumPy call overhead, ~5µs per time step, is
#: paid per *stack*; the scalar loop costs ~0.2µs per step).  Stabilizing
#: replicas shrink the stack over time, so this is a width the stack must
#: *hold*, not a launch width.
LOCKSTEP_MIN_REPLICAS = 32

#: Once this few replicas remain active, the lockstep loop hands the
#: stragglers to the sequential single-run engine.
LOCKSTEP_DRAIN_WIDTH = 24


def run_replicas(
    protocol: PopulationProtocol,
    graph: Graph,
    seeds: Sequence[Any],
    max_steps: int,
    inputs: Optional[Sequence[Any]] = None,
    check_interval: Optional[int] = None,
    mode: str = "auto",
    backend: str = "auto",
    max_states: int = DEFAULT_MAX_STATES,
    drain_width: int = LOCKSTEP_DRAIN_WIDTH,
) -> List["SimulationResult"]:
    """Run one replica per seed; results match the reference runs exactly.

    Parameters
    ----------
    protocol / graph:
        The protocol and interaction graph shared by all replicas.
    seeds:
        One scheduler seed (or generator) per replica.
    max_steps / inputs / check_interval:
        As in :meth:`repro.core.simulator.Simulator.run`.
    mode:
        ``"lockstep"`` stacks all replicas into one ``(R, n)`` computation;
        ``"sequential"`` runs them one at a time through the compiled
        single-run engine; ``"auto"`` chooses.
    backend:
        Backend forwarded to sequential runs (see
        :class:`~repro.engine.stepper.CompiledRun`).
    """
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    seeds = list(seeds)
    if not seeds:
        return []
    if mode not in ("auto", "lockstep", "sequential"):
        raise ValueError(f"unknown replica mode {mode!r}")
    if mode == "auto":
        # Sequential execution through the compiled single-run engine wins
        # on stabilization workloads: replicas stop at widely different
        # steps, so a lockstep stack spends most of its time under-filled.
        # Lockstep (mode="lockstep") pays off for wide stacks of
        # fixed-length executions; see docs/BENCHMARKS.md for measurements.
        mode = "sequential"
    if mode == "sequential":
        from ..core.simulator import Simulator

        results = []
        for seed in seeds:
            simulator = Simulator(graph, protocol, rng=seed)
            results.append(
                simulator.run(
                    max_steps=max_steps,
                    inputs=inputs,
                    check_interval=check_interval,
                    engine="compiled",
                    backend=backend,
                    max_states=max_states,
                )
            )
        return results
    compiled = get_compiled(protocol, max_states=max_states)
    return _run_lockstep(
        protocol,
        graph,
        seeds,
        max_steps,
        inputs,
        check_interval,
        compiled,
        drain_width,
        backend,
    )


def _run_lockstep(
    protocol: PopulationProtocol,
    graph: Graph,
    seeds: Sequence[Any],
    max_steps: int,
    inputs: Optional[Sequence[Any]],
    check_interval: Optional[int],
    compiled: CompiledProtocol,
    drain_width: int = LOCKSTEP_DRAIN_WIDTH,
    backend: str = "auto",
) -> List["SimulationResult"]:
    from ..core.simulator import SimulationResult

    n = graph.n_nodes
    replica_count = len(seeds)
    if inputs is None:
        initial_states = [protocol.initial_state(None)] * n
    else:
        if len(inputs) != n:
            raise ValueError("inputs must provide one symbol per node")
        initial_states = [protocol.initial_state(symbol) for symbol in inputs]
    if check_interval is None:
        from ..core.simulator import default_check_interval

        check_interval = default_check_interval(graph)
    check_interval = max(1, int(check_interval))

    start_time = time.perf_counter()
    initial_codes = compiled.encode(initial_states)
    initial_leaders = compiled.leader_count(initial_codes)
    results: List[Optional[SimulationResult]] = [None] * replica_count

    def finalize(codes_row: np.ndarray, stabilized: bool, step: int, last_change: int, distinct: int) -> SimulationResult:
        decoded = compiled.decode_codes(codes_row)
        return SimulationResult(
            stabilized=stabilized,
            certified_step=step,
            last_output_change_step=last_change,
            steps_executed=step,
            leaders=compiled.leader_count(codes_row),
            final_configuration=Configuration(decoded, step=step),
            distinct_states_observed=distinct,
            leader_trace=[],
            wall_time_seconds=0.0,
        )

    initially_stable = protocol.is_output_stable_configuration(initial_states, graph)
    if initially_stable or max_steps == 0:
        wall = time.perf_counter() - start_time
        distinct = int(np.unique(initial_codes).size)
        for index in range(replica_count):
            result = finalize(initial_codes, initially_stable, 0, 0, distinct)
            result.certified_step = 0
            result.leaders = initial_leaders
            result.wall_time_seconds = wall / replica_count
            results[index] = result
        return results  # type: ignore[return-value]

    schedulers = [RandomScheduler(graph, rng=seed) for seed in seeds]
    flat = np.tile(np.ascontiguousarray(initial_codes, dtype=np.int64), replica_count)
    seen = np.zeros((replica_count, compiled.stride), dtype=bool)
    seen[:, np.unique(initial_codes)] = True
    last_change = np.zeros(replica_count, dtype=np.int64)
    active = list(range(replica_count))
    step = 0

    while active and step < max_steps:
        if len(active) <= drain_width:
            # Straggler drain: per-step NumPy overhead is paid per stack,
            # so finish the few remaining replicas sequentially, each
            # continuing its own scheduler stream in place.
            for replica in active:
                results[replica] = _drain_replica(
                    protocol,
                    graph,
                    compiled,
                    schedulers[replica],
                    flat[replica * n : (replica + 1) * n],
                    step,
                    int(last_change[replica]),
                    seen[replica],
                    max_steps,
                    check_interval,
                    backend,
                )
            active = []
            break
        chunk = min(check_interval, max_steps - step)
        width = len(active)
        fu = np.empty((chunk, width), dtype=np.int64)
        fv = np.empty((chunk, width), dtype=np.int64)
        for column, replica in enumerate(active):
            iu, iv = schedulers[replica].next_arrays(chunk)
            offset = replica * n
            fu[:, column] = iu + offset
            fv[:, column] = iv + offset
        pre_a = np.empty((chunk, width), dtype=np.int64)
        pre_b = np.empty((chunk, width), dtype=np.int64)
        post_a = np.empty((chunk, width), dtype=np.int64)
        post_b = np.empty((chunk, width), dtype=np.int64)
        table = compiled.dpack
        stride = compiled.stride
        kshift = compiled.kshift
        kmask = stride - 1
        complete = compiled.tables_complete
        for t in range(chunk):
            row_u = fu[t]
            row_v = fv[t]
            a = flat[row_u]
            b = flat[row_v]
            if complete:
                packed = table[a * stride + b]
            else:
                packed = compiled.lookup_block(a, b)
                table = compiled.dpack
                stride = compiled.stride
                kshift = compiled.kshift
                kmask = stride - 1
                complete = compiled.tables_complete
            successors = packed >> 4
            na = successors >> kshift
            nb = successors & kmask
            flat[row_u] = na
            flat[row_v] = nb
            pre_a[t] = a
            pre_b[t] = b
            post_a[t] = na
            post_b[t] = nb
        previous_step = step
        step += chunk

        out = compiled.out_np
        changed = (out[post_a] != out[pre_a]) | (out[post_b] != out[pre_b])
        changed_any = changed.any(axis=0)
        if changed_any.any():
            # Last changing time step per column (argmax on the reversed
            # column finds the first True from the bottom).
            last_t = chunk - 1 - np.argmax(changed[::-1], axis=0)
            for column in np.nonzero(changed_any)[0].tolist():
                last_change[active[column]] = previous_step + int(last_t[column]) + 1
        if seen.shape[1] < compiled.stride:
            grown = np.zeros((replica_count, compiled.stride), dtype=bool)
            grown[:, : seen.shape[1]] = seen
            seen = grown
        rows = np.asarray(active, dtype=np.int64)[None, :]
        seen[rows, post_a] = True
        seen[rows, post_b] = True

        still_active = []
        for replica in active:
            row_codes = flat[replica * n : (replica + 1) * n]
            decoded = compiled.decode_codes(row_codes)
            if protocol.is_output_stable_configuration(decoded, graph):
                results[replica] = finalize(
                    row_codes,
                    True,
                    step,
                    int(last_change[replica]),
                    int(seen[replica].sum()),
                )
            else:
                still_active.append(replica)
        active = still_active

    for replica in active:
        row_codes = flat[replica * n : (replica + 1) * n]
        results[replica] = finalize(
            row_codes,
            False,
            step,
            int(last_change[replica]),
            int(seen[replica].sum()),
        )

    wall = time.perf_counter() - start_time
    for result in results:
        assert result is not None
        result.wall_time_seconds = wall / replica_count
    return results  # type: ignore[return-value]


def _drain_replica(
    protocol: PopulationProtocol,
    graph: Graph,
    compiled: CompiledProtocol,
    scheduler: RandomScheduler,
    codes_row: np.ndarray,
    step: int,
    last_change: int,
    seen_row: np.ndarray,
    max_steps: int,
    check_interval: int,
    backend: str = "auto",
) -> "SimulationResult":
    """Finish one replica sequentially from mid-run lockstep state.

    Continues the replica's own scheduler stream and certificate cadence,
    so the result is still identical to a standalone reference run.
    """
    from ..core.simulator import SimulationResult
    from .stepper import CompiledRun

    run = CompiledRun(
        compiled, np.ascontiguousarray(codes_row, dtype=np.int64), backend=backend
    )
    run.step = step
    run.last_change = last_change
    stabilized = False
    certified_step = 0
    while not stabilized and run.step < max_steps:
        batch = min(check_interval, max_steps - run.step)
        initiators, responders = scheduler.next_arrays(batch)
        run.apply_block(initiators, responders)
        if protocol.is_output_stable_configuration(run.current_states(), graph):
            stabilized = True
            certified_step = run.step
    decoded = run.current_states()
    seen_mask = run.seen_codes_mask(minimum_length=seen_row.shape[0])
    seen_mask[: seen_row.shape[0]] |= seen_row
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else run.step,
        last_output_change_step=run.last_change,
        steps_executed=run.step,
        leaders=run.leader_count,
        final_configuration=Configuration(decoded, step=run.step),
        distinct_states_observed=int(seen_mask.sum()),
        leader_trace=[],
        wall_time_seconds=0.0,
    )
