"""Embarrassingly-parallel replicas of one (graph, protocol) pair.

Monte-Carlo experiments run the same protocol on the same graph many times
with different seeds.  :func:`run_replicas` executes R such replicas as
*one* :class:`~repro.runtime.plan.ExecutionPlan`: the plan compiles the
protocol's transition tables once and the runtime executors
(:mod:`repro.runtime.execute`) run every replica against them — either
through the replica-batched stack, which advances all replicas one
certificate-cadence block at a time with a single C-kernel call per
block, or replica by replica through the compiled single-run engine.
Every replica draws from its own independent scheduler stream, so both
strategies are bit-identical to R separate reference runs with the same
seeds.

Stability certificates are evaluated at the same ``check_interval``
cadence as the reference simulator; in the stacked path a replica whose
certificate fires drops out of the stack (its scheduler stops being
consumed) and the remaining replicas continue.  ``drain_width`` hands
the last few stragglers to the sequential engine mid-run; with the
kernel-blocked stack this is an optimisation knob only — results are
identical for every value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from ..core.protocol import PopulationProtocol
from ..graphs.graph import Graph
from .compiler import DEFAULT_MAX_STATES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.simulator import SimulationResult

#: Historical default for handing lockstep stragglers to the sequential
#: engine.  The kernel-blocked stack no longer needs a wide drain (its
#: per-block overhead is paid once per stack, not per step), so the
#: default plan drains only below this width when ``mode="lockstep"`` is
#: requested explicitly; ``mode="auto"`` never drains.
LOCKSTEP_DRAIN_WIDTH = 24


def run_replicas(
    protocol: PopulationProtocol,
    graph: Graph,
    seeds: Sequence[Any],
    max_steps: int,
    inputs: Optional[Sequence[Any]] = None,
    check_interval: Optional[int] = None,
    mode: str = "auto",
    backend: str = "auto",
    max_states: int = DEFAULT_MAX_STATES,
    drain_width: Optional[int] = None,
    threads: Optional[int] = None,
) -> List["SimulationResult"]:
    """Run one replica per seed; results match the reference runs exactly.

    Parameters
    ----------
    protocol / graph:
        The protocol and interaction graph shared by all replicas.
    seeds:
        One scheduler seed (or generator) per replica.
    max_steps / inputs / check_interval:
        As in :meth:`repro.core.simulator.Simulator.run`.
    mode:
        ``"auto"`` (default) uses the replica-batched stack whenever the
        multi-replica kernel is available and falls back to sequential
        execution otherwise; ``"lockstep"`` requests the stack
        explicitly (with the historical straggler drain); ``"sequential"``
        runs replicas one at a time through the compiled single-run
        engine.  All modes are exact — they differ in wall time only.
    backend:
        Backend forwarded to single-replica runs (see
        :class:`~repro.engine.stepper.CompiledRun`).
    drain_width:
        Stack width at or below which remaining replicas are handed to
        the sequential engine (``mode="lockstep"`` defaults to
        :data:`LOCKSTEP_DRAIN_WIDTH`, ``mode="auto"`` to 0).
    threads:
        Replica-axis kernel threads for the v6 stack executor (``None``
        defers to ``REPRO_KERNEL_THREADS``).  Results are bit-identical
        for any value.
    """
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    seeds = list(seeds)
    if not seeds:
        return []
    if mode not in ("auto", "lockstep", "sequential"):
        raise ValueError(f"unknown replica mode {mode!r}")
    if drain_width is None:
        drain_width = LOCKSTEP_DRAIN_WIDTH if mode == "lockstep" else 0
    from ..runtime import compile_plan, execute_plan

    plan = compile_plan(
        [protocol] * len(seeds),
        graph,
        seeds,
        max_steps=max_steps,
        engine="compiled",
        backend=backend,
        check_interval=check_interval,
        inputs=inputs,
        max_states=max_states,
        replica_mode=mode,
        drain_width=int(drain_width),
        threads=threads,
    )
    return execute_plan(plan)
