"""Optional C kernel for the compiled engine.

The packed transition tables built by :mod:`repro.engine.compiler` are
self-contained: applying one interaction is two array reads, one table read
and two writes.  That inner loop is branch-light and memory-resident, so on
machines with a system C compiler we compile a ~30-line kernel once, cache
the shared object under ``src/repro/engine/_build/`` and drive it through
:mod:`ctypes`.  This removes the interpreter from the hot path entirely
(roughly two orders of magnitude over the reference interpreter) while
executing the *same* table entries as the NumPy and scalar backends.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_DISABLE_NATIVE=1`` simply means :func:`get_kernel` returns ``None``
and the stepper falls back to the NumPy/scalar backends.  The kernel stops
at the first table miss and returns how far it got, so lazy pair discovery
(and table growth) stays in Python.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
from typing import Optional

_KERNEL_VERSION = 5

_KERNEL_SOURCE = r"""
#include <stdint.h>

/* Applies interactions [0, nsteps) sequentially against the packed table.
 *
 * Packed entry layout (see repro/engine/compiler.py):
 *   entry = ((na * k + nb) << 4) | ((dl + 2) << 1) | chg,  -1 == missing.
 *
 * Returns the number of interactions applied; a return value < nsteps
 * means entry (iu[ret], iv[ret]) is missing and must be filled by the
 * caller before resuming at offset ret.
 */
int64_t repro_run_block(int64_t *codes,
                        const int64_t *iu,
                        const int64_t *iv,
                        int64_t nsteps,
                        const int32_t *dpack,
                        int64_t k,
                        int32_t kshift,
                        uint8_t *seen,
                        int64_t step0,
                        int64_t *last_change_io,
                        int64_t *leaders_io)
{
    const int64_t kmask = k - 1;
    int64_t last = *last_change_io;
    int64_t leaders = *leaders_io;
    int64_t i;
    for (i = 0; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        int64_t a = codes[u];
        int64_t b = codes[v];
        int32_t pk = dpack[a * k + b];
        int64_t val, na, nb;
        if (pk < 0)
            break;
        val = (int64_t)(pk >> 4);
        na = val >> kshift;
        nb = val & kmask;
        codes[u] = na;
        codes[v] = nb;
        seen[na] = 1;
        seen[nb] = 1;
        if (pk & 1)
            last = step0 + i + 1;
        leaders += ((pk >> 1) & 7) - 2;
    }
    *last_change_io = last;
    *leaders_io = leaders;
    return i;
}

/* One block of the single-source epidemic (broadcast-time estimator).
 *
 * Spreads the informed flag across interactions until either the block is
 * exhausted or all n nodes are informed.  Returns the number of
 * interactions consumed; *count_io holds the updated informed count.
 */
int64_t repro_broadcast_block(uint8_t *informed,
                              const int64_t *iu,
                              const int64_t *iv,
                              int64_t nsteps,
                              int64_t n,
                              int64_t *count_io)
{
    int64_t count = *count_io;
    int64_t i;
    for (i = 0; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        uint8_t a = informed[u];
        uint8_t b = informed[v];
        if (a != b) {
            informed[u] = 1;
            informed[v] = 1;
            count++;
            if (count == n) {
                i++;
                break;
            }
        }
    }
    *count_io = count;
    return i;
}

/* One certificate-cadence block of R replica-batched protocol runs.
 *
 * Replica r owns row r of the (nrep x n) codes matrix and row r of the
 * (nrep x nsteps) draws matrix — its private scheduler stream as raw
 * directed pair indices, decoded through the shared endpoint tables
 * du/dv (length 2m).  Rows are fully independent; each is applied
 * strictly in order with the same table entries and bookkeeping as
 * repro_run_block, so results are bit-identical to nrep separate runs.
 *
 * positions[r] is the per-replica resume offset (0 on entry).  A row
 * stops early at a missing table entry; the caller fills the pair
 * (possibly growing the tables), refreshes dpack/k/kshift/seen and
 * re-invokes — rows already at nsteps are skipped for free.
 */
void repro_run_multi(int64_t *codes,
                     const int64_t *draws,
                     const int64_t *du,
                     const int64_t *dv,
                     int64_t nrep,
                     int64_t nsteps,
                     int64_t n,
                     const int32_t *dpack,
                     int64_t k,
                     int32_t kshift,
                     uint8_t *seen,
                     int64_t step0,
                     int64_t *positions,
                     int64_t *last_change,
                     int64_t *leaders)
{
    const int64_t kmask = k - 1;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        int64_t *row_codes = codes + r * n;
        const int64_t *row = draws + r * nsteps;
        uint8_t *row_seen = seen + r * k;
        int64_t last = last_change[r];
        int64_t lead = leaders[r];
        int64_t i;
        for (i = positions[r]; i < nsteps; i++) {
            int64_t idx = row[i];
            int64_t u = du[idx];
            int64_t v = dv[idx];
            int64_t a = row_codes[u];
            int64_t b = row_codes[v];
            int32_t pk = dpack[a * k + b];
            int64_t val, na, nb;
            if (pk < 0)
                break;
            val = (int64_t)(pk >> 4);
            na = val >> kshift;
            nb = val & kmask;
            row_codes[u] = na;
            row_codes[v] = nb;
            row_seen[na] = 1;
            row_seen[nb] = 1;
            if (pk & 1)
                last = step0 + i + 1;
            lead += ((pk >> 1) & 7) - 2;
        }
        positions[r] = i;
        last_change[r] = last;
        leaders[r] = lead;
    }
}

/* One block of R replica-batched single-source epidemics.
 *
 * Each replica r owns row r of the (nrep x n) informed matrix and row r
 * of the (nrep x nsteps) draws matrix — its private scheduler stream as
 * raw ordered-pair indices, decoded here through the directed endpoint
 * tables du/dv (length 2m).  A replica finishes when either every node
 * is informed (stopmask == NULL) or a newly informed node has its
 * stopmask bit set (distance-k propagation; stopmask is nrep x n).
 * finish[r] is -1 on entry and is set to the 1-based offset of the
 * finishing interaction within this block; unfinished replicas consume
 * the whole block.  Returns the number of replicas that finished.
 */
int64_t repro_broadcast_multi(uint8_t *informed,
                              const int64_t *draws,
                              const int64_t *du,
                              const int64_t *dv,
                              int64_t nrep,
                              int64_t nsteps,
                              int64_t n,
                              const uint8_t *stopmask,
                              int64_t *counts,
                              int64_t *finish)
{
    int64_t done = 0;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        uint8_t *inf = informed + r * n;
        const uint8_t *stop = stopmask ? stopmask + r * n : 0;
        const int64_t *row = draws + r * nsteps;
        int64_t count = counts[r];
        int64_t i;
        for (i = 0; i < nsteps; i++) {
            int64_t u = du[row[i]];
            int64_t v = dv[row[i]];
            uint8_t a = inf[u];
            uint8_t b = inf[v];
            if (a != b) {
                int64_t fresh = a ? v : u;
                inf[u] = 1;
                inf[v] = 1;
                count++;
                if (stop ? stop[fresh] : (count == n)) {
                    finish[r] = i + 1;
                    done++;
                    break;
                }
            }
        }
        counts[r] = count;
    }
    return done;
}

/* One block of R replica-batched all-pairs influence processes.
 *
 * bits is (nrep x n x w) packed uint64 influencer bitsets: word j of node
 * u in replica r holds sources 64j..64j+63.  full is the w-word mask with
 * the low n bits set; full_flags (nrep x n) caches which nodes already
 * hold it so the word compare runs only on improving merges.  A replica
 * finishes when all n nodes are fully informed (counts[r] == n);
 * finish[r] gets the 1-based offset as above.  Returns the number of
 * replicas that finished in this block.
 */
int64_t repro_influence_multi(uint64_t *bits,
                              const int64_t *draws,
                              const int64_t *du,
                              const int64_t *dv,
                              int64_t nrep,
                              int64_t nsteps,
                              int64_t n,
                              int64_t w,
                              const uint64_t *full,
                              uint8_t *full_flags,
                              int64_t *counts,
                              int64_t *finish)
{
    int64_t done = 0;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        uint64_t *rb = bits + r * n * w;
        uint8_t *flags = full_flags + r * n;
        const int64_t *row = draws + r * nsteps;
        int64_t count = counts[r];
        int64_t i;
        for (i = 0; i < nsteps; i++) {
            int64_t u = du[row[i]];
            int64_t v = dv[row[i]];
            uint8_t fu = flags[u];
            uint8_t fv = flags[v];
            uint64_t *pu, *pv;
            int64_t j;
            int alleq;
            if (fu && fv)
                continue;
            pu = rb + u * w;
            pv = rb + v * w;
            alleq = 1;
            for (j = 0; j < w; j++) {
                uint64_t merged = pu[j] | pv[j];
                pu[j] = merged;
                pv[j] = merged;
                if (merged != full[j])
                    alleq = 0;
            }
            if (alleq) {
                count += (fu == 0) + (fv == 0);
                flags[u] = 1;
                flags[v] = 1;
                if (count == n) {
                    finish[r] = i + 1;
                    done++;
                    break;
                }
            }
        }
        counts[r] = count;
    }
    return done;
}
"""

_UNSET = object()
_cached_kernel = _UNSET


def _build_directory() -> str:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")
    os.makedirs(path, exist_ok=True)
    return path


def _compile_kernel() -> Optional[ctypes.CDLL]:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    build_dir = _build_directory()
    src_path = os.path.join(build_dir, f"_kernel_v{_KERNEL_VERSION}.c")
    so_path = os.path.join(build_dir, f"_kernel_v{_KERNEL_VERSION}.so")
    if not os.path.exists(so_path):
        with open(src_path, "w", encoding="utf-8") as handle:
            handle.write(_KERNEL_SOURCE)
        tmp_path = so_path + f".tmp{os.getpid()}"
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, src_path],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_path, so_path)
    library = ctypes.CDLL(so_path)
    run_block = library.repro_run_block
    run_block.restype = ctypes.c_int64
    run_block.argtypes = [
        ctypes.c_void_p,  # codes
        ctypes.c_void_p,  # iu
        ctypes.c_void_p,  # iv
        ctypes.c_int64,  # nsteps
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen
        ctypes.c_int64,  # step0
        ctypes.POINTER(ctypes.c_int64),  # last_change_io
        ctypes.POINTER(ctypes.c_int64),  # leaders_io
    ]
    broadcast_block = library.repro_broadcast_block
    broadcast_block.restype = ctypes.c_int64
    broadcast_block.argtypes = [
        ctypes.c_void_p,  # informed
        ctypes.c_void_p,  # iu
        ctypes.c_void_p,  # iv
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.POINTER(ctypes.c_int64),  # count_io
    ]
    broadcast_multi = library.repro_broadcast_multi
    broadcast_multi.restype = ctypes.c_int64
    broadcast_multi.argtypes = [
        ctypes.c_void_p,  # informed (nrep x n)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # stopmask (nrep x n) or None
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
    ]
    run_multi = library.repro_run_multi
    run_multi.restype = None
    run_multi.argtypes = [
        ctypes.c_void_p,  # codes (nrep x n)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen (nrep x k)
        ctypes.c_int64,  # step0
        ctypes.c_void_p,  # positions (nrep)
        ctypes.c_void_p,  # last_change (nrep)
        ctypes.c_void_p,  # leaders (nrep)
    ]
    influence_multi = library.repro_influence_multi
    influence_multi.restype = ctypes.c_int64
    influence_multi.argtypes = [
        ctypes.c_void_p,  # bits (nrep x n x w)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_int64,  # w
        ctypes.c_void_p,  # full (w)
        ctypes.c_void_p,  # full_flags (nrep x n)
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
    ]
    return run_block, broadcast_block, broadcast_multi, influence_multi, run_multi


def _kernels():
    global _cached_kernel
    if _cached_kernel is not _UNSET:
        return _cached_kernel
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        _cached_kernel = None
        return None
    try:
        _cached_kernel = _compile_kernel()
    except Exception:
        _cached_kernel = None
    return _cached_kernel


def get_kernel():
    """The compiled protocol-stepping entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels[0]


def get_broadcast_kernel():
    """The compiled single-source-epidemic entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels[1]


def get_broadcast_multi_kernel():
    """The compiled replica-batched epidemic entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels[2]


def get_influence_multi_kernel():
    """The compiled replica-batched influence entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels[3]


def get_run_multi_kernel():
    """The compiled replica-batched protocol-stepping entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels[4]


def reset_kernel_cache() -> None:
    """Forget the cached kernel handle (tests toggling the env var)."""
    global _cached_kernel
    _cached_kernel = _UNSET
