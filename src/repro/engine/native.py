"""Optional C kernel for the compiled engine.

The packed transition tables built by :mod:`repro.engine.compiler` are
self-contained: applying one interaction is two array reads, one table read
and two writes.  That inner loop is branch-light and memory-resident, so on
machines with a system C compiler we compile a ~30-line kernel once, cache
the shared object under ``src/repro/engine/_build/`` and drive it through
:mod:`ctypes`.  This removes the interpreter from the hot path entirely
(roughly two orders of magnitude over the reference interpreter) while
executing the *same* table entries as the NumPy and scalar backends.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_DISABLE_NATIVE=1`` simply means :func:`get_kernel` returns ``None``
and the stepper falls back to the NumPy/scalar backends.  The kernel stops
at the first table miss and returns how far it got, so lazy pair discovery
(and table growth) stays in Python.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess

_KERNEL_VERSION = 8

#: The v5 function set: protocol stepping, epidemics, influence — all fed
#: pre-drawn pair indices from Python.  Compiles standalone (no pthread,
#: no 128-bit arithmetic) and serves as the fallback when the v6 source
#: does not build on a platform.
_KERNEL_SOURCE_V5 = r"""
#include <stdint.h>

/* Applies interactions [0, nsteps) sequentially against the packed table.
 *
 * Packed entry layout (see repro/engine/compiler.py):
 *   entry = ((na * k + nb) << 4) | ((dl + 2) << 1) | chg,  -1 == missing.
 *
 * Returns the number of interactions applied; a return value < nsteps
 * means entry (iu[ret], iv[ret]) is missing and must be filled by the
 * caller before resuming at offset ret.
 */
int64_t repro_run_block(int64_t *codes,
                        const int64_t *iu,
                        const int64_t *iv,
                        int64_t nsteps,
                        const int32_t *dpack,
                        int64_t k,
                        int32_t kshift,
                        uint8_t *seen,
                        int64_t step0,
                        int64_t *last_change_io,
                        int64_t *leaders_io)
{
    const int64_t kmask = k - 1;
    int64_t last = *last_change_io;
    int64_t leaders = *leaders_io;
    int64_t i;
    for (i = 0; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        int64_t a = codes[u];
        int64_t b = codes[v];
        int32_t pk = dpack[a * k + b];
        int64_t val, na, nb;
        if (pk < 0)
            break;
        val = (int64_t)(pk >> 4);
        na = val >> kshift;
        nb = val & kmask;
        codes[u] = na;
        codes[v] = nb;
        seen[na] = 1;
        seen[nb] = 1;
        if (pk & 1)
            last = step0 + i + 1;
        leaders += ((pk >> 1) & 7) - 2;
    }
    *last_change_io = last;
    *leaders_io = leaders;
    return i;
}

/* A shard-local run: repro_run_block against one shard's contiguous code
 * block, with an explicit per-draw global step number instead of the
 * step0 + i + 1 arithmetic.
 *
 * The sharded executor reorders commuting draws (all of one shard's
 * local interactions between two boundary events run back to back), so
 * a run's draws are not consecutive in the global stream; steps[i] is
 * draw i's true global step, and last-change bookkeeping records it
 * directly.  Callers pass *last_change_io = 0 and fold the result in
 * with max() — within a run steps[] is increasing, so the kernel's
 * final value is the run's last output change (or 0).
 *
 * Returns the number of interactions applied; a return value < nsteps
 * means entry (iu[ret], iv[ret]) is missing and must be filled by the
 * caller before resuming at offset ret (the v5 miss-resume discipline).
 */
int64_t repro_run_shard_block(int64_t *codes,
                              const int64_t *iu,
                              const int64_t *iv,
                              const int64_t *steps,
                              int64_t nsteps,
                              const int32_t *dpack,
                              int64_t k,
                              int32_t kshift,
                              uint8_t *seen,
                              int64_t *last_change_io,
                              int64_t *leaders_io)
{
    const int64_t kmask = k - 1;
    int64_t last = *last_change_io;
    int64_t leaders = *leaders_io;
    int64_t i;
    for (i = 0; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        int64_t a = codes[u];
        int64_t b = codes[v];
        int32_t pk = dpack[a * k + b];
        int64_t val, na, nb;
        if (pk < 0)
            break;
        val = (int64_t)(pk >> 4);
        na = val >> kshift;
        nb = val & kmask;
        codes[u] = na;
        codes[v] = nb;
        seen[na] = 1;
        seen[nb] = 1;
        if (pk & 1)
            last = steps[i];
        leaders += ((pk >> 1) & 7) - 2;
    }
    *last_change_io = last;
    *leaders_io = leaders;
    return i;
}

/* One whole routed chunk of the sharded executor, global draw order.
 *
 * The in-process sharded path needs no run regrouping at all: node
 * state is one global code array, so every draw — shard-local or
 * boundary — applies in exact draw order with global endpoint indices,
 * and the chunk is a single kernel call.  The only thing the executor
 * still owes the shard fabric is the exchange accounting for the
 * boundary events, so for each chunk position listed in boundary_pos
 * (ascending) the kernel records into applied[] whether that draw's
 * transition was non-null (na != a || nb != b; the packed tables encode
 * a null transition as the identity with zero deltas) — the caller
 * bumps the posted/delivered matrices from that flag vector in one
 * vectorised pass.
 *
 * start > 0 resumes mid-chunk after a miss-resume table fill; steps are
 * step0 + i + 1 (the chunk is contiguous in the global stream).
 * Returns the chunk position of the first missing entry, or nsteps.
 */
int64_t repro_run_sharded_chunk(int64_t *codes,
                                const int64_t *iu,
                                const int64_t *iv,
                                int64_t start,
                                int64_t nsteps,
                                int64_t step0,
                                const int64_t *boundary_pos,
                                int64_t n_boundary,
                                uint8_t *applied,
                                const int32_t *dpack,
                                int64_t k,
                                int32_t kshift,
                                uint8_t *seen,
                                int64_t *last_change_io,
                                int64_t *leaders_io)
{
    const int64_t kmask = k - 1;
    int64_t last = *last_change_io;
    int64_t leaders = *leaders_io;
    int64_t j = 0;
    int64_t i;
    while (j < n_boundary && boundary_pos[j] < start)
        j++;
    for (i = start; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        int64_t a = codes[u];
        int64_t b = codes[v];
        int32_t pk = dpack[a * k + b];
        int64_t val, na, nb;
        if (pk < 0)
            break;
        val = (int64_t)(pk >> 4);
        na = val >> kshift;
        nb = val & kmask;
        codes[u] = na;
        codes[v] = nb;
        seen[na] = 1;
        seen[nb] = 1;
        if (pk & 1)
            last = step0 + i + 1;
        leaders += ((pk >> 1) & 7) - 2;
        if (j < n_boundary && boundary_pos[j] == i) {
            applied[j] = (na != a || nb != b);
            j++;
        }
    }
    *last_change_io = last;
    *leaders_io = leaders;
    return i;
}

/* One block of the single-source epidemic (broadcast-time estimator).
 *
 * Spreads the informed flag across interactions until either the block is
 * exhausted or all n nodes are informed.  Returns the number of
 * interactions consumed; *count_io holds the updated informed count.
 */
int64_t repro_broadcast_block(uint8_t *informed,
                              const int64_t *iu,
                              const int64_t *iv,
                              int64_t nsteps,
                              int64_t n,
                              int64_t *count_io)
{
    int64_t count = *count_io;
    int64_t i;
    for (i = 0; i < nsteps; i++) {
        int64_t u = iu[i];
        int64_t v = iv[i];
        uint8_t a = informed[u];
        uint8_t b = informed[v];
        if (a != b) {
            informed[u] = 1;
            informed[v] = 1;
            count++;
            if (count == n) {
                i++;
                break;
            }
        }
    }
    *count_io = count;
    return i;
}

/* One certificate-cadence block of R replica-batched protocol runs.
 *
 * Replica r owns row r of the (nrep x n) codes matrix and row r of the
 * (nrep x nsteps) draws matrix — its private scheduler stream as raw
 * directed pair indices, decoded through the shared endpoint tables
 * du/dv (length 2m).  Rows are fully independent; each is applied
 * strictly in order with the same table entries and bookkeeping as
 * repro_run_block, so results are bit-identical to nrep separate runs.
 *
 * positions[r] is the per-replica resume offset (0 on entry).  A row
 * stops early at a missing table entry; the caller fills the pair
 * (possibly growing the tables), refreshes dpack/k/kshift/seen and
 * re-invokes — rows already at nsteps are skipped for free.
 */
void repro_run_multi(int64_t *codes,
                     const int64_t *draws,
                     const int64_t *du,
                     const int64_t *dv,
                     int64_t nrep,
                     int64_t nsteps,
                     int64_t n,
                     const int32_t *dpack,
                     int64_t k,
                     int32_t kshift,
                     uint8_t *seen,
                     int64_t step0,
                     int64_t *positions,
                     int64_t *last_change,
                     int64_t *leaders)
{
    const int64_t kmask = k - 1;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        int64_t *row_codes = codes + r * n;
        const int64_t *row = draws + r * nsteps;
        uint8_t *row_seen = seen + r * k;
        int64_t last = last_change[r];
        int64_t lead = leaders[r];
        int64_t i;
        for (i = positions[r]; i < nsteps; i++) {
            int64_t idx = row[i];
            int64_t u = du[idx];
            int64_t v = dv[idx];
            int64_t a = row_codes[u];
            int64_t b = row_codes[v];
            int32_t pk = dpack[a * k + b];
            int64_t val, na, nb;
            if (pk < 0)
                break;
            val = (int64_t)(pk >> 4);
            na = val >> kshift;
            nb = val & kmask;
            row_codes[u] = na;
            row_codes[v] = nb;
            row_seen[na] = 1;
            row_seen[nb] = 1;
            if (pk & 1)
                last = step0 + i + 1;
            lead += ((pk >> 1) & 7) - 2;
        }
        positions[r] = i;
        last_change[r] = last;
        leaders[r] = lead;
    }
}

/* One block of R replica-batched single-source epidemics.
 *
 * Each replica r owns row r of the (nrep x n) informed matrix and row r
 * of the (nrep x nsteps) draws matrix — its private scheduler stream as
 * raw ordered-pair indices, decoded here through the directed endpoint
 * tables du/dv (length 2m).  A replica finishes when either every node
 * is informed (stopmask == NULL) or a newly informed node has its
 * stopmask bit set (distance-k propagation; stopmask is nrep x n).
 * finish[r] is -1 on entry and is set to the 1-based offset of the
 * finishing interaction within this block; unfinished replicas consume
 * the whole block.  Returns the number of replicas that finished.
 */
int64_t repro_broadcast_multi(uint8_t *informed,
                              const int64_t *draws,
                              const int64_t *du,
                              const int64_t *dv,
                              int64_t nrep,
                              int64_t nsteps,
                              int64_t n,
                              const uint8_t *stopmask,
                              int64_t *counts,
                              int64_t *finish)
{
    int64_t done = 0;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        uint8_t *inf = informed + r * n;
        const uint8_t *stop = stopmask ? stopmask + r * n : 0;
        const int64_t *row = draws + r * nsteps;
        int64_t count = counts[r];
        int64_t i;
        for (i = 0; i < nsteps; i++) {
            int64_t u = du[row[i]];
            int64_t v = dv[row[i]];
            uint8_t a = inf[u];
            uint8_t b = inf[v];
            if (a != b) {
                int64_t fresh = a ? v : u;
                inf[u] = 1;
                inf[v] = 1;
                count++;
                if (stop ? stop[fresh] : (count == n)) {
                    finish[r] = i + 1;
                    done++;
                    break;
                }
            }
        }
        counts[r] = count;
    }
    return done;
}

/* One block of R replica-batched all-pairs influence processes.
 *
 * bits is (nrep x n x w) packed uint64 influencer bitsets: word j of node
 * u in replica r holds sources 64j..64j+63.  full is the w-word mask with
 * the low n bits set; full_flags (nrep x n) caches which nodes already
 * hold it so the word compare runs only on improving merges.  A replica
 * finishes when all n nodes are fully informed (counts[r] == n);
 * finish[r] gets the 1-based offset as above.  Returns the number of
 * replicas that finished in this block.
 */
int64_t repro_influence_multi(uint64_t *bits,
                              const int64_t *draws,
                              const int64_t *du,
                              const int64_t *dv,
                              int64_t nrep,
                              int64_t nsteps,
                              int64_t n,
                              int64_t w,
                              const uint64_t *full,
                              uint8_t *full_flags,
                              int64_t *counts,
                              int64_t *finish)
{
    int64_t done = 0;
    int64_t r;
    for (r = 0; r < nrep; r++) {
        uint64_t *rb = bits + r * n * w;
        uint8_t *flags = full_flags + r * n;
        const int64_t *row = draws + r * nsteps;
        int64_t count = counts[r];
        int64_t i;
        for (i = 0; i < nsteps; i++) {
            int64_t u = du[row[i]];
            int64_t v = dv[row[i]];
            uint8_t fu = flags[u];
            uint8_t fv = flags[v];
            uint64_t *pu, *pv;
            int64_t j;
            int alleq;
            if (fu && fv)
                continue;
            pu = rb + u * w;
            pv = rb + v * w;
            alleq = 1;
            for (j = 0; j < w; j++) {
                uint64_t merged = pu[j] | pv[j];
                pu[j] = merged;
                pv[j] = merged;
                if (merged != full[j])
                    alleq = 0;
            }
            if (alleq) {
                count += (fu == 0) + (fv == 0);
                flags[u] = 1;
                flags[v] = 1;
                if (count == n) {
                    finish[r] = i + 1;
                    done++;
                    break;
                }
            }
        }
        counts[r] = count;
    }
    return done;
}
"""

#: Kernel v6: the seeded pair streams move *inside* the kernel.  The C
#: code below is a bit-exact reimplementation of the exact NumPy stack
#: this package draws from — ``SeedSequence`` entropy pooling, the PCG64
#: (XSL-RR 128/64) bit generator including its buffered 32-bit half-word,
#: and ``Generator.integers``'s Lemire bounded sampling — plus the
#: SplitMix64 word folding of :mod:`repro.core.seeds` and the scheduler
#: dialect of :class:`repro.runtime.source.InteractionSource` (refills of
#: ``max(batch, minimum)`` edge draws followed by orientation draws).
#: Every stream produced here is bit-identical to the NumPy draws; the
#: differential contract lives in ``tests/test_kernel_rng.py`` and the
#: golden fixtures.  Replicas are fully independent, so the optional
#: pthread fan-out over the replica axis cannot change results for any
#: thread count.
_KERNEL_SOURCE_V6 = r"""
#include <string.h>
#include <pthread.h>

typedef unsigned __int128 repro_u128;

#define REPRO_RNG_WORDS 8
#define REPRO_SRC_WORDS 3
#define REPRO_MAX_THREADS 64

/* Epoch-runner row statuses (mirrored in repro.runtime.execute). */
#define REPRO_EPOCH_BUDGET 0
#define REPRO_EPOCH_BOUNDARY 1
#define REPRO_EPOCH_MISS 2

/* ---- SplitMix64 (the finalizer behind repro.core.seeds) ---------- */

uint64_t repro_splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/* derive_seed word folding: words[0] is the (pre-folded) base, the rest
 * are tag/index words already reduced to uint64 by the Python side's
 * word_to_int.  Must stay aligned with repro.core.seeds.derive_seed. */
uint64_t repro_derive_seed(const uint64_t *words, int64_t count)
{
    uint64_t state = repro_splitmix64(words[0]);
    int64_t i;
    for (i = 1; i < count; i++)
        state = repro_splitmix64(state ^ words[i]);
    return state & 0x7FFFFFFFFFFFFFFFULL;
}

/* ---- numpy SeedSequence (pool 4, entropy <= 2 uint32 words) ------ */

static void repro_seedseq_state(uint64_t seed, uint64_t out[4])
{
    uint32_t pool[4];
    uint32_t entropy[2];
    int nent = (seed >> 32) ? 2 : 1;
    uint32_t hash_const = 0x43b0d7e5u;
    int i, src, dst, w;
    entropy[0] = (uint32_t)seed;
    entropy[1] = (uint32_t)(seed >> 32);
    for (i = 0; i < 4; i++) {
        uint32_t value = (i < nent) ? entropy[i] : 0u;
        value ^= hash_const;
        hash_const *= 0x931e8875u;
        value *= hash_const;
        value ^= value >> 16;
        pool[i] = value;
    }
    for (src = 0; src < 4; src++) {
        for (dst = 0; dst < 4; dst++) {
            uint32_t value, result;
            if (src == dst)
                continue;
            value = pool[src];
            value ^= hash_const;
            hash_const *= 0x931e8875u;
            value *= hash_const;
            value ^= value >> 16;
            result = pool[dst] * 0xca01f9ddu - value * 0x4973f715u;
            result ^= result >> 16;
            pool[dst] = result;
        }
    }
    hash_const = 0x8b51f9ddu;
    src = 0;
    for (w = 0; w < 4; w++) {
        uint32_t half[2];
        for (i = 0; i < 2; i++) {
            uint32_t value = pool[src % 4];
            src++;
            value ^= hash_const;
            hash_const *= 0x58f38dedu;
            value *= hash_const;
            value ^= value >> 16;
            half[i] = value;
        }
        out[w] = (uint64_t)half[0] | ((uint64_t)half[1] << 32);
    }
}

/* ---- PCG64 (numpy's pcg_setseq_128_xsl_rr_64) -------------------- */

typedef struct {
    repro_u128 state;
    repro_u128 inc;
    uint32_t buf;
    uint32_t has;
} repro_pcg64;

#define REPRO_PCG_MULT \
    (((repro_u128)0x2360ed051fc65da4ULL << 64) | 0x4385df649fccf645ULL)

/* State rows are REPRO_RNG_WORDS uint64 each:
 * [state_hi, state_lo, inc_hi, inc_lo, has_uint32, uinteger, 0, 0] —
 * exactly the fields of numpy's PCG64 .state dict, so Python can export
 * a live Generator into a row and import it back bit for bit. */
static void repro_pcg64_load(const uint64_t *w, repro_pcg64 *p)
{
    p->state = ((repro_u128)w[0] << 64) | w[1];
    p->inc = ((repro_u128)w[2] << 64) | w[3];
    p->has = (uint32_t)w[4];
    p->buf = (uint32_t)w[5];
}

static void repro_pcg64_store(const repro_pcg64 *p, uint64_t *w)
{
    w[0] = (uint64_t)(p->state >> 64);
    w[1] = (uint64_t)p->state;
    w[2] = (uint64_t)(p->inc >> 64);
    w[3] = (uint64_t)p->inc;
    w[4] = p->has;
    w[5] = p->buf;
}

static uint64_t repro_pcg64_next64(repro_pcg64 *p)
{
    uint64_t hi, lo, x;
    unsigned rot;
    p->state = p->state * REPRO_PCG_MULT + p->inc;
    hi = (uint64_t)(p->state >> 64);
    lo = (uint64_t)p->state;
    x = hi ^ lo;
    rot = (unsigned)(p->state >> 122);
    return (x >> rot) | (x << ((64 - rot) & 63));
}

static uint32_t repro_pcg64_next32(repro_pcg64 *p)
{
    uint64_t v;
    if (p->has) {
        p->has = 0;
        return p->buf;
    }
    v = repro_pcg64_next64(p);
    p->buf = (uint32_t)(v >> 32);
    p->has = 1;
    return (uint32_t)v;
}

/* Seed one PCG64 per replica through SeedSequence(seed).generate_state(4):
 * words [0,1] form the 128-bit initial state, [2,3] the stream. */
void repro_pcg64_init(const uint64_t *seeds, int64_t nrep, uint64_t *rng_state)
{
    int64_t r;
    for (r = 0; r < nrep; r++) {
        uint64_t w[4];
        repro_pcg64 p;
        repro_u128 initstate, initseq;
        repro_seedseq_state(seeds[r], w);
        initstate = ((repro_u128)w[0] << 64) | w[1];
        initseq = ((repro_u128)w[2] << 64) | w[3];
        p.inc = (initseq << 1) | 1;
        p.state = p.inc; /* = 0 * MULT + inc: the first srandom step */
        p.state += initstate;
        p.state = p.state * REPRO_PCG_MULT + p.inc;
        p.has = 0;
        p.buf = 0;
        repro_pcg64_store(&p, rng_state + r * REPRO_RNG_WORDS);
    }
}

/* Raw 64-bit outputs (differential tests against PCG64.random_raw). */
void repro_pcg64_raw(uint64_t *rng_state, int64_t count, uint64_t *out)
{
    repro_pcg64 p;
    int64_t i;
    repro_pcg64_load(rng_state, &p);
    for (i = 0; i < count; i++)
        out[i] = repro_pcg64_next64(&p);
    repro_pcg64_store(&p, rng_state);
}

/* Generator.integers(0, rng + 1) — Lemire's bounded sampling with the
 * buffered 32-bit fast path, exactly as in numpy's distributions.c. */
static uint64_t repro_bounded64(repro_pcg64 *p, uint64_t rng)
{
    if (rng == 0)
        return 0;
    if (rng <= 0xFFFFFFFFULL) {
        uint32_t rng_excl, leftover;
        uint64_t m;
        if (rng == 0xFFFFFFFFULL)
            return repro_pcg64_next32(p);
        rng_excl = (uint32_t)rng + 1;
        m = (uint64_t)repro_pcg64_next32(p) * rng_excl;
        leftover = (uint32_t)m;
        if (leftover < rng_excl) {
            uint32_t threshold = ((uint32_t)(0xFFFFFFFFu - (uint32_t)rng)) % rng_excl;
            while (leftover < threshold) {
                m = (uint64_t)repro_pcg64_next32(p) * rng_excl;
                leftover = (uint32_t)m;
            }
        }
        return m >> 32;
    }
    if (rng == 0xFFFFFFFFFFFFFFFFULL)
        return repro_pcg64_next64(p);
    {
        uint64_t rng_excl = rng + 1;
        repro_u128 m = (repro_u128)repro_pcg64_next64(p) * rng_excl;
        uint64_t leftover = (uint64_t)m;
        if (leftover < rng_excl) {
            uint64_t threshold = (0xFFFFFFFFFFFFFFFFULL - rng) % rng_excl;
            while (leftover < threshold) {
                m = (repro_u128)repro_pcg64_next64(p) * rng_excl;
                leftover = (uint64_t)m;
            }
        }
        return (uint64_t)(m >> 64);
    }
}

/* integers(0, bound, size=count) into int64 (the directed dialect). */
void repro_bounded_fill(uint64_t *rng_state, uint64_t bound, int64_t count,
                        int64_t *out)
{
    repro_pcg64 p;
    int64_t i;
    uint64_t rng = bound - 1;
    repro_pcg64_load(rng_state, &p);
    for (i = 0; i < count; i++)
        out[i] = (int64_t)repro_bounded64(&p, rng);
    repro_pcg64_store(&p, rng_state);
}

/* ---- The scheduler dialect (InteractionSource._refill in C) ------ */

/* One refill: size = max(batch, minimum); all edge draws first, then all
 * orientation draws (the two-call order is part of the seeded-stream
 * definition); encoded as index = edge + (1 - orientation) * m. */
static int64_t repro_source_refill(repro_pcg64 *p, int64_t *buffer,
                                   int64_t batch, int64_t minimum, int64_t m)
{
    int64_t size = batch > minimum ? batch : minimum;
    uint64_t erng = (uint64_t)m - 1;
    int64_t i;
    for (i = 0; i < size; i++)
        buffer[i] = (int64_t)repro_bounded64(p, erng);
    for (i = 0; i < size; i++) {
        int64_t orient = (int64_t)repro_bounded64(p, 1);
        buffer[i] += (1 - orient) * m;
    }
    return size;
}

/* next_pair_indices(count) in C.  src_state is [cursor, fill, position];
 * buffer must hold max(batch, count) entries.  Bit-identical to the
 * Python InteractionSource on a static topology for any chunking. */
void repro_source_fill(uint64_t *rng_state, int64_t *src_state,
                       int64_t *buffer, int64_t m, int64_t batch,
                       int64_t count, int64_t *out)
{
    repro_pcg64 p;
    int64_t cursor = src_state[0];
    int64_t fill = src_state[1];
    int64_t position = src_state[2];
    int64_t filled = 0;
    repro_pcg64_load(rng_state, &p);
    while (filled < count) {
        int64_t available = fill - cursor;
        int64_t take;
        if (available == 0) {
            fill = repro_source_refill(&p, buffer, batch, count - filled, m);
            cursor = 0;
            available = fill;
        }
        take = available < count - filled ? available : count - filled;
        memcpy(out + filled, buffer + cursor, (size_t)take * sizeof(int64_t));
        cursor += take;
        filled += take;
        position += take;
    }
    repro_pcg64_store(&p, rng_state);
    src_state[0] = cursor;
    src_state[1] = fill;
    src_state[2] = position;
}

/* ---- The v6 epoch runner ----------------------------------------- */

/* Advance one replica until its next stop event: a certificate-cadence
 * boundary that needs a Python certificate check (BOUNDARY), a missing
 * transition-table entry (MISS; buffer[cursor] holds the undecoded pair
 * index, nothing consumed), or the step budget (BUDGET).  With precheck
 * set, boundaries where the kernel-maintained leader count is != 1 are
 * skipped — the certificate cannot hold there — so whole stretches of
 * the measurement run in one call.  Stream consumption (refill sizes and
 * draw order) is bit-identical to the Python InteractionSource fed
 * through the v5 per-block draws matrix. */
static void repro_run_epoch_row(
    int64_t *codes, uint64_t *rngw, int64_t *src, int64_t *buffer,
    const int64_t *du, const int64_t *dv, int64_t m,
    const int32_t *dpack, int64_t k, int32_t kshift, uint8_t *seen,
    int64_t batch, int64_t check_interval, int64_t max_steps,
    int64_t *step_io, int64_t *last_io, int64_t *lead_io, uint8_t *status,
    int32_t precheck)
{
    repro_pcg64 p;
    const int64_t kmask = k - 1;
    int64_t cursor = src[0];
    int64_t fill = src[1];
    int64_t position = src[2];
    int64_t step = *step_io;
    int64_t last = *last_io;
    int64_t lead = *lead_io;
    repro_pcg64_load(rngw, &p);
    while (step < max_steps) {
        int64_t block_end = (step / check_interval + 1) * check_interval;
        if (block_end > max_steps)
            block_end = max_steps;
        while (step < block_end) {
            int64_t idx, u, v, a, b, val, na, nb;
            int32_t pk;
            if (cursor >= fill) {
                fill = repro_source_refill(&p, buffer, batch, block_end - step, m);
                cursor = 0;
            }
            idx = buffer[cursor];
            u = du[idx];
            v = dv[idx];
            a = codes[u];
            b = codes[v];
            pk = dpack[a * k + b];
            if (pk < 0) {
                *status = REPRO_EPOCH_MISS;
                goto done;
            }
            cursor++;
            position++;
            val = (int64_t)(pk >> 4);
            na = val >> kshift;
            nb = val & kmask;
            codes[u] = na;
            codes[v] = nb;
            seen[na] = 1;
            seen[nb] = 1;
            step++;
            if (pk & 1)
                last = step;
            lead += ((pk >> 1) & 7) - 2;
        }
        if (!precheck || lead == 1) {
            *status = REPRO_EPOCH_BOUNDARY;
            goto done;
        }
    }
    *status = REPRO_EPOCH_BUDGET;
done:
    repro_pcg64_store(&p, rngw);
    src[0] = cursor;
    src[1] = fill;
    src[2] = position;
    *step_io = step;
    *last_io = last;
    *lead_io = lead;
}

typedef struct {
    int64_t *codes;
    uint64_t *rng_state;
    int64_t *src_state;
    int64_t *buffers;
    int64_t buf_cap;
    const int64_t *du;
    const int64_t *dv;
    int64_t m;
    int64_t n;
    const int32_t *dpack;
    int64_t k;
    int32_t kshift;
    uint8_t *seen;
    int64_t batch;
    int64_t check_interval;
    int64_t max_steps;
    int64_t *steps;
    int64_t *last_change;
    int64_t *leaders;
    uint8_t *status;
    int32_t precheck;
    int64_t lo;
    int64_t hi;
} repro_epoch_job;

static void *repro_epoch_worker(void *arg)
{
    repro_epoch_job *job = (repro_epoch_job *)arg;
    int64_t r;
    for (r = job->lo; r < job->hi; r++)
        repro_run_epoch_row(
            job->codes + r * job->n,
            job->rng_state + r * REPRO_RNG_WORDS,
            job->src_state + r * REPRO_SRC_WORDS,
            job->buffers + r * job->buf_cap,
            job->du, job->dv, job->m,
            job->dpack, job->k, job->kshift,
            job->seen + r * job->k,
            job->batch, job->check_interval, job->max_steps,
            job->steps + r, job->last_change + r, job->leaders + r,
            job->status + r, job->precheck);
    return 0;
}

/* Replica ranges are contiguous and every row touches only its own
 * state, so any thread count (including 1) produces identical output. */
void repro_run_epoch(int64_t *codes, uint64_t *rng_state, int64_t *src_state,
                     int64_t *buffers, int64_t buf_cap,
                     const int64_t *du, const int64_t *dv, int64_t m,
                     int64_t nrep, int64_t n,
                     const int32_t *dpack, int64_t k, int32_t kshift,
                     uint8_t *seen, int64_t batch, int64_t check_interval,
                     int64_t max_steps, int64_t *steps, int64_t *last_change,
                     int64_t *leaders, uint8_t *status, int32_t precheck,
                     int64_t n_threads)
{
    repro_epoch_job jobs[REPRO_MAX_THREADS];
    pthread_t tids[REPRO_MAX_THREADS];
    int created[REPRO_MAX_THREADS];
    repro_epoch_job shared;
    int64_t base, rem, lo;
    int64_t t;
    shared.codes = codes;
    shared.rng_state = rng_state;
    shared.src_state = src_state;
    shared.buffers = buffers;
    shared.buf_cap = buf_cap;
    shared.du = du;
    shared.dv = dv;
    shared.m = m;
    shared.n = n;
    shared.dpack = dpack;
    shared.k = k;
    shared.kshift = kshift;
    shared.seen = seen;
    shared.batch = batch;
    shared.check_interval = check_interval;
    shared.max_steps = max_steps;
    shared.steps = steps;
    shared.last_change = last_change;
    shared.leaders = leaders;
    shared.status = status;
    shared.precheck = precheck;
    if (n_threads > nrep)
        n_threads = nrep;
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads <= 1) {
        shared.lo = 0;
        shared.hi = nrep;
        repro_epoch_worker(&shared);
        return;
    }
    base = nrep / n_threads;
    rem = nrep % n_threads;
    lo = 0;
    for (t = 0; t < n_threads; t++) {
        jobs[t] = shared;
        jobs[t].lo = lo;
        lo += base + (t < rem ? 1 : 0);
        jobs[t].hi = lo;
        created[t] = 0;
        if (t > 0 && jobs[t].lo < jobs[t].hi)
            created[t] = pthread_create(&tids[t], 0, repro_epoch_worker, &jobs[t]) == 0;
    }
    repro_epoch_worker(&jobs[0]);
    for (t = 1; t < n_threads; t++) {
        if (created[t])
            pthread_join(tids[t], 0);
        else if (jobs[t].lo < jobs[t].hi)
            repro_epoch_worker(&jobs[t]); /* pthread_create failed: run inline */
    }
}

/* ---- Analytics epochs: in-kernel directed-dialect streams -------- */

/* One lockstep block of the single-source epidemic with draws generated
 * in-kernel (integers(0, bound) per step, the directed dialect).  A
 * finished replica keeps drawing to the end of the block — the numpy
 * path draws whole rows up front — so its exported generator state stays
 * bit-identical to the Python engine's. */
typedef struct {
    uint8_t *informed;
    uint64_t *rng_state;
    const int64_t *du;
    const int64_t *dv;
    uint64_t bound;
    int64_t block;
    int64_t n;
    const uint8_t *stopmask;
    int64_t *counts;
    int64_t *finish;
    int64_t lo;
    int64_t hi;
} repro_bcast_job;

static void *repro_bcast_worker(void *arg)
{
    repro_bcast_job *job = (repro_bcast_job *)arg;
    uint64_t rng = job->bound - 1;
    int64_t r;
    for (r = job->lo; r < job->hi; r++) {
        uint8_t *inf = job->informed + r * job->n;
        const uint8_t *stop = job->stopmask ? job->stopmask + r * job->n : 0;
        repro_pcg64 p;
        int64_t count = job->counts[r];
        int64_t fin = -1;
        int64_t i;
        repro_pcg64_load(job->rng_state + r * REPRO_RNG_WORDS, &p);
        for (i = 0; i < job->block; i++) {
            int64_t idx = (int64_t)repro_bounded64(&p, rng);
            int64_t u, v;
            uint8_t a, b;
            if (fin >= 0)
                continue; /* burn the rest of the block's draws */
            u = job->du[idx];
            v = job->dv[idx];
            a = inf[u];
            b = inf[v];
            if (a != b) {
                int64_t fresh = a ? v : u;
                inf[u] = 1;
                inf[v] = 1;
                count++;
                if (stop ? stop[fresh] : (count == job->n))
                    fin = i + 1;
            }
        }
        repro_pcg64_store(&p, job->rng_state + r * REPRO_RNG_WORDS);
        job->counts[r] = count;
        job->finish[r] = fin;
    }
    return 0;
}

void repro_broadcast_epoch(uint8_t *informed, uint64_t *rng_state,
                           const int64_t *du, const int64_t *dv,
                           uint64_t bound, int64_t nrep, int64_t block,
                           int64_t n, const uint8_t *stopmask,
                           int64_t *counts, int64_t *finish,
                           int64_t n_threads)
{
    repro_bcast_job jobs[REPRO_MAX_THREADS];
    pthread_t tids[REPRO_MAX_THREADS];
    int created[REPRO_MAX_THREADS];
    repro_bcast_job shared;
    int64_t base, rem, lo, t;
    shared.informed = informed;
    shared.rng_state = rng_state;
    shared.du = du;
    shared.dv = dv;
    shared.bound = bound;
    shared.block = block;
    shared.n = n;
    shared.stopmask = stopmask;
    shared.counts = counts;
    shared.finish = finish;
    if (n_threads > nrep)
        n_threads = nrep;
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads <= 1) {
        shared.lo = 0;
        shared.hi = nrep;
        repro_bcast_worker(&shared);
        return;
    }
    base = nrep / n_threads;
    rem = nrep % n_threads;
    lo = 0;
    for (t = 0; t < n_threads; t++) {
        jobs[t] = shared;
        jobs[t].lo = lo;
        lo += base + (t < rem ? 1 : 0);
        jobs[t].hi = lo;
        created[t] = 0;
        if (t > 0 && jobs[t].lo < jobs[t].hi)
            created[t] = pthread_create(&tids[t], 0, repro_bcast_worker, &jobs[t]) == 0;
    }
    repro_bcast_worker(&jobs[0]);
    for (t = 1; t < n_threads; t++) {
        if (created[t])
            pthread_join(tids[t], 0);
        else if (jobs[t].lo < jobs[t].hi)
            repro_bcast_worker(&jobs[t]);
    }
}

/* All-pairs influence block with in-kernel draws; same burn semantics. */
typedef struct {
    uint64_t *bits;
    uint64_t *rng_state;
    const int64_t *du;
    const int64_t *dv;
    uint64_t bound;
    int64_t block;
    int64_t n;
    int64_t w;
    const uint64_t *full;
    uint8_t *full_flags;
    int64_t *counts;
    int64_t *finish;
    int64_t lo;
    int64_t hi;
} repro_infl_job;

static void *repro_infl_worker(void *arg)
{
    repro_infl_job *job = (repro_infl_job *)arg;
    uint64_t rng = job->bound - 1;
    int64_t r;
    for (r = job->lo; r < job->hi; r++) {
        uint64_t *rb = job->bits + r * job->n * job->w;
        uint8_t *flags = job->full_flags + r * job->n;
        repro_pcg64 p;
        int64_t count = job->counts[r];
        int64_t fin = -1;
        int64_t i;
        repro_pcg64_load(job->rng_state + r * REPRO_RNG_WORDS, &p);
        for (i = 0; i < job->block; i++) {
            int64_t idx = (int64_t)repro_bounded64(&p, rng);
            int64_t u, v, j;
            uint8_t fu, fv;
            uint64_t *pu, *pv;
            int alleq;
            if (fin >= 0)
                continue;
            u = job->du[idx];
            v = job->dv[idx];
            fu = flags[u];
            fv = flags[v];
            if (fu && fv)
                continue;
            pu = rb + u * job->w;
            pv = rb + v * job->w;
            alleq = 1;
            for (j = 0; j < job->w; j++) {
                uint64_t merged = pu[j] | pv[j];
                pu[j] = merged;
                pv[j] = merged;
                if (merged != job->full[j])
                    alleq = 0;
            }
            if (alleq) {
                count += (fu == 0) + (fv == 0);
                flags[u] = 1;
                flags[v] = 1;
                if (count == job->n)
                    fin = i + 1;
            }
        }
        repro_pcg64_store(&p, job->rng_state + r * REPRO_RNG_WORDS);
        job->counts[r] = count;
        job->finish[r] = fin;
    }
    return 0;
}

void repro_influence_epoch(uint64_t *bits, uint64_t *rng_state,
                           const int64_t *du, const int64_t *dv,
                           uint64_t bound, int64_t nrep, int64_t block,
                           int64_t n, int64_t w, const uint64_t *full,
                           uint8_t *full_flags, int64_t *counts,
                           int64_t *finish, int64_t n_threads)
{
    repro_infl_job jobs[REPRO_MAX_THREADS];
    pthread_t tids[REPRO_MAX_THREADS];
    int created[REPRO_MAX_THREADS];
    repro_infl_job shared;
    int64_t base, rem, lo, t;
    shared.bits = bits;
    shared.rng_state = rng_state;
    shared.du = du;
    shared.dv = dv;
    shared.bound = bound;
    shared.block = block;
    shared.n = n;
    shared.w = w;
    shared.full = full;
    shared.full_flags = full_flags;
    shared.counts = counts;
    shared.finish = finish;
    if (n_threads > nrep)
        n_threads = nrep;
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads <= 1) {
        shared.lo = 0;
        shared.hi = nrep;
        repro_infl_worker(&shared);
        return;
    }
    base = nrep / n_threads;
    rem = nrep % n_threads;
    lo = 0;
    for (t = 0; t < n_threads; t++) {
        jobs[t] = shared;
        jobs[t].lo = lo;
        lo += base + (t < rem ? 1 : 0);
        jobs[t].hi = lo;
        created[t] = 0;
        if (t > 0 && jobs[t].lo < jobs[t].hi)
            created[t] = pthread_create(&tids[t], 0, repro_infl_worker, &jobs[t]) == 0;
    }
    repro_infl_worker(&jobs[0]);
    for (t = 1; t < n_threads; t++) {
        if (created[t])
            pthread_join(tids[t], 0);
        else if (jobs[t].lo < jobs[t].hi)
            repro_infl_worker(&jobs[t]);
    }
}
"""

_UNSET = object()
_cached_kernel = _UNSET

#: uint64 words per replica in a PCG64 state row (the fields of numpy's
#: ``PCG64().state`` dict: state hi/lo, inc hi/lo, has_uint32, uinteger,
#: plus two words of padding).
RNG_STATE_WORDS = 8
#: int64 words per replica in an InteractionSource state row
#: (cursor, fill, position).
SRC_STATE_WORDS = 3
#: Upper bound on the kernel's pthread fan-out (mirrors REPRO_MAX_THREADS).
MAX_KERNEL_THREADS = 64


def kernel_thread_count() -> int:
    """Replica-axis thread count requested via ``REPRO_KERNEL_THREADS``.

    Defaults to 1 (fully sequential).  Results are bit-identical for any
    value — threading only partitions independent replica rows — so this
    is purely a throughput dial.
    """
    raw = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, min(value, MAX_KERNEL_THREADS))


def _build_directory() -> str:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")
    os.makedirs(path, exist_ok=True)
    return path


def _extra_cflags():
    """Extra compiler flags from ``REPRO_KERNEL_CFLAGS`` (sanitizer builds)."""
    return os.environ.get("REPRO_KERNEL_CFLAGS", "").split()


def _compile_kernel():
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    build_dir = _build_directory()
    extra = _extra_cflags()
    tag = ""
    if extra:
        digest = hashlib.sha1(" ".join(extra).encode("utf-8")).hexdigest()[:8]
        tag = f"_{digest}"
    # Try the full v6 source first (pthreads + 128-bit arithmetic); fall
    # back to the standalone v5 function set if it does not build here.
    variants = (
        ("", _KERNEL_SOURCE_V5 + _KERNEL_SOURCE_V6, True),
        ("_compat", _KERNEL_SOURCE_V5, False),
    )
    for suffix, source, with_v6 in variants:
        src_path = os.path.join(build_dir, f"_kernel_v{_KERNEL_VERSION}{suffix}.c")
        so_path = os.path.join(build_dir, f"_kernel_v{_KERNEL_VERSION}{suffix}{tag}.so")
        try:
            if not os.path.exists(so_path):
                with open(src_path, "w", encoding="utf-8") as handle:
                    handle.write(source)
                tmp_path = so_path + f".tmp{os.getpid()}"
                subprocess.run(
                    [compiler, "-O2", "-shared", "-fPIC", "-pthread"]
                    + extra
                    + ["-o", tmp_path, src_path],
                    check=True,
                    capture_output=True,
                    timeout=180,
                )
                os.replace(tmp_path, so_path)
            library = ctypes.CDLL(so_path)
            return _bind_kernels(library, with_v6)
        except Exception:
            continue
    return None


def _bind_v6(library):
    """ctypes signatures for the v6 (in-kernel RNG) entry points."""
    splitmix64 = library.repro_splitmix64
    splitmix64.restype = ctypes.c_uint64
    splitmix64.argtypes = [ctypes.c_uint64]
    derive = library.repro_derive_seed
    derive.restype = ctypes.c_uint64
    derive.argtypes = [ctypes.c_void_p, ctypes.c_int64]  # words, count
    pcg64_init = library.repro_pcg64_init
    pcg64_init.restype = None
    pcg64_init.argtypes = [
        ctypes.c_void_p,  # seeds (nrep)
        ctypes.c_int64,  # nrep
        ctypes.c_void_p,  # rng_state (nrep x RNG_STATE_WORDS)
    ]
    pcg64_raw = library.repro_pcg64_raw
    pcg64_raw.restype = None
    pcg64_raw.argtypes = [
        ctypes.c_void_p,  # rng_state (one row)
        ctypes.c_int64,  # count
        ctypes.c_void_p,  # out (count)
    ]
    bounded_fill = library.repro_bounded_fill
    bounded_fill.restype = None
    bounded_fill.argtypes = [
        ctypes.c_void_p,  # rng_state (one row)
        ctypes.c_uint64,  # bound
        ctypes.c_int64,  # count
        ctypes.c_void_p,  # out (count)
    ]
    source_fill = library.repro_source_fill
    source_fill.restype = None
    source_fill.argtypes = [
        ctypes.c_void_p,  # rng_state (one row)
        ctypes.c_void_p,  # src_state (one row)
        ctypes.c_void_p,  # buffer (>= max(batch, count))
        ctypes.c_int64,  # m
        ctypes.c_int64,  # batch
        ctypes.c_int64,  # count
        ctypes.c_void_p,  # out (count)
    ]
    run_epoch = library.repro_run_epoch
    run_epoch.restype = None
    run_epoch.argtypes = [
        ctypes.c_void_p,  # codes (nrep x n)
        ctypes.c_void_p,  # rng_state (nrep x RNG_STATE_WORDS)
        ctypes.c_void_p,  # src_state (nrep x SRC_STATE_WORDS)
        ctypes.c_void_p,  # buffers (nrep x buf_cap)
        ctypes.c_int64,  # buf_cap
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # m
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen (nrep x k)
        ctypes.c_int64,  # batch
        ctypes.c_int64,  # check_interval
        ctypes.c_int64,  # max_steps
        ctypes.c_void_p,  # steps (nrep)
        ctypes.c_void_p,  # last_change (nrep)
        ctypes.c_void_p,  # leaders (nrep)
        ctypes.c_void_p,  # status (nrep)
        ctypes.c_int32,  # precheck
        ctypes.c_int64,  # n_threads
    ]
    broadcast_epoch = library.repro_broadcast_epoch
    broadcast_epoch.restype = None
    broadcast_epoch.argtypes = [
        ctypes.c_void_p,  # informed (nrep x n)
        ctypes.c_void_p,  # rng_state (nrep x RNG_STATE_WORDS)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_uint64,  # bound (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # block
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # stopmask (nrep x n) or None
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
        ctypes.c_int64,  # n_threads
    ]
    influence_epoch = library.repro_influence_epoch
    influence_epoch.restype = None
    influence_epoch.argtypes = [
        ctypes.c_void_p,  # bits (nrep x n x w)
        ctypes.c_void_p,  # rng_state (nrep x RNG_STATE_WORDS)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_uint64,  # bound (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # block
        ctypes.c_int64,  # n
        ctypes.c_int64,  # w
        ctypes.c_void_p,  # full (w)
        ctypes.c_void_p,  # full_flags (nrep x n)
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
        ctypes.c_int64,  # n_threads
    ]
    return {
        "splitmix64": splitmix64,
        "derive_seed": derive,
        "pcg64_init": pcg64_init,
        "pcg64_raw": pcg64_raw,
        "bounded_fill": bounded_fill,
        "source_fill": source_fill,
        "run_epoch": run_epoch,
        "broadcast_epoch": broadcast_epoch,
        "influence_epoch": influence_epoch,
    }


def _bind_kernels(library, with_v6):
    run_block = library.repro_run_block
    run_block.restype = ctypes.c_int64
    run_block.argtypes = [
        ctypes.c_void_p,  # codes
        ctypes.c_void_p,  # iu
        ctypes.c_void_p,  # iv
        ctypes.c_int64,  # nsteps
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen
        ctypes.c_int64,  # step0
        ctypes.POINTER(ctypes.c_int64),  # last_change_io
        ctypes.POINTER(ctypes.c_int64),  # leaders_io
    ]
    run_shard_block = library.repro_run_shard_block
    run_shard_block.restype = ctypes.c_int64
    run_shard_block.argtypes = [
        ctypes.c_void_p,  # codes (one shard's contiguous block)
        ctypes.c_void_p,  # iu (shard-local initiator indices)
        ctypes.c_void_p,  # iv (shard-local responder indices)
        ctypes.c_void_p,  # steps (per-draw global step numbers)
        ctypes.c_int64,  # nsteps
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen
        ctypes.POINTER(ctypes.c_int64),  # last_change_io
        ctypes.POINTER(ctypes.c_int64),  # leaders_io
    ]
    run_sharded_chunk = library.repro_run_sharded_chunk
    run_sharded_chunk.restype = ctypes.c_int64
    run_sharded_chunk.argtypes = [
        ctypes.c_void_p,  # codes (the global code array)
        ctypes.c_void_p,  # iu (global initiator indices, draw order)
        ctypes.c_void_p,  # iv (global responder indices, draw order)
        ctypes.c_int64,  # start (resume offset within the chunk)
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # step0
        ctypes.c_void_p,  # boundary_pos (ascending chunk positions)
        ctypes.c_int64,  # n_boundary
        ctypes.c_void_p,  # applied (out: non-null flag per boundary)
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen
        ctypes.POINTER(ctypes.c_int64),  # last_change_io
        ctypes.POINTER(ctypes.c_int64),  # leaders_io
    ]
    broadcast_block = library.repro_broadcast_block
    broadcast_block.restype = ctypes.c_int64
    broadcast_block.argtypes = [
        ctypes.c_void_p,  # informed
        ctypes.c_void_p,  # iu
        ctypes.c_void_p,  # iv
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.POINTER(ctypes.c_int64),  # count_io
    ]
    broadcast_multi = library.repro_broadcast_multi
    broadcast_multi.restype = ctypes.c_int64
    broadcast_multi.argtypes = [
        ctypes.c_void_p,  # informed (nrep x n)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # stopmask (nrep x n) or None
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
    ]
    run_multi = library.repro_run_multi
    run_multi.restype = None
    run_multi.argtypes = [
        ctypes.c_void_p,  # codes (nrep x n)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_void_p,  # dpack
        ctypes.c_int64,  # k
        ctypes.c_int32,  # kshift
        ctypes.c_void_p,  # seen (nrep x k)
        ctypes.c_int64,  # step0
        ctypes.c_void_p,  # positions (nrep)
        ctypes.c_void_p,  # last_change (nrep)
        ctypes.c_void_p,  # leaders (nrep)
    ]
    influence_multi = library.repro_influence_multi
    influence_multi.restype = ctypes.c_int64
    influence_multi.argtypes = [
        ctypes.c_void_p,  # bits (nrep x n x w)
        ctypes.c_void_p,  # draws (nrep x nsteps)
        ctypes.c_void_p,  # du (2m)
        ctypes.c_void_p,  # dv (2m)
        ctypes.c_int64,  # nrep
        ctypes.c_int64,  # nsteps
        ctypes.c_int64,  # n
        ctypes.c_int64,  # w
        ctypes.c_void_p,  # full (w)
        ctypes.c_void_p,  # full_flags (nrep x n)
        ctypes.c_void_p,  # counts (nrep)
        ctypes.c_void_p,  # finish (nrep)
    ]
    kernels = {
        "run_block": run_block,
        "run_shard_block": run_shard_block,
        "run_sharded_chunk": run_sharded_chunk,
        "broadcast_block": broadcast_block,
        "broadcast_multi": broadcast_multi,
        "influence_multi": influence_multi,
        "run_multi": run_multi,
    }
    if with_v6:
        kernels.update(_bind_v6(library))
    return kernels


def _kernels():
    global _cached_kernel
    if _cached_kernel is not _UNSET:
        return _cached_kernel
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        _cached_kernel = None
        return None
    try:
        _cached_kernel = _compile_kernel()
    except Exception:
        _cached_kernel = None
    return _cached_kernel


def _v6_kernels():
    """The v6 function table, or ``None`` when disabled or unbuilt.

    ``REPRO_DISABLE_NATIVE_V6`` is consulted on every call (not cached)
    so tests can force the v6→v5→NumPy fallback chain without rebuilding.
    """
    if os.environ.get("REPRO_DISABLE_NATIVE_V6"):
        return None
    kernels = _kernels()
    if kernels is None or "run_epoch" not in kernels:
        return None
    return kernels


def get_kernel():
    """The compiled protocol-stepping entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["run_block"]


def get_run_shard_kernel():
    """The shard-local block-run entry point (explicit step array), or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["run_shard_block"]


def get_run_sharded_chunk_kernel():
    """The whole-chunk sharded entry point (global indices), or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["run_sharded_chunk"]


def get_broadcast_kernel():
    """The compiled single-source-epidemic entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["broadcast_block"]


def get_broadcast_multi_kernel():
    """The compiled replica-batched epidemic entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["broadcast_multi"]


def get_influence_multi_kernel():
    """The compiled replica-batched influence entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["influence_multi"]


def get_run_multi_kernel():
    """The compiled replica-batched protocol-stepping entry point, or ``None``."""
    kernels = _kernels()
    return None if kernels is None else kernels["run_multi"]


def get_run_epoch_kernel():
    """The v6 whole-epoch protocol kernel (in-kernel streams), or ``None``."""
    kernels = _v6_kernels()
    return None if kernels is None else kernels["run_epoch"]


def get_broadcast_epoch_kernel():
    """The v6 epidemic kernel with in-kernel draws, or ``None``."""
    kernels = _v6_kernels()
    return None if kernels is None else kernels["broadcast_epoch"]


def get_influence_epoch_kernel():
    """The v6 all-pairs influence kernel with in-kernel draws, or ``None``."""
    kernels = _v6_kernels()
    return None if kernels is None else kernels["influence_epoch"]


def get_rng_kernels():
    """The v6 RNG/stream primitives for the differential tests, or ``None``.

    Keys: ``splitmix64``, ``derive_seed``, ``pcg64_init``, ``pcg64_raw``,
    ``bounded_fill``, ``source_fill``.
    """
    kernels = _v6_kernels()
    if kernels is None:
        return None
    return {
        name: kernels[name]
        for name in (
            "splitmix64",
            "derive_seed",
            "pcg64_init",
            "pcg64_raw",
            "bounded_fill",
            "source_fill",
        )
    }


def reset_kernel_cache() -> None:
    """Forget the cached kernel handle (tests toggling the env vars)."""
    global _cached_kernel
    _cached_kernel = _UNSET
