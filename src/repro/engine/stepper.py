"""Block execution of compiled protocols (single run).

A :class:`CompiledRun` holds the integer-coded configuration of one
execution and applies scheduler blocks against the packed tables of a
:class:`~repro.engine.compiler.CompiledProtocol`.  Three backends implement
the same sequential semantics:

``native``
    The ctypes C kernel (:mod:`repro.engine.native`); fastest, used
    whenever a system C compiler is available.

``vector``
    NumPy block application with a *conflict-splitting pass*: a block of
    interactions is partitioned into maximal segments in which no node
    occurs twice, each segment is applied with pure array indexing (gather
    states, one table fetch, scatter successors), and the packed entries
    are buffered so output changes, leader-count deltas and the
    distinct-state mask are recovered with whole-block array ops.  Because
    segments are node-disjoint and processed in order, the result is
    bit-identical to applying interactions one at a time.

``scalar``
    A tight Python loop over integer codes and the compiler's scalar
    cache, whose entries are pre-reduced to "exact no-op" or
    ``(successor codes, leader delta, output-changed)``.  On graphs with
    fewer than ~1k nodes the conflict segments are so short that fixed
    NumPy call overhead dominates, and this loop is the faster exact
    backend.

Bookkeeping (``last_output_change_step``, leader counts, the distinct-state
set and the optional leader trace) matches the reference simulator exactly;
``tests/test_engine_equivalence.py`` pins this down per backend.
"""

from __future__ import annotations

import ctypes
from typing import Hashable, List, Optional, Tuple

import numpy as np

from .compiler import CompiledProtocol, _SCALAR_STRIDE
from .native import get_kernel

#: Below this node count the scalar backend outruns NumPy fancy indexing
#: (conflict segments have expected length Θ(√n), so vectors are tiny).
VECTOR_MIN_NODES = 1024

_BACKENDS = ("native", "vector", "scalar")


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment, fastest first."""
    if get_kernel() is not None:
        return _BACKENDS
    return _BACKENDS[1:]


def segment_cuts(iu: np.ndarray, iv: np.ndarray) -> List[int]:
    """Conflict-splitting pass: cut a block into node-disjoint segments.

    Returns cut indices ``c_0=0 < c_1 < ... <= B`` such that within every
    half-open segment ``[c_k, c_{k+1})`` no node appears twice.  Greedy and
    maximal: a segment is cut exactly at the first interaction that reuses
    a node already touched in the segment, so the number of segments is
    minimal for left-to-right processing.
    """
    count = int(iu.shape[0])
    slots = np.empty(2 * count, dtype=np.int64)
    slots[0::2] = iu
    slots[1::2] = iv
    order = np.argsort(slots, kind="stable")
    sorted_nodes = slots[order]
    prev_slot = np.full(2 * count, -1, dtype=np.int64)
    same = sorted_nodes[1:] == sorted_nodes[:-1]
    prev_slot[order[1:][same]] = order[:-1][same]
    # Previous interaction (not slot) sharing a node; -1 >> 1 stays -1.
    prev_interaction = np.maximum(prev_slot[0::2], prev_slot[1::2]) >> 1
    cuts = [0]
    start = 0
    for index, prev in enumerate(prev_interaction.tolist()):
        if prev >= start:
            cuts.append(index)
            start = index
    cuts.append(count)
    return cuts


class CompiledRun:
    """One execution's integer-coded state plus exact bookkeeping.

    Parameters
    ----------
    compiled:
        The compiled protocol tables.
    initial_codes:
        Initial per-node state codes (``int64`` array of length ``n``).
    backend:
        ``"auto"`` (default) picks the fastest available exact backend;
        ``"native"`` / ``"vector"`` / ``"scalar"`` force one.
    record_trace / trace_every:
        Leader-trace checkpoints, matching the reference simulator's
        step-exact recording.  Unsupported by the native backend.
    """

    def __init__(
        self,
        compiled: CompiledProtocol,
        initial_codes: np.ndarray,
        backend: str = "auto",
        record_trace: bool = False,
        trace_every: int = 0,
    ) -> None:
        self.compiled = compiled
        self.n = int(initial_codes.shape[0])
        self.step = 0
        self.last_change = 0
        self.record_trace = bool(record_trace)
        self.trace_every = int(trace_every)
        if self.record_trace and self.trace_every < 1:
            raise ValueError("record_trace requires trace_every >= 1")
        self.trace: List[Tuple[int, int]] = []
        self.leader_count = compiled.leader_count(initial_codes)

        self._auto_promote = False
        if backend == "auto":
            kernel_ready = not record_trace and get_kernel() is not None
            if kernel_ready and compiled.tables_complete:
                # Fully compiled tables can never miss: go native directly.
                backend = "native"
            else:
                # Table misses cost ~25µs through the kernel's
                # stop-fill-resume cycle but only ~3µs in the scalar loop,
                # so start in a Python backend and promote to the kernel
                # once a whole block runs without discovering new pairs.
                self._auto_promote = kernel_ready
                backend = "vector" if self.n >= VECTOR_MIN_NODES else "scalar"
        if backend not in _BACKENDS:
            raise ValueError(f"unknown engine backend {backend!r}")
        if backend == "native":
            if get_kernel() is None:
                raise RuntimeError("native engine backend unavailable (no C compiler)")
            if record_trace:
                raise ValueError("the native backend does not record leader traces")
        self.backend = backend

        if self.record_trace:
            self.trace.append((0, self.leader_count))
            self.next_trace = self.trace_every

        if backend == "scalar":
            self.codes_list: List[int] = [int(c) for c in initial_codes]
            self._seen_set = set(self.codes_list)
        else:
            self.codes = np.ascontiguousarray(initial_codes, dtype=np.int64)
            if backend == "vector":
                self._seen_mask = np.zeros(compiled.stride, dtype=bool)
                self._seen_mask[self.codes] = True
            else:
                self._seen_u8 = np.zeros(compiled.stride, dtype=np.uint8)
                self._seen_u8[self.codes] = 1

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def apply_block(self, iu: np.ndarray, iv: np.ndarray) -> None:
        """Apply one scheduler block (ordered interaction arrays)."""
        if iu.shape[0] == 0:
            return
        if self.backend == "native":
            self._apply_native(iu, iv)
            return
        fills_before = self.compiled.filled_pairs
        if self.backend == "vector":
            self._apply_vector(iu, iv)
        else:
            self._apply_scalar(iu, iv)
        if self._auto_promote and self.compiled.filled_pairs == fills_before:
            self._promote_to_native()

    def _promote_to_native(self) -> None:
        """Switch a warmed-up auto run onto the C kernel."""
        compiled = self.compiled
        seen = np.zeros(compiled.stride, dtype=np.uint8)
        if self.backend == "scalar":
            self.codes = np.ascontiguousarray(self.codes_list, dtype=np.int64)
            seen[list(self._seen_set)] = 1
        else:
            seen[: self._seen_mask.shape[0]] = self._seen_mask
        self._seen_u8 = seen
        self.backend = "native"
        self._auto_promote = False

    def current_states(self) -> List[Hashable]:
        """Decode the configuration into protocol state objects."""
        if self.backend == "scalar":
            states = self.compiled.states
            return [states[c] for c in self.codes_list]
        return self.compiled.decode_codes(self.codes)

    def distinct_observed(self) -> int:
        """Number of distinct state values present at any point so far."""
        if self.backend == "scalar":
            return len(self._seen_set)
        if self.backend == "vector":
            return int(self._seen_mask.sum())
        return int(np.count_nonzero(self._seen_u8))

    def seen_codes_mask(self, minimum_length: int = 0) -> np.ndarray:
        """Boolean mask over codes observed so far (for merging)."""
        length = max(minimum_length, self.compiled.stride)
        mask = np.zeros(length, dtype=bool)
        if self.backend == "scalar":
            mask[list(self._seen_set)] = True
        elif self.backend == "vector":
            mask[: self._seen_mask.shape[0]] |= self._seen_mask
        else:
            mask[: self._seen_u8.shape[0]] |= self._seen_u8.astype(bool)
        return mask

    # ------------------------------------------------------------------
    # Scalar backend
    # ------------------------------------------------------------------
    def _apply_scalar(self, iu: np.ndarray, iv: np.ndarray) -> None:
        comp = self.compiled
        table = comp.scalar
        fill = comp.scalar_entry
        codes = self.codes_list
        seen_add = self._seen_set.add
        stride = _SCALAR_STRIDE
        step = self.step
        last = self.last_change
        leaders = self.leader_count
        tracing = self.record_trace
        if tracing:
            next_trace = self.next_trace
            trace_every = self.trace_every
            trace_append = self.trace.append
        for u, v in zip(iu.tolist(), iv.tolist()):
            step += 1
            a = codes[u]
            b = codes[v]
            try:
                entry = table[a * stride + b]
            except KeyError:
                entry = fill(a, b)
            if entry is not None:
                na, nb, dl, chg = entry
                codes[u] = na
                codes[v] = nb
                seen_add(na)
                seen_add(nb)
                if chg:
                    last = step
                leaders += dl
            if tracing and step >= next_trace:
                trace_append((step, leaders))
                next_trace += trace_every
        self.step = step
        self.last_change = last
        self.leader_count = leaders
        if tracing:
            self.next_trace = next_trace

    # ------------------------------------------------------------------
    # Vector backend (conflict-splitting)
    # ------------------------------------------------------------------
    def _apply_vector(self, iu: np.ndarray, iv: np.ndarray) -> None:
        comp = self.compiled
        block = int(iu.shape[0])
        codes = self.codes
        cuts = segment_cuts(iu, iv)
        packed_buffer = np.empty(block, dtype=np.int32)
        generation = comp.generation
        stride = comp.stride
        kshift = comp.kshift
        kmask = stride - 1
        flush_from = 0
        for index in range(len(cuts) - 1):
            left, right = cuts[index], cuts[index + 1]
            if left == right:
                continue
            seg_u = iu[left:right]
            seg_v = iv[left:right]
            packed = comp.lookup_block(codes[seg_u], codes[seg_v])
            if comp.generation != generation:
                # Table growth repacked entries; flush bookkeeping written
                # under the old stride before switching.
                self._flush_vector(packed_buffer[flush_from:left], stride, kshift, self.step + flush_from)
                flush_from = left
                generation = comp.generation
                stride = comp.stride
                kshift = comp.kshift
                kmask = stride - 1
            packed_buffer[left:right] = packed
            successors = packed >> 4
            codes[seg_u] = successors >> kshift
            codes[seg_v] = successors & kmask
        self._flush_vector(packed_buffer[flush_from:block], stride, kshift, self.step + flush_from)
        self.step += block

    def _flush_vector(self, packed: np.ndarray, stride: int, kshift: int, step_base: int) -> None:
        if packed.size == 0:
            return
        changed = np.nonzero(packed & 1)[0]
        if changed.size:
            self.last_change = step_base + int(changed[-1]) + 1
        leader_delta = ((packed >> 1) & 7) - 2
        if self.record_trace:
            counts = self.leader_count + np.cumsum(leader_delta)
            end_step = step_base + packed.size
            next_trace = self.next_trace
            while next_trace <= end_step:
                self.trace.append((next_trace, int(counts[next_trace - step_base - 1])))
                next_trace += self.trace_every
            self.next_trace = next_trace
            self.leader_count = int(counts[-1])
        else:
            self.leader_count += int(leader_delta.sum())
        mask = self._seen_mask
        if mask.shape[0] < stride:
            grown = np.zeros(stride, dtype=bool)
            grown[: mask.shape[0]] = mask
            self._seen_mask = mask = grown
        successors = packed >> 4
        mask[successors >> kshift] = True
        mask[successors & (stride - 1)] = True

    # ------------------------------------------------------------------
    # Native backend
    # ------------------------------------------------------------------
    def _apply_native(self, iu: np.ndarray, iv: np.ndarray) -> None:
        comp = self.compiled
        kernel = get_kernel()
        block = int(iu.shape[0])
        codes = self.codes
        iu = np.ascontiguousarray(iu, dtype=np.int64)
        iv = np.ascontiguousarray(iv, dtype=np.int64)
        last = ctypes.c_int64(self.last_change)
        leaders = ctypes.c_int64(self.leader_count)
        codes_ptr = codes.ctypes.data
        iu_ptr = iu.ctypes.data
        iv_ptr = iv.ctypes.data
        position = 0
        while position < block:
            seen = self._seen_u8
            if seen.shape[0] < comp.stride:
                grown = np.zeros(comp.stride, dtype=np.uint8)
                grown[: seen.shape[0]] = seen
                self._seen_u8 = seen = grown
            done = kernel(
                codes_ptr,
                iu_ptr + 8 * position,
                iv_ptr + 8 * position,
                block - position,
                comp.dpack.ctypes.data,
                comp.stride,
                comp.kshift,
                seen.ctypes.data,
                self.step + position,
                ctypes.byref(last),
                ctypes.byref(leaders),
            )
            position += int(done)
            if position < block:
                # The kernel stopped on a missing table entry: fill it
                # (possibly growing the tables) and resume in place.
                u = int(iu[position])
                v = int(iv[position])
                comp.scalar_entry(int(codes[u]), int(codes[v]))
        self.step += block
        self.last_change = int(last.value)
        self.leader_count = int(leaders.value)
