"""repro — Near-optimal leader election in population protocols on graphs.

A library-quality reproduction of Alistarh, Rybicki and Voitovych,
*"Near-Optimal Leader Election in Population Protocols on Graphs"*
(PODC 2022).  The package provides:

* :mod:`repro.core` — the stochastic population-protocol model (states,
  schedulers, simulator, exact stability checking),
* :mod:`repro.engine` — the compiled execution engine (protocol → lookup
  tables, vectorized/native stepping, stacked multi-replica runs),
* :mod:`repro.runtime` — the execution-plan runtime: the shared directed
  pair space, the unified interaction sampler behind every scheduler and
  stream, and plan compilation/execution for all consumer layers,
* :mod:`repro.graphs` — interaction-graph families, properties and the
  renitent constructions of Section 6,
* :mod:`repro.propagation` — broadcast / propagation-time dynamics
  (Section 3),
* :mod:`repro.walks` — classic and population-model random walks
  (Section 4.1),
* :mod:`repro.protocols` — the paper's leader-election protocols
  (Theorems 16, 21, 24 and the trivial star protocol),
* :mod:`repro.lowerbounds` — isolating covers, influencer multigraphs and
  surgery ingredients (Sections 6–7),
* :mod:`repro.analysis` — concentration bounds and scaling fits,
* :mod:`repro.experiments` — the benchmark harness that regenerates
  Table 1,
* :mod:`repro.orchestration` — declarative sweep scenarios, the sharded
  parallel runner and the persistent result store (``.repro_cache/``).

Quickstart::

    from repro import graphs, protocols, run_leader_election

    graph = graphs.erdos_renyi(100, p=0.3, rng=0)
    result = run_leader_election(protocols.TokenLeaderElection(), graph, rng=0)
    print(result.stabilization_step, result.leaders)
"""

from . import (
    analysis,
    core,
    engine,
    experiments,
    graphs,
    lowerbounds,
    orchestration,
    propagation,
    protocols,
    runtime,
    walks,
)
from .engine import run_replicas
from .core import (
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
    PopulationProtocol,
    RandomScheduler,
    SimulationResult,
    Simulator,
    run_leader_election,
)
from .graphs import Graph
from .protocols import (
    FastLeaderElection,
    IdentifierLeaderElection,
    StarLeaderElection,
    TokenLeaderElection,
)

__version__ = "1.2.0"

__all__ = [
    "FOLLOWER",
    "FastLeaderElection",
    "Graph",
    "IdentifierLeaderElection",
    "LEADER",
    "LeaderElectionProtocol",
    "PopulationProtocol",
    "RandomScheduler",
    "SimulationResult",
    "Simulator",
    "StarLeaderElection",
    "TokenLeaderElection",
    "__version__",
    "analysis",
    "core",
    "engine",
    "experiments",
    "graphs",
    "lowerbounds",
    "orchestration",
    "propagation",
    "protocols",
    "run_leader_election",
    "run_replicas",
    "runtime",
    "walks",
]
