"""Persistent result store for orchestrated sweeps.

Layout (everything lives under one cache root, ``.repro_cache/`` by
default)::

    .repro_cache/
      <scenario-name>-<hash12>/        # one directory per content hash
        scenario.json                  # full canonical config (provenance)
        units/
          p00-s00-t0000.json           # one work unit = one file
          p00-s00-t0001.json
          ...

The directory name embeds the first 12 hex digits of
:meth:`~repro.orchestration.scenario.Scenario.content_hash`, so *any*
config change (sizes, seeds, protocol parameters, engine, schema or
package version) lands in a fresh directory and can never be served a
stale result — invalidation is purely structural, there is no mtime or
dependency tracking to get wrong.

Each unit file carries the trial records of one shard plus enough
metadata to validate it, and a ``sha256`` checksum of the payload proper
so silent content corruption (bit rot, a buggy writer, deliberate chaos
injection) is detected on read, not trusted.  Files are written
atomically (temp file + ``fsync`` + ``os.replace``), so a sweep
interrupted mid-write — or a host losing power — leaves at worst one
missing unit; the next run recomputes exactly the missing shards and
reuses the finished ones.  A file that fails to parse, validate or
checksum is treated as a miss and *quarantined*: moved into the scenario
directory's ``quarantine/`` sidecar (with a line in ``quarantine.log``
saying why) rather than silently deleted, so corruption stays
diagnosable while the unit is transparently recomputed.

Concurrent writers are safe.  ``os.replace`` makes each individual write
atomic *within* a process, but the service layer can have several
independent processes (a job server and remote workers, or two servers
sharing one cache) complete the same unit at nearly the same time.  Each
unit write therefore takes a per-unit ``O_CREAT|O_EXCL`` lockfile first:
the loser of the race simply skips its write.  Skipping is sound because
unit payloads are a pure function of the content-hashed scenario config
and the unit key — whoever wins writes the same bytes.  A lockfile left
behind by a hard-killed writer is broken once it is older than
``lock_stale_seconds`` (constructor parameter, defaulting to the
``REPRO_STORE_LOCK_TTL`` environment variable when set).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..experiments.harness import TRIAL_RECORD_FIELDS
from .scenario import RESULT_SCHEMA_VERSION, Scenario

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Hex digits of the content hash used in directory names.
_HASH_PREFIX_LEN = 12

#: Age (seconds) past which another writer's lockfile is presumed dead
#: (its owner was hard-killed mid-write) and broken.  Unit writes take
#: well under a second, so a minute is conservative.
DEFAULT_LOCK_STALE_SECONDS = 60.0

#: Environment override for the lockfile TTL (seconds); lets deployments
#: with slow shared filesystems raise it without code changes.
LOCK_TTL_ENV = "REPRO_STORE_LOCK_TTL"


def unit_checksum(payload: Any) -> str:
    """Canonical sha256 of a unit payload (sorted, compact JSON).

    The single checksum definition shared by the store (at-rest
    integrity), the worker (checksumming result frames) and the server
    (verifying them): same payload, same digest, everywhere.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def valid_unit_payload(payload: Any, unit_key: str, n_trials: int) -> bool:
    """Whether ``payload`` is a well-formed stored/transmitted unit result.

    Shared by the store (validating files read back from disk) and the
    job server (validating payloads returned by remote workers before
    they are persisted or streamed to clients).
    """
    if not isinstance(payload, dict):
        return False
    if payload.get("version") != RESULT_SCHEMA_VERSION:
        return False
    if payload.get("unit") != unit_key:
        return False
    records = payload.get("records")
    if not isinstance(records, list) or len(records) != n_trials:
        return False
    for record in records:
        if not isinstance(record, dict):
            return False
        if any(fieldname not in record for fieldname in TRIAL_RECORD_FIELDS):
            return False
    return True


def _atomic_write_json(path: Path, payload: Any, prefix: str, **dump_kwargs: Any) -> None:
    """Write JSON via a same-directory temp file + ``fsync`` + ``os.replace``.

    The fsync pair (file data before the rename, directory entry after)
    is what upgrades "atomic against concurrent readers" to "durable
    against power loss": without it a crash shortly after ``os.replace``
    can surface a correctly-named file with truncated contents.
    """
    descriptor, temp_name = tempfile.mkstemp(prefix=prefix, suffix=".tmp", dir=str(path.parent))
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, **dump_kwargs)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        try:
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:
            return  # platform without directory fds: rename is still atomic
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
    except BaseException:
        try:
            os.remove(temp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Filesystem-backed store of per-unit trial records.

    Parameters
    ----------
    root:
        Cache root directory.  Created lazily on the first write; reads
        from a non-existent root simply miss.
    lock_stale_seconds:
        Age past which a concurrent writer's per-unit lockfile is
        presumed abandoned (hard-killed owner) and broken.  ``None``
        (the default) reads the ``REPRO_STORE_LOCK_TTL`` environment
        variable, falling back to :data:`DEFAULT_LOCK_STALE_SECONDS`.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        lock_stale_seconds: Optional[float] = None,
    ) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        if lock_stale_seconds is None:
            raw = os.environ.get(LOCK_TTL_ENV)
            try:
                lock_stale_seconds = (
                    float(raw) if raw else DEFAULT_LOCK_STALE_SECONDS
                )
            except ValueError:
                lock_stale_seconds = DEFAULT_LOCK_STALE_SECONDS
        if lock_stale_seconds <= 0:
            raise ValueError("lock_stale_seconds must be positive")
        self.lock_stale_seconds = float(lock_stale_seconds)
        # Scenario dirs whose scenario.json this instance already verified,
        # so per-unit writes do not re-read the provenance file every time.
        self._config_written: set = set()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def scenario_dir(self, scenario: Scenario) -> Path:
        """Directory all of ``scenario``'s units live in."""
        digest = scenario.content_hash()[:_HASH_PREFIX_LEN]
        return self.root / f"{scenario.name}-{digest}"

    def unit_path(self, scenario: Scenario, unit_key: str) -> Path:
        """File path of one work unit's records."""
        return self.scenario_dir(scenario) / "units" / f"{unit_key}.json"

    def quarantine_dir(self, scenario: Scenario) -> Path:
        """Sidecar directory corrupt unit files are moved into."""
        return self.scenario_dir(scenario) / "quarantine"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def load_unit(self, scenario: Scenario, unit_key: str, n_trials: int) -> Optional[Dict[str, Any]]:
        """The stored payload for ``unit_key``, or ``None`` on miss.

        A corrupt, checksum-mismatched or schema-invalid file is
        quarantined and reported as a miss, so callers recompute instead
        of crashing (or worse, trusting garbage).  The returned payload
        has the at-rest ``sha256`` envelope stripped — it is exactly the
        payload that was saved.
        """
        path = self.unit_path(scenario, unit_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._quarantine(path, f"unparseable: {error}")
            return None
        if not isinstance(record, dict):
            self._quarantine(path, "not a JSON object")
            return None
        payload = dict(record)
        stored_digest = payload.pop("sha256", None)
        if stored_digest != unit_checksum(payload):
            reason = (
                "missing content checksum"
                if stored_digest is None
                else "content checksum mismatch"
            )
            self._quarantine(path, reason)
            return None
        if not self._valid_payload(payload, unit_key, n_trials):
            self._quarantine(path, "invalid unit payload")
            return None
        return payload

    @staticmethod
    def _valid_payload(payload: Any, unit_key: str, n_trials: int) -> bool:
        return valid_unit_payload(payload, unit_key, n_trials)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad unit file into the sidecar dir, logging why.

        Unit files live in ``<scenario-dir>/units/``, so the sidecar is
        a sibling of ``units/``.  Falls back to plain deletion if the
        move itself fails (read-only sidecar, cross-device surprise) —
        a bad file must never be served again, diagnosability is the
        bonus, not the invariant.
        """
        sidecar = path.parent.parent / "quarantine"
        try:
            sidecar.mkdir(parents=True, exist_ok=True)
            os.replace(path, sidecar / path.name)
            with open(sidecar / "quarantine.log", "a", encoding="utf-8") as handle:
                handle.write(f"{path.name}\t{reason}\n")
        except OSError:
            self._discard(path)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save_unit(self, scenario: Scenario, unit_key: str, payload: Dict[str, Any]) -> Path:
        """Atomically persist one unit's payload; returns the final path.

        Idempotent under concurrent writers: the write is guarded by a
        per-unit ``O_EXCL`` lockfile, and a process that loses the race
        returns without writing (the winner persists identical bytes —
        payloads are pure functions of the content-hashed config, which
        is also why two workers completing a re-queued unit can never
        tear the stored result).
        """
        path = self.unit_path(scenario, unit_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_scenario_config(scenario)
        lock_path = path.parent / (path.name + ".lock")
        if not self._acquire_lock(lock_path):
            return path
        # The at-rest record is the payload plus its own content
        # checksum; load_unit strips and verifies it symmetrically.
        record = dict(payload)
        record["sha256"] = unit_checksum(payload)
        try:
            _atomic_write_json(
                path, record, prefix=f".{unit_key}.", sort_keys=True, separators=(",", ":")
            )
        finally:
            self._release_lock(lock_path)
        return path

    def _acquire_lock(self, lock_path: Path) -> bool:
        """Take the per-unit write lock; ``False`` = a live writer owns it."""
        for attempt in range(2):
            try:
                descriptor = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if attempt == 0 and self._lock_is_stale(lock_path):
                    # Abandoned by a hard-killed writer: break it and retry
                    # once (losing a second race to another breaker is fine
                    # — they will write the same bytes we would have).
                    self._discard(lock_path)
                    continue
                return False
            except OSError:
                # Unlockable filesystem: fall back to the plain atomic write.
                return True
            try:
                os.write(descriptor, f"{os.getpid()}\n".encode("ascii"))
            finally:
                os.close(descriptor)
            return True
        return False

    def _lock_is_stale(self, lock_path: Path) -> bool:
        try:
            age = time.time() - os.stat(lock_path).st_mtime
        except OSError:
            return False
        return age > self.lock_stale_seconds

    @staticmethod
    def _release_lock(lock_path: Path) -> None:
        try:
            os.remove(lock_path)
        except OSError:
            pass

    def _write_scenario_config(self, scenario: Scenario) -> None:
        path = self.scenario_dir(scenario) / "scenario.json"
        if path in self._config_written:
            return
        if path.exists():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    json.load(handle)
                self._config_written.add(path)
                return
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                pass  # truncated by a hard kill: rewrite below
        path.parent.mkdir(parents=True, exist_ok=True)
        provenance = {
            "config": scenario.config_dict(),
            "content_hash": scenario.content_hash(),
            "result_schema": RESULT_SCHEMA_VERSION,
        }
        _atomic_write_json(path, provenance, prefix=".scenario.", sort_keys=True, indent=2)
        self._config_written.add(path)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stored_unit_keys(self, scenario: Scenario) -> List[str]:
        """Unit keys currently on disk for ``scenario`` (no validation)."""
        units_dir = self.scenario_dir(scenario) / "units"
        if not units_dir.is_dir():
            return []
        return sorted(path.stem for path in units_dir.glob("*.json"))

    def discard_scenario(self, scenario: Scenario) -> None:
        """Drop every stored unit of ``scenario`` (force a full recompute)."""
        shutil.rmtree(self.scenario_dir(scenario), ignore_errors=True)
