"""Sharded scenario execution: serial, parallel and cached.

The runner decomposes a :class:`~repro.orchestration.scenario.Scenario`
into **work units** — one unit covers ``trials_per_shard`` consecutive
trials of one (protocol, size) cell — compiles each pending unit into a
self-contained :class:`UnitPlan` (workload + graph seed, declarative
protocol and schedule configs, engine choice and the explicit per-trial
scheduler seeds), and executes the plans the result store cannot serve,
either in-process or fanned out over a ``multiprocessing`` pool.  All
seed derivation happens once, in the parent, when the plans are built;
workers execute what they are shipped instead of re-deriving
spec/engine/schedule per unit, and the actual trial execution goes
through the same :mod:`repro.runtime` plans as direct harness calls.

Bit-identity is the design invariant.  Trial ``t`` of cell ``(p, i)``
always runs with scheduler seed ``trial_seed(measure_seed(seed, i), t)``
and a graph built from ``graph_seed(seed, i)`` (see
:mod:`repro.core.seeds`); a unit plan is a pure function of (scenario
config, unit bounds).  Shard boundaries, worker counts and cache state
therefore change *where* a trial executes, never its result, and the
aggregate of any execution plan equals the serial plan's byte for byte
(:meth:`ScenarioResult.canonical_json`).  The serial path and
:func:`~repro.experiments.harness.sweep_protocol_over_sizes` share the
same derivation, so orchestrated sweeps also match direct harness calls
measurement for measurement.

Worker processes are started with the ``fork`` method where the platform
offers it: the parent compiles each protocol's transition tables once and
warms the process-wide compilation cache, and forked children inherit the
packed numpy tables copy-on-write — no per-worker recompilation and
nothing to serialise.  On spawn-only platforms each worker compiles its
own tables on first use (slower start, same results).
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.seeds import graph_seed, measure_seed, trial_seed
from ..experiments.harness import (
    DegenerateSweepError,
    Measurement,
    ProtocolSpec,
    SweepResult,
    default_step_budget,
    measurement_from_records,
    run_trials_with_seeds,
    trial_record_from_result,
)
from ..experiments.workloads import get_workload
from ..graphs.graph import Graph
from .scenario import (
    RESULT_SCHEMA_VERSION,
    ProtocolConfig,
    Scenario,
    ScheduleConfig,
    _freeze,
    _thaw,
)
from .store import ResultStore


@dataclass(frozen=True)
class WorkUnit:
    """One shard: trials ``[trial_lo, trial_hi)`` of one (protocol, size) cell."""

    spec_index: int
    size_index: int
    shard_index: int
    trial_lo: int
    trial_hi: int

    @property
    def key(self) -> str:
        """Stable identifier, also the cache file stem."""
        return f"p{self.spec_index:02d}-s{self.size_index:02d}-t{self.shard_index:04d}"

    @property
    def n_trials(self) -> int:
        return self.trial_hi - self.trial_lo


def build_work_units(scenario: Scenario) -> List[WorkUnit]:
    """The scenario's deterministic work decomposition, in serial order."""
    units: List[WorkUnit] = []
    shard = scenario.trials_per_shard
    for spec_index in range(len(scenario.protocols)):
        for size_index in range(len(scenario.sizes)):
            for shard_index, lo in enumerate(range(0, scenario.repetitions, shard)):
                units.append(
                    WorkUnit(
                        spec_index=spec_index,
                        size_index=size_index,
                        shard_index=shard_index,
                        trial_lo=lo,
                        trial_hi=min(lo + shard, scenario.repetitions),
                    )
                )
    return units


#: Per-process graph memo.  With trials_per_shard=1 every trial is its own
#: work unit, and sampled families (random-regular, geometric) pay a
#: rejection loop per build.  Graphs are deterministic in exactly
#: (workload, size, graph seed), so that triple is the key — scenario
#: variants (different repetitions, engine, shard size) share entries.
_GRAPH_CACHE: Dict[Tuple[str, int, int], Graph] = {}
_GRAPH_CACHE_LIMIT = 64


def _build_graph(scenario: Scenario, size_index: int) -> Graph:
    seed = graph_seed(scenario.seed, size_index)
    key = (scenario.workload, scenario.sizes[size_index], seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        if len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
            _GRAPH_CACHE.clear()
        graph = get_workload(scenario.workload).build(scenario.sizes[size_index], seed=seed)
        _GRAPH_CACHE[key] = graph
    return graph


@dataclass(frozen=True)
class UnitPlan:
    """One shard's fully resolved execution plan, as plain data.

    Built once in the parent by :func:`build_unit_plans` — which is where
    *all* seed derivation happens — and shipped verbatim to worker
    processes: a worker materialises the graph, spec and topology
    schedule from these fields and hands the explicit ``run_seeds`` to
    the runtime, re-deriving nothing.  Every field is JSON-native, so a
    unit plan is cheap to pickle and independent of the scenario object
    that produced it.
    """

    unit_key: str
    trial_lo: int
    trial_hi: int
    workload: str
    size: int
    graph_seed: int
    protocol: Tuple[Tuple[str, Any], ...]  # (builder, params) — ProtocolConfig form
    run_seeds: Tuple[int, ...]
    engine: str
    backend: str
    step_budget_multiplier: float
    schedule: Optional[Tuple[Tuple[str, Any], ...]] = None  # ScheduleConfig form
    schedule_seed: int = 0
    #: Replica-axis kernel threads for the runtime executor; ``None``
    #: defers to ``REPRO_KERNEL_THREADS``.  A throughput dial only —
    #: results are bit-identical for any value (hence not part of the
    #: unit's identity or the scenario content hash).
    threads: Optional[int] = None
    #: Shard count for the partitioned executor (:mod:`repro.sharding`);
    #: like ``threads``, a capacity dial only — never part of the unit's
    #: identity.
    shards: Optional[int] = None
    #: Shard-worker process count for the sharded executor's fork-based
    #: pool (``None``/``0`` = in-process); a throughput dial only —
    #: byte-identical for any value, never part of the unit's identity.
    shard_workers: Optional[int] = None

    def build_graph(self) -> Graph:
        """The unit's interaction graph (served from the process memo)."""
        key = (self.workload, self.size, self.graph_seed)
        graph = _GRAPH_CACHE.get(key)
        if graph is None:
            if len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
                _GRAPH_CACHE.clear()
            graph = get_workload(self.workload).build(self.size, seed=self.graph_seed)
            _GRAPH_CACHE[key] = graph
        return graph

    def build_spec(self) -> ProtocolSpec:
        builder, params = self.protocol
        return ProtocolConfig(builder=builder, params=tuple(params)).build_spec()


def build_unit_plans(
    scenario: Scenario, units: Sequence[WorkUnit]
) -> List[UnitPlan]:
    """Compile work units into self-contained plans (all seeds derived here)."""
    plans: List[UnitPlan] = []
    for unit in units:
        measure_base = measure_seed(scenario.seed, unit.size_index)
        protocol = scenario.protocols[unit.spec_index]
        plans.append(
            UnitPlan(
                unit_key=unit.key,
                trial_lo=unit.trial_lo,
                trial_hi=unit.trial_hi,
                workload=scenario.workload,
                size=scenario.sizes[unit.size_index],
                graph_seed=graph_seed(scenario.seed, unit.size_index),
                protocol=(protocol.builder, tuple(protocol.params)),
                run_seeds=tuple(
                    trial_seed(measure_base, index)
                    for index in range(unit.trial_lo, unit.trial_hi)
                ),
                engine=scenario.engine,
                backend=scenario.backend,
                step_budget_multiplier=scenario.step_budget_multiplier,
                schedule=(
                    (scenario.schedule.kind, tuple(scenario.schedule.params))
                    if scenario.schedule is not None
                    else None
                ),
                schedule_seed=scenario.schedule_seed(unit.size_index),
                threads=scenario.threads,
                shards=scenario.shards,
                shard_workers=scenario.shard_workers,
            )
        )
    return plans


def unit_plan_to_wire(plan: UnitPlan) -> Dict[str, Any]:
    """The JSON-native wire form of a unit plan.

    This is what the service layer (:mod:`repro.service`) ships to remote
    workers instead of a pickle: every field is plain JSON, and
    :func:`unit_plan_from_wire` reconstructs an equal :class:`UnitPlan`
    (tuples restored), so a remote worker executes exactly the plan a
    fork-worker would have received.
    """
    builder, params = plan.protocol
    return {
        "unit": plan.unit_key,
        "trials": [plan.trial_lo, plan.trial_hi],
        "workload": plan.workload,
        "size": plan.size,
        "graph_seed": plan.graph_seed,
        "protocol": {"builder": builder, "params": [[k, _thaw(v)] for k, v in params]},
        "run_seeds": list(plan.run_seeds),
        "engine": plan.engine,
        "backend": plan.backend,
        "step_budget_multiplier": plan.step_budget_multiplier,
        "schedule": (
            None
            if plan.schedule is None
            else {
                "kind": plan.schedule[0],
                "params": [[k, _thaw(v)] for k, v in plan.schedule[1]],
            }
        ),
        "schedule_seed": plan.schedule_seed,
        "threads": plan.threads,
        "shards": plan.shards,
        "shard_workers": plan.shard_workers,
    }


def unit_plan_from_wire(wire: Dict[str, Any]) -> UnitPlan:
    """Rebuild a :class:`UnitPlan` from :func:`unit_plan_to_wire` output."""
    protocol = wire["protocol"]
    schedule = wire.get("schedule")
    return UnitPlan(
        unit_key=str(wire["unit"]),
        trial_lo=int(wire["trials"][0]),
        trial_hi=int(wire["trials"][1]),
        workload=str(wire["workload"]),
        size=int(wire["size"]),
        graph_seed=int(wire["graph_seed"]),
        protocol=(
            str(protocol["builder"]),
            tuple((str(k), _freeze(v)) for k, v in protocol["params"]),
        ),
        run_seeds=tuple(int(seed) for seed in wire["run_seeds"]),
        engine=str(wire["engine"]),
        backend=str(wire["backend"]),
        step_budget_multiplier=float(wire["step_budget_multiplier"]),
        schedule=(
            None
            if schedule is None
            else (
                str(schedule["kind"]),
                tuple((str(k), _freeze(v)) for k, v in schedule["params"]),
            )
        ),
        schedule_seed=int(wire.get("schedule_seed", 0)),
        threads=(int(wire["threads"]) if wire.get("threads") is not None else None),
        shards=(int(wire["shards"]) if wire.get("shards") is not None else None),
        shard_workers=(
            int(wire["shard_workers"]) if wire.get("shard_workers") is not None else None
        ),
    )


def unit_payload(plan: UnitPlan, results: Sequence[Any], state_space: Optional[int]) -> Dict[str, Any]:
    """Serialise one executed unit's results into its JSON-native payload.

    The single serialisation point shared by the in-process runner, the
    multiprocessing pool and the remote service workers — the payload is
    exactly what the result store persists and what travels back over the
    service wire, so every placement produces identical bytes.
    """
    return {
        "version": RESULT_SCHEMA_VERSION,
        "unit": plan.unit_key,
        "trials": [plan.trial_lo, plan.trial_hi],
        "records": [trial_record_from_result(result) for result in results],
        "state_space": state_space,
    }


def execute_unit_plan(plan: UnitPlan) -> Dict[str, Any]:
    """Run one unit plan and return its JSON-native payload."""
    graph = plan.build_graph()
    spec = plan.build_spec()
    schedule = None
    if plan.schedule is not None:
        kind, params = plan.schedule
        schedule = ScheduleConfig(kind=kind, params=tuple(params)).build(
            graph, plan.schedule_seed
        )
    results, state_space = run_trials_with_seeds(
        spec,
        graph,
        plan.run_seeds,
        max_steps=default_step_budget(graph, multiplier=plan.step_budget_multiplier),
        engine=plan.engine,
        backend=plan.backend,
        schedule=schedule,
        threads=plan.threads,
        shards=plan.shards,
        shard_workers=plan.shard_workers,
    )
    return unit_payload(plan, results, state_space)


def _worker_execute(plan: UnitPlan) -> Tuple[str, Dict[str, Any]]:
    """Pool entry point: execute one shipped unit plan."""
    return plan.unit_key, execute_unit_plan(plan)


def _pool_context() -> multiprocessing.context.BaseContext:
    # Prefer fork only on Linux, where it is the platform default and safe:
    # children inherit the warmed compilation cache copy-on-write.  macOS
    # lists fork as available but forking a process with initialized
    # BLAS/Objective-C runtimes is unsafe there (hence its spawn default);
    # respect the platform default everywhere else.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _warm_compilation_cache(plans: Sequence[UnitPlan]) -> None:
    """Compile each pending protocol's tables once before forking workers."""
    from ..engine.compiler import ProtocolCompilationError, compilation_worthwhile, get_compiled

    seen: set = set()
    for plan in plans:
        cell = (plan.protocol, plan.size, plan.graph_seed)
        if cell in seen:
            continue
        seen.add(cell)
        graph = plan.build_graph()
        protocol = plan.build_spec().factory(graph, plan.run_seeds[0])
        if not compilation_worthwhile(protocol):
            continue
        try:
            get_compiled(protocol)
        except ProtocolCompilationError:
            pass


@dataclass
class ScenarioResult:
    """Aggregated outcome of one orchestrated scenario run.

    ``cache_hits`` / ``executed_units`` describe how the run was served;
    they are provenance, not part of the canonical result.
    """

    scenario: Scenario
    sweeps: List[SweepResult]
    total_units: int
    cache_hits: int
    executed_units: int
    jobs: int
    wall_time_seconds: float

    def sweep_for(self, protocol_name: str) -> SweepResult:
        """The sweep of one protocol by its spec name."""
        for sweep in self.sweeps:
            if sweep.protocol_name == protocol_name:
                return sweep
        known = ", ".join(sweep.protocol_name for sweep in self.sweeps)
        raise KeyError(f"no sweep for {protocol_name!r}; have: {known}")

    def to_canonical_dict(self) -> Dict[str, Any]:
        """Deterministic, execution-plan-independent view of the results.

        Contains only measured values and the scenario identity — no wall
        times, worker counts or cache statistics — so any two runs of the
        same scenario (serial, parallel, cached) produce equal dicts.
        """
        sweeps = []
        for sweep in self.sweeps:
            try:
                fit = sweep.fit()
                fit_dict: Optional[Dict[str, float]] = {
                    "exponent": fit.exponent,
                    "log_exponent": fit.log_exponent,
                    "constant": fit.constant,
                    "r_squared": fit.r_squared,
                }
            except DegenerateSweepError:
                fit_dict = None
            sweeps.append(
                {
                    "protocol": sweep.protocol_name,
                    "workload": sweep.workload_name,
                    "sizes": list(sweep.sizes),
                    "per_size": [_measurement_dict(m) for m in sweep.measurements],
                    "fit": fit_dict,
                }
            )
        return {
            "scenario": self.scenario.config_dict(),
            "content_hash": self.scenario.content_hash(),
            "sweeps": sweeps,
        }

    def canonical_json(self) -> str:
        """Canonical JSON of :meth:`to_canonical_dict` (byte-comparable)."""
        return json.dumps(self.to_canonical_dict(), sort_keys=True, separators=(",", ":"))


def _measurement_dict(measurement: Measurement) -> Dict[str, Any]:
    stats = measurement.stabilization_steps
    return {
        "graph": measurement.graph_name,
        "n": measurement.n_nodes,
        "m": measurement.n_edges,
        "mean_steps": stats.mean,
        "std_steps": stats.std,
        "q90_steps": stats.q90,
        "certified_mean_steps": measurement.certified_steps.mean,
        "success_rate": measurement.success_rate,
        "max_states_observed": measurement.max_states_observed,
        "state_space_size": measurement.state_space_size,
        "n_trials": stats.n_samples,
    }


def run_scenario(
    scenario: Scenario,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    store: Optional[ResultStore] = None,
) -> ScenarioResult:
    """Execute ``scenario``, reusing stored shards and sharding the rest.

    Parameters
    ----------
    scenario:
        The declarative sweep to run.
    jobs:
        Worker processes.  ``1`` runs every unit in-process, in serial
        order; any value produces bit-identical aggregates.
    cache:
        When true (default), finished units are read from / written to the
        result store, so re-runs are instant and interrupted sweeps
        resume.  ``False`` neither reads nor writes ``.repro_cache/``.
    cache_dir / store:
        Override the cache root, or inject a prepared
        :class:`~repro.orchestration.store.ResultStore` (``store`` wins).
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    scenario.validate()
    start_time = time.perf_counter()
    active_store: Optional[ResultStore] = None
    if cache:
        active_store = store if store is not None else ResultStore(cache_dir)

    units = build_work_units(scenario)
    payloads: Dict[str, Dict[str, Any]] = {}
    pending: List[WorkUnit] = []
    for unit in units:
        stored = (
            active_store.load_unit(scenario, unit.key, unit.n_trials)
            if active_store is not None
            else None
        )
        if stored is not None:
            payloads[unit.key] = stored
        else:
            pending.append(unit)
    cache_hits = len(payloads)

    if pending:
        plans = build_unit_plans(scenario, pending)
        worker_count = min(jobs, len(pending))

        def finished(unit_key: str, payload: Dict[str, Any]) -> None:
            # Persist each unit the moment it completes, so an interrupted
            # sweep keeps every finished shard and the next run resumes.
            if active_store is not None:
                active_store.save_unit(scenario, unit_key, payload)
            payloads[unit_key] = payload

        if worker_count > 1:
            _warm_compilation_cache(plans)
            with _pool_context().Pool(processes=worker_count) as pool:
                # imap_unordered: units persist the moment any worker
                # finishes them (ordered imap would buffer completions
                # behind a straggler, losing them to an interrupt).
                # Aggregation sorts by trial bounds, so order is free.
                for unit_key, payload in pool.imap_unordered(
                    _worker_execute, plans, chunksize=1
                ):
                    finished(unit_key, payload)
        else:
            for plan in plans:
                finished(plan.unit_key, execute_unit_plan(plan))

    sweeps = aggregate_unit_payloads(scenario, units, payloads)
    return ScenarioResult(
        scenario=scenario,
        sweeps=sweeps,
        total_units=len(units),
        cache_hits=cache_hits,
        executed_units=len(pending),
        jobs=jobs,
        wall_time_seconds=time.perf_counter() - start_time,
    )


def aggregate_unit_payloads(
    scenario: Scenario, units: Sequence[WorkUnit], payloads: Dict[str, Dict[str, Any]]
) -> List[SweepResult]:
    """Fold unit payloads into per-protocol sweeps, in global trial order.

    Shared by the local runner and the service client
    (:class:`repro.service.client.ServiceClient`), so a scenario streamed
    back from a job server aggregates through exactly the code path a
    local run uses — the byte-identity invariant rests on this.
    """
    specs = scenario.protocol_specs()
    graphs = [_build_graph(scenario, index) for index in range(len(scenario.sizes))]
    by_cell: Dict[Tuple[int, int], List[WorkUnit]] = {}
    for unit in units:
        by_cell.setdefault((unit.spec_index, unit.size_index), []).append(unit)

    sweeps: List[SweepResult] = []
    for spec_index, spec in enumerate(specs):
        measurements: List[Measurement] = []
        for size_index, graph in enumerate(graphs):
            cell_units = sorted(
                by_cell[(spec_index, size_index)], key=lambda unit: unit.trial_lo
            )
            records: List[dict] = []
            state_space: Optional[int] = None
            for unit in cell_units:
                payload = payloads[unit.key]
                records.extend(payload["records"])
                if state_space is None:
                    state_space = payload.get("state_space")
            measurements.append(
                measurement_from_records(spec.name, graph, records, state_space)
            )
        sweeps.append(
            SweepResult(
                protocol_name=spec.name,
                workload_name=scenario.workload,
                sizes=list(scenario.sizes),
                measurements=measurements,
            )
        )
    return sweeps
