"""Parallel experiment orchestration: scenarios, sharded runs, result store.

This package is the layer between the execution engine and the
experiment drivers.  It makes Monte-Carlo sweeps

* **declarative** — a :class:`~repro.orchestration.scenario.Scenario`
  describes a whole sweep (workload, size grid, protocols, trial count,
  budgets, engine) as plain data, collected in a registry
  (:mod:`repro.orchestration.registry`),
* **parallel** — :func:`~repro.orchestration.runner.run_scenario` shards
  trials into deterministic per-shard seed streams and fans them out over
  worker processes, with a serial path that is bit-identical shard for
  shard,
* **persistent** — finished shards land in a content-hash-keyed store
  under ``.repro_cache/`` (:mod:`repro.orchestration.store`), so
  re-running a sweep is instant and interrupted sweeps resume where they
  stopped.

See ``docs/ORCHESTRATION.md`` for the scenario schema, the cache layout
and the invalidation rules.
"""

from .registry import available_scenarios, get_scenario, register_scenario
from .runner import (
    ScenarioResult,
    UnitPlan,
    WorkUnit,
    aggregate_unit_payloads,
    build_unit_plans,
    build_work_units,
    execute_unit_plan,
    run_scenario,
    unit_plan_from_wire,
    unit_plan_to_wire,
)
from .scenario import (
    RESULT_SCHEMA_VERSION,
    ProtocolConfig,
    Scenario,
    ScenarioError,
    ScheduleConfig,
    default_protocol_configs,
)
from .store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ProtocolConfig",
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "Scenario",
    "ScenarioError",
    "ScheduleConfig",
    "ScenarioResult",
    "UnitPlan",
    "WorkUnit",
    "aggregate_unit_payloads",
    "available_scenarios",
    "build_unit_plans",
    "build_work_units",
    "default_protocol_configs",
    "execute_unit_plan",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "unit_plan_from_wire",
    "unit_plan_to_wire",
]
