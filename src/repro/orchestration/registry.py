"""The scenario registry: every named workload the orchestrator can run.

Scenarios are registered as data (see
:mod:`repro.orchestration.scenario`); this module declares the built-in
catalogue:

* ``table1-*`` — the paper's Table 1 row groups, re-registered through
  the orchestrator so ``repro-popsim sweep`` / ``run_scenario`` replace
  the old ad-hoc per-family drivers,
* a set of workloads beyond Table 1 (hypercubes, tori at larger sizes,
  preferential-attachment and geometric graphs) that exercise regimes the
  paper only covers asymptotically,
* ``clique-n100`` — the single-size, many-trial scenario the
  orchestrator-scaling benchmark shards across workers.

Sizes and repetition counts are chosen so a full sweep of any one
scenario stays in the seconds-to-minutes range on a laptop; pass
``--sizes`` / ``--repetitions`` overrides (or
:meth:`Scenario.with_overrides`) to scale up.
"""

from __future__ import annotations

from typing import Dict, List

from .scenario import ProtocolConfig, Scenario, ScheduleConfig, default_protocol_configs

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (refusing silent overwrites)."""
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises ``KeyError`` with suggestions."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")
    return _REGISTRY[name]


def available_scenarios() -> List[str]:
    """Names of all registered scenarios."""
    return sorted(_REGISTRY)


_TOKEN_ONLY = (ProtocolConfig("token"),)
_STAR_ONLY = (ProtocolConfig("star"),)


# ----------------------------------------------------------------------
# Table 1 row groups, re-registered through the orchestrator
# ----------------------------------------------------------------------
register_scenario(
    Scenario(
        name="table1-clique",
        description="Table 1 'Cliques': Θ(n log n) identifier/fast vs Θ(n²) token",
        workload="clique",
        sizes=(16, 24, 36, 52),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="table1-cycle",
        description="Table 1 'Regular, low conductance': cycles, B(G), H(G) ∈ Θ(n²)",
        workload="cycle",
        sizes=(12, 18, 24),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="table1-dense-random",
        description="Table 1 'Dense random': G(n, 1/2) conditioned on connectivity",
        workload="dense-gnp",
        sizes=(16, 24, 36),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="table1-regular",
        description="Table 1 'Regular': random 4-regular expanders",
        workload="random-regular",
        sizes=(16, 24, 36),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="table1-torus",
        description="Table 1 'Regular': 2-D tori, B(G) ∈ Θ(n^{3/2})",
        workload="torus",
        sizes=(16, 36, 64),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="table1-stars",
        description="Table 1 'Stars': the trivial O(1)-state protocol",
        workload="star",
        sizes=(16, 32, 64),
        protocols=_STAR_ONLY,
        repetitions=5,
    )
)
register_scenario(
    Scenario(
        name="table1-renitent",
        description="Table 1 'Renitent': Lemma 38 four-copies construction, B ∈ Θ(n²)",
        workload="renitent-star",
        sizes=(48, 64, 96),
        repetitions=2,
        step_budget_multiplier=120.0,
    )
)

# ----------------------------------------------------------------------
# Beyond Table 1
# ----------------------------------------------------------------------
register_scenario(
    Scenario(
        name="hypercube-expander",
        description="Hypercubes: log-degree expander regime between cliques and tori",
        workload="hypercube",
        sizes=(16, 32, 64, 128),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="torus-large",
        description="2-D tori past the Table 1 grid (diffusive broadcast regime)",
        workload="torus",
        sizes=(64, 100, 144, 196),
        protocols=_TOKEN_ONLY,
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="pref-attach-hubs",
        description="Preferential-attachment graphs: scale-free hubs between star and G(n,p)",
        workload="pref-attach",
        sizes=(16, 24, 36, 52),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="geometric-sensors",
        description="Random geometric graphs: the original mobile-sensor motivation",
        workload="geometric",
        sizes=(24, 36, 52),
        repetitions=3,
    )
)
register_scenario(
    Scenario(
        name="torus-million",
        description="Million-node 2-D torus, token protocol on the sharded engine (capacity demo)",
        workload="torus",
        sizes=(1_000_000,),
        protocols=_TOKEN_ONLY,
        repetitions=1,
        # The point is capacity, not convergence: ~150k steps of a
        # 10^6-node torus demonstrate the memory-bounded path without
        # taking hours (multiplier·n²·log n + 10_000).
        step_budget_multiplier=1e-8,
        shards=8,
    )
)
register_scenario(
    Scenario(
        name="clique-n100",
        description="Single-size clique n=100, token protocol — the parallel-scaling workload",
        workload="clique",
        sizes=(100,),
        protocols=_TOKEN_ONLY,
        repetitions=8,
    )
)

# ----------------------------------------------------------------------
# Dynamic topologies (time-varying interaction graphs)
# ----------------------------------------------------------------------
# All four run the constant-state token protocol, whose stability
# certificate is topology-independent; the `workload` graph names the
# node universe and supplies the default budgets, while the schedule
# decides which edges are active at each step.
register_scenario(
    Scenario(
        name="dynamic-epoch-mix",
        description="Epoch-switching clique→cycle→star topology (repeating)",
        workload="clique",
        sizes=(16, 24, 36),
        protocols=_TOKEN_ONLY,
        repetitions=3,
        schedule=ScheduleConfig(
            "epochs",
            (("workloads", ("clique", "cycle", "star")), ("epoch_length", 1024)),
        ),
    )
)
register_scenario(
    Scenario(
        name="dynamic-edge-churn",
        description="Bernoulli edge churn over G(n, 1/2): 70% of edges survive each epoch",
        workload="dense-gnp",
        sizes=(16, 24, 36),
        protocols=_TOKEN_ONLY,
        repetitions=3,
        step_budget_multiplier=90.0,
        schedule=ScheduleConfig(
            "edge-churn", (("keep_probability", 0.7), ("epoch_length", 512))
        ),
    )
)
register_scenario(
    Scenario(
        name="dynamic-torus-flicker",
        description="Edge churn over a 2-D torus: diffusive broadcast under link failures",
        workload="torus",
        sizes=(16, 36, 64),
        protocols=_TOKEN_ONLY,
        repetitions=3,
        step_budget_multiplier=120.0,
        schedule=ScheduleConfig(
            "edge-churn", (("keep_probability", 0.8), ("epoch_length", 512))
        ),
    )
)
register_scenario(
    Scenario(
        name="dynamic-grow",
        description="Node churn: the clique grows 50%→75%→100% of n, then holds",
        workload="clique",
        sizes=(16, 24, 36),
        protocols=_TOKEN_ONLY,
        repetitions=3,
        schedule=ScheduleConfig(
            "node-churn",
            (("fractions", (0.5, 0.75, 1.0)), ("epoch_length", 1024), ("repeat", False)),
        ),
    )
)
