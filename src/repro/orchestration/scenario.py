"""Declarative experiment scenarios.

A :class:`Scenario` is a complete, *data-only* description of one
Monte-Carlo sweep: which graph family, which size grid, which protocols
(by builder name + parameters), how many trials, what step budget, which
engine.  Because a scenario is plain data it can be

* hashed into a stable cache key (:meth:`Scenario.content_hash`) for the
  persistent result store,
* pickled/rebuilt cheaply in worker processes by the parallel runner,
* listed, composed and overridden from the CLI without touching code.

The protocol builder names (``token``, ``identifier``, ``fast``,
``star``) map onto the spec builders in
:mod:`repro.experiments.harness`; their keyword parameters travel with
the scenario and are part of the cache key.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.seeds import derive_seed
from ..dynamics.schedule import (
    EdgeChurnSchedule,
    EpochSchedule,
    NodeChurnSchedule,
    TopologySchedule,
)
from ..experiments.harness import (
    ProtocolSpec,
    fast_protocol_spec,
    identifier_protocol_spec,
    star_protocol_spec,
    token_protocol_spec,
)
from ..experiments.workloads import get_workload
from ..graphs.graph import Graph

#: Bump when the meaning of persisted results changes (record schema,
#: execution semantics).  Part of every scenario content hash, so stale
#: cache entries become unreachable rather than silently wrong.  Last
#: bump (v3): trial records gained a ``wall_time_seconds`` provenance
#: field (measured values are unchanged — the runtime refactor preserves
#: every seeded stream bit for bit); v2-era cache directories are simply
#: left behind and recomputed on first use.  See docs/ORCHESTRATION.md,
#: "Result schema migrations".
RESULT_SCHEMA_VERSION = 3

_SPEC_BUILDERS = {
    "token": token_protocol_spec,
    "identifier": identifier_protocol_spec,
    "fast": fast_protocol_spec,
    "star": star_protocol_spec,
}


class ScenarioError(ValueError):
    """A scenario is malformed or references unknown components."""


@dataclass(frozen=True)
class ProtocolConfig:
    """Declarative protocol choice: a builder name plus keyword parameters.

    Parameters are canonicalised against the builder's signature: omitted
    keywords are filled with the builder's defaults and unknown keywords
    are rejected.  Semantically identical configs (``ProtocolConfig("fast")``
    vs. one spelling out the defaults) therefore compare — and hash —
    equal, while a change to a builder default changes every affected
    scenario's content hash, as a semantic change must.
    """

    builder: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.builder not in _SPEC_BUILDERS:
            known = ", ".join(sorted(_SPEC_BUILDERS))
            raise ScenarioError(
                f"unknown protocol builder {self.builder!r}; known builders: {known}"
            )
        signature = inspect.signature(_SPEC_BUILDERS[self.builder])
        canonical = {
            name: parameter.default for name, parameter in signature.parameters.items()
        }
        for key, value in self.params:
            if key not in canonical:
                raise ScenarioError(
                    f"protocol builder {self.builder!r} has no parameter {key!r}; "
                    f"accepts: {', '.join(sorted(canonical)) or '(none)'}"
                )
            canonical[key] = value
        object.__setattr__(self, "params", tuple(sorted(canonical.items())))

    def build_spec(self) -> ProtocolSpec:
        """Instantiate the concrete :class:`ProtocolSpec`."""
        return _SPEC_BUILDERS[self.builder](**dict(self.params))

    def as_dict(self) -> Dict[str, Any]:
        return {"builder": self.builder, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, config: Mapping[str, Any]) -> "ProtocolConfig":
        return cls(
            builder=str(config["builder"]),
            params=tuple(sorted(dict(config.get("params", {})).items())),
        )

    @classmethod
    def from_spec(cls, spec: ProtocolSpec) -> "ProtocolConfig":
        """Recover the declarative form of a spec built by a known builder."""
        if spec.spec_config is None:
            raise ScenarioError(
                f"protocol spec {spec.name!r} was built from a raw factory and has "
                "no declarative form; build it via token/identifier/fast/star "
                "spec builders to orchestrate it"
            )
        builder, params = spec.spec_config
        return cls(builder=builder, params=tuple(params))


def default_protocol_configs() -> Tuple[ProtocolConfig, ...]:
    """The declarative form of the three Table 1 protocols."""
    return (
        ProtocolConfig("token"),
        ProtocolConfig("identifier"),
        ProtocolConfig("fast"),
    )


# ----------------------------------------------------------------------
# Declarative topology schedules
# ----------------------------------------------------------------------
def _epochs_schedule(
    base_graph: Graph,
    seed: int,
    workloads: Tuple[str, ...] = ("clique", "cycle", "star"),
    epoch_length: int = 2048,
    repeat: bool = True,
) -> TopologySchedule:
    """Epoch-switching sequence of workload graphs at the base graph's size.

    Every phase workload must produce a graph on exactly the base graph's
    node count (clique / cycle / star / path do; size-rounding families
    such as torus generally do not and are rejected by the schedule).
    """
    n = base_graph.n_nodes
    graphs = []
    for index, name in enumerate(workloads):
        graphs.append(get_workload(name).build(n, seed=derive_seed(seed, "phase", index)))
    return EpochSchedule.from_graphs(graphs, epoch_length=int(epoch_length), repeat=bool(repeat))


def _edge_churn_schedule(
    base_graph: Graph,
    seed: int,
    keep_probability: float = 0.7,
    epoch_length: int = 1024,
    require_connected: bool = False,
) -> TopologySchedule:
    """Bernoulli edge churn over the scenario's workload graph."""
    return EdgeChurnSchedule(
        base_graph,
        keep_probability=float(keep_probability),
        epoch_length=int(epoch_length),
        seed=seed,
        require_connected=bool(require_connected),
    )


def _node_churn_schedule(
    base_graph: Graph,
    seed: int,
    fractions: Tuple[float, ...] = (0.5, 0.75, 1.0),
    epoch_length: int = 1024,
    repeat: bool = False,
) -> TopologySchedule:
    """Grow/shrink node churn over prefixes of the workload graph."""
    n = base_graph.n_nodes
    counts = [max(2, min(n, int(round(float(fraction) * n)))) for fraction in fractions]
    return NodeChurnSchedule(
        base_graph, counts, epoch_length=int(epoch_length), repeat=bool(repeat)
    )


_SCHEDULE_BUILDERS = {
    "epochs": _epochs_schedule,
    "edge-churn": _edge_churn_schedule,
    "node-churn": _node_churn_schedule,
}


def _freeze(value: Any) -> Any:
    """Lists → tuples recursively, so canonical params stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Tuples → lists recursively (the JSON-native form)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class ScheduleConfig:
    """Declarative topology schedule: a builder kind plus parameters.

    The concrete :class:`~repro.dynamics.schedule.TopologySchedule` is
    materialised per (graph, seed) at execution time via :meth:`build`;
    the config itself is plain data, so it travels to worker processes
    and is hashed into scenario cache keys exactly like
    :class:`ProtocolConfig`.  Parameters are canonicalised against the
    builder signature (defaults filled in, unknown keys rejected), so
    semantically identical configs hash identically and a changed builder
    default invalidates affected cache entries.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _SCHEDULE_BUILDERS:
            known = ", ".join(sorted(_SCHEDULE_BUILDERS))
            raise ScenarioError(
                f"unknown schedule kind {self.kind!r}; known kinds: {known}"
            )
        signature = inspect.signature(_SCHEDULE_BUILDERS[self.kind])
        canonical = {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if name not in ("base_graph", "seed")
        }
        for key, value in self.params:
            if key not in canonical:
                raise ScenarioError(
                    f"schedule kind {self.kind!r} has no parameter {key!r}; "
                    f"accepts: {', '.join(sorted(canonical)) or '(none)'}"
                )
            canonical[key] = _freeze(value)
        object.__setattr__(self, "params", tuple(sorted(canonical.items())))

    def build(self, base_graph: Graph, seed: int) -> TopologySchedule:
        """Materialise the schedule for one (graph, seed) pair."""
        return _SCHEDULE_BUILDERS[self.kind](base_graph, seed, **dict(self.params))

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": {k: _thaw(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, config: Mapping[str, Any]) -> "ScheduleConfig":
        return cls(
            kind=str(config["kind"]),
            params=tuple(sorted(dict(config.get("params", {})).items())),
        )


@dataclass(frozen=True)
class Scenario:
    """One named, fully declarative Monte-Carlo sweep.

    Attributes
    ----------
    name:
        Registry key; also the human-readable part of the cache directory.
    workload:
        Graph-family workload name (see :mod:`repro.experiments.workloads`).
    sizes:
        Population-size grid.  A single size is allowed (scaling fits are
        then unavailable; see ``SweepResult.fit``).
    protocols:
        Declarative protocol choices, in measurement order.
    repetitions:
        Monte-Carlo trials per (protocol, size).
    seed:
        Base seed; all graph/trial seeds derive from it via
        :mod:`repro.core.seeds`.
    step_budget_multiplier:
        Scales the per-run step budget (``default_step_budget``).
    trials_per_shard:
        How many trials one work unit (= one cache file, one worker task)
        covers.  Affects scheduling granularity and cache layout only —
        never the per-trial seeds, hence never the results.
    engine / backend:
        Execution engine for the simulations.
    threads:
        Optional replica-axis kernel-thread dial, forwarded to every
        execution plan the scenario produces (``None`` defers to
        ``REPRO_KERNEL_THREADS`` at execution time, the pre-existing
        behaviour).  Purely a throughput dial: results are bit-identical
        for any value, so it is *excluded* from :meth:`config_dict` and
        the content hash — cached results are shared across thread
        counts, exactly as they are across worker counts.
    shards:
        Optional shard count for the partitioned executor
        (:mod:`repro.sharding`), forwarded to every execution plan the
        scenario produces.  Like ``threads`` it is purely a capacity
        dial — results are bit-identical for any value (gated by
        ``tests/test_sharding.py``), so it too is *excluded* from
        :meth:`config_dict` and the content hash.
    shard_workers:
        Optional process count for the sharded executor's fork-based
        shard-worker pool (``0``/``None`` = in-process, the default).
        Purely a throughput dial riding on ``shards``: results are
        byte-identical for any worker count and an unavailable pool
        silently demotes to the in-process sharded path, so it too is
        *excluded* from :meth:`config_dict` and the content hash.
    schedule:
        Optional declarative topology schedule (:class:`ScheduleConfig`).
        ``None`` (the default) runs on the static workload graph; a
        config makes every trial sample interactions from the
        time-varying topology it describes.  The schedule is part of the
        content hash, so dynamic results can never be served from a
        static scenario's cache (or vice versa).  Note that protocol
        factories that calibrate on the graph — the fast protocol
        estimates ``B(G)`` — calibrate on the *workload graph* (the node
        universe), not on the time-varying topology: a legitimate
        non-uniform parameterisation, but one whose constants can be far
        from the dynamic broadcast time, so the bundled dynamic
        scenarios use the calibration-free token protocol.
    description:
        One line shown by ``repro-popsim scenarios``.
    """

    name: str
    workload: str
    sizes: Tuple[int, ...]
    protocols: Tuple[ProtocolConfig, ...] = field(default_factory=default_protocol_configs)
    repetitions: int = 3
    seed: int = 0
    step_budget_multiplier: float = 60.0
    trials_per_shard: int = 1
    engine: str = "auto"
    backend: str = "auto"
    threads: Optional[int] = None
    shards: Optional[int] = None
    shard_workers: Optional[int] = None
    schedule: Optional[ScheduleConfig] = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if not self.sizes:
            raise ScenarioError(f"scenario {self.name!r} needs at least one size")
        if not self.protocols:
            raise ScenarioError(f"scenario {self.name!r} needs at least one protocol")
        if self.repetitions < 1:
            raise ScenarioError(f"scenario {self.name!r}: repetitions must be positive")
        if self.trials_per_shard < 1:
            raise ScenarioError(f"scenario {self.name!r}: trials_per_shard must be positive")
        if self.threads is not None:
            object.__setattr__(self, "threads", int(self.threads))
            if self.threads < 1:
                raise ScenarioError(f"scenario {self.name!r}: threads must be positive")
        if self.shards is not None:
            object.__setattr__(self, "shards", int(self.shards))
            if self.shards < 1:
                raise ScenarioError(f"scenario {self.name!r}: shards must be positive")
        if self.shard_workers is not None:
            object.__setattr__(self, "shard_workers", int(self.shard_workers))
            if self.shard_workers < 0:
                raise ScenarioError(
                    f"scenario {self.name!r}: shard_workers must be non-negative "
                    "(0 = in-process)"
                )

    # ------------------------------------------------------------------
    # Validation / construction
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Resolve every referenced component (raises on dangling names)."""
        get_workload(self.workload)
        for protocol in self.protocols:
            protocol.build_spec()
        if self.schedule is not None and self.schedule.kind == "epochs":
            for workload in dict(self.schedule.params).get("workloads", ()):
                get_workload(workload)

    def protocol_specs(self) -> List[ProtocolSpec]:
        """Concrete protocol specs, in declaration order."""
        return [protocol.build_spec() for protocol in self.protocols]

    def schedule_seed(self, size_index: int) -> int:
        """Seed of the size cell's topology-schedule child stream.

        A dedicated stream (``derive_seed(seed, "schedule", i)``),
        independent of the graph and trial streams, so adding a schedule
        never perturbs which graph is built or which scheduler seeds the
        trials receive.  The single source for both direct builds
        (:meth:`build_schedule`) and the orchestrator's shipped unit
        plans.
        """
        return derive_seed(self.seed, "schedule", size_index)

    def build_schedule(self, base_graph: Graph, size_index: int) -> Optional[TopologySchedule]:
        """The concrete topology schedule for one size cell, or ``None``."""
        if self.schedule is None:
            return None
        return self.schedule.build(base_graph, self.schedule_seed(size_index))

    def with_overrides(self, **overrides: Any) -> "Scenario":
        """A copy with some fields replaced (CLI ``--sizes``/``--repetitions``)."""
        if "sizes" in overrides:
            overrides["sizes"] = tuple(int(s) for s in overrides["sizes"])
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Canonical form and content hash
    # ------------------------------------------------------------------
    def config_dict(self) -> Dict[str, Any]:
        """The canonical JSON-able description of this scenario.

        The ``schedule`` key is present only on dynamic scenarios: static
        configs serialise exactly as they did before schedules existed,
        so their content hashes — and hence their cache directories —
        are unchanged.  ``threads``, ``shards`` and ``shard_workers``
        are deliberately absent: all three are execution dials that
        never change measured values, so runs differing only in thread,
        shard or shard-worker count share one cache directory (and one
        canonical result).
        """
        config = {
            "name": self.name,
            "workload": self.workload,
            "sizes": list(self.sizes),
            "protocols": [protocol.as_dict() for protocol in self.protocols],
            "repetitions": self.repetitions,
            "seed": self.seed,
            "step_budget_multiplier": self.step_budget_multiplier,
            "trials_per_shard": self.trials_per_shard,
            "engine": self.engine,
            "backend": self.backend,
        }
        if self.schedule is not None:
            config["schedule"] = self.schedule.as_dict()
        return config

    def content_hash(self) -> str:
        """SHA-256 over the canonical config plus code-relevant versions.

        Includes everything that determines the *measured values*: the
        scenario config, the result schema version, the package version
        and the scheduler's seeded-stream parameters (the pre-sample
        refill size is part of the seeded trajectory definition — see
        :data:`repro.runtime.source.REFILL_SIZE`).  The execution ``engine``/``backend``
        are part of the config hashed here even though engines are
        bit-identical; a cache entry therefore never outlives a semantics
        change, at the cost of re-running when only the engine differs.
        """
        from .. import __version__
        from ..runtime.source import REFILL_SIZE

        payload = {
            "config": self.config_dict(),
            "result_schema": RESULT_SCHEMA_VERSION,
            "package_version": __version__,
            "scheduler_refill": REFILL_SIZE,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`config_dict` output."""
        return cls(
            name=str(config["name"]),
            workload=str(config["workload"]),
            sizes=tuple(int(s) for s in config["sizes"]),
            protocols=tuple(
                ProtocolConfig.from_dict(protocol) for protocol in config["protocols"]
            ),
            repetitions=int(config["repetitions"]),
            seed=int(config["seed"]),
            step_budget_multiplier=float(config["step_budget_multiplier"]),
            trials_per_shard=int(config["trials_per_shard"]),
            engine=str(config["engine"]),
            backend=str(config["backend"]),
            threads=(int(config["threads"]) if config.get("threads") is not None else None),
            shards=(int(config["shards"]) if config.get("shards") is not None else None),
            shard_workers=(
                int(config["shard_workers"])
                if config.get("shard_workers") is not None
                else None
            ),
            schedule=(
                ScheduleConfig.from_dict(config["schedule"])
                if config.get("schedule") is not None
                else None
            ),
            description=str(config.get("description", "")),
        )

    @classmethod
    def from_specs(
        cls,
        name: str,
        workload: str,
        sizes: Sequence[int],
        specs: Sequence[ProtocolSpec],
        **fields_: Any,
    ) -> "Scenario":
        """Build a scenario from concrete specs that carry ``spec_config``."""
        return cls(
            name=name,
            workload=workload,
            sizes=tuple(sizes),
            protocols=tuple(ProtocolConfig.from_spec(spec) for spec in specs),
            **fields_,
        )
