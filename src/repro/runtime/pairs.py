"""The directed ordered-pair index space (Section 2.2's ``2m`` pairs).

Every sampler and kernel in this package works over the same encoding of
a graph's ordered interaction pairs: index ``r < m`` is edge ``r`` in its
stored orientation ``(u_r, v_r)``, index ``r >= m`` is the reverse
``(v_{r-m}, u_{r-m})``.  A uniform draw over ``[0, 2m)`` is therefore
exactly the population-model scheduler's ordered-pair distribution.

This module is the single home of that encoding.  It provides

* :func:`directed_tables` — the two parallel endpoint tables
  ``(initiators, responders)`` of length ``2m``, cached per graph (the
  analytics engine's C kernels and the multi-replica protocol kernel
  decode raw indices through them);
* :func:`encode_oriented` — how the population scheduler's two-call draw
  (uniform edge index, then uniform orientation) maps into the index
  space, preserving the historical decode ``initiator = u if oriented
  else v`` bit for bit;
* :func:`decode_pairs` — index arrays back to endpoint arrays.

Everything here is pure array arithmetic; the seeded RNG calls stay in
:mod:`repro.runtime.source`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

from ..graphs.graph import Graph

#: Directed endpoint tables per graph, keyed by object identity (the
#: entry holds the graph so a live key can never be recycled).  Bounded
#: like the orchestrator's graph memo, but evicted LRU-style: a hit
#: refreshes the entry and a full cache drops only its oldest entry, so
#: a hot graph survives any number of cold inserts (per-shard subgraphs
#: would otherwise thrash the whole cache every 16 builds).
_DIRECTED_CACHE: "OrderedDict[int, Tuple[Graph, np.ndarray, np.ndarray]]" = OrderedDict()
_DIRECTED_CACHE_LIMIT = 16


def directed_pair_count(graph: Graph) -> int:
    """Size ``2m`` of the graph's directed ordered-pair index space."""
    return 2 * graph.n_edges


def directed_tables(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """The ``2m`` ordered scheduler pairs as two parallel endpoint tables.

    Index ``r < m`` is edge ``r`` in stored orientation, ``r >= m`` the
    reverse — so a uniform draw over ``[0, 2m)`` is exactly the
    population-model scheduler's ordered-pair distribution (Section 2.2).
    Tables are cached per graph object and shared by every consumer
    (trajectory streams, schedulers, C kernels).
    """
    if graph.n_edges == 0:
        raise ValueError("cannot schedule interactions on an edgeless graph")
    key = id(graph)
    entry = _DIRECTED_CACHE.get(key)
    if entry is not None and entry[0] is graph:
        _DIRECTED_CACHE.move_to_end(key)
        return entry[1], entry[2]
    while len(_DIRECTED_CACHE) >= _DIRECTED_CACHE_LIMIT:
        _DIRECTED_CACHE.popitem(last=False)
    initiators = np.concatenate((graph.edges_u, graph.edges_v))
    responders = np.concatenate((graph.edges_v, graph.edges_u))
    _DIRECTED_CACHE[key] = (graph, initiators, responders)
    return initiators, responders


def encode_oriented(
    edge_indices: np.ndarray, orientations: np.ndarray, n_edges: int
) -> np.ndarray:
    """Map the scheduler's ``(edge, orientation)`` draw into pair indices.

    The population scheduler historically decoded ``orientation == 1`` as
    "edge in stored orientation" (initiator ``u``, responder ``v``) and
    ``orientation == 0`` as the reverse.  Under :func:`directed_tables`
    that is index ``edge`` respectively ``edge + m``::

        index = edge + (1 - orientation) * m

    so decoding the returned indices reproduces the historical
    ``np.where(orientation, u, v)`` endpoints exactly.  The result is
    a fresh array; neither input is modified, so callers may keep using
    their edge/orientation draws after encoding.
    """
    reversed_mask = np.subtract(1, orientations)
    reversed_mask *= n_edges
    return np.add(edge_indices, reversed_mask)


def decode_pairs(
    indices: np.ndarray, initiators: np.ndarray, responders: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode pair indices through the directed endpoint tables."""
    return initiators.take(indices), responders.take(indices)
