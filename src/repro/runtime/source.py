"""The unified interaction sampler behind every seeded pair stream.

:class:`InteractionSource` is the single implementation of buffered
ordered-pair sampling in this package.  ``RandomScheduler`` (static
graphs), ``DynamicScheduler`` (time-varying topologies) and the
analytics trajectory streams are all thin shells over it; before this
module existed each of the three carried its own refill/consume
machinery.

Two seeded *dialects* coexist, both defined here and both preserved bit
for bit:

* the **scheduler dialect** (protocol simulations): refills draw
  ``integers(0, m)`` (a uniform edge) followed by ``integers(0, 2)`` (a
  uniform orientation), in that order, with refill size
  ``max(batch_size, minimum)`` where ``minimum`` is the draws still
  needed by the current call.  The default ``batch_size`` is
  :data:`REFILL_SIZE`; because certificate-cadence blocks never exceed
  it, the refill sequence — and hence every seeded trajectory — is
  independent of how consumers chunk their reads.
* the **directed dialect** (analytics streams): demand-sized single
  draws ``integers(0, 2m)`` straight into the directed pair-index space
  (:mod:`repro.runtime.pairs`), via :meth:`draw_pair_indices`.

On a dynamic topology a refill is **capped at the current epoch
boundary**: a pre-sample buffer never crosses an epoch switch, so every
draw is made — and decoded — against the edge table it will be applied
to.  For a single-epoch schedule no cap ever fires and the stream is
bit-identical to the static one on the same seed.

Internally the buffer holds raw directed pair indices; endpoints are
decoded on consumption through the shared tables.  That lets the
replica-batched executor (:mod:`repro.runtime.execute`) read undecoded
indices with :meth:`next_pair_indices` and leave the decode to the C
kernel, while ``next_batch`` / ``next_arrays`` reproduce the historical
decoded streams exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.random_graphs import RngLike, as_rng
from .pairs import decode_pairs, directed_tables, encode_oriented

#: Pre-sample size per RNG refill in the scheduler dialect.  4096 keeps
#: the sampling fully vectorised while wasting little work on short runs
#: (stabilization-bound executions often need only a few thousand
#: interactions).  The refill size is part of the seeded stream
#: definition — changing it changes every seeded trajectory (last
#: changed from 65536 in the engine PR; see CHANGES.md).  This constant
#: is the single source of truth; ``repro.core.scheduler`` re-exports it
#: for backward compatibility and the orchestrator hashes it into
#: scenario content hashes.
REFILL_SIZE = 4096

Interaction = Tuple[int, int]


class InteractionSource:
    """One seeded ordered-pair stream over a static or dynamic topology.

    Parameters
    ----------
    topology:
        A :class:`~repro.graphs.graph.Graph` (sampled forever) or a
        :class:`~repro.dynamics.schedule.TopologySchedule` (sampled from
        the epoch graph active at the current step; duck-typed so this
        module needs no import of :mod:`repro.dynamics`).
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    batch_size:
        Scheduler-dialect pre-sample size per refill (see
        :data:`REFILL_SIZE`).
    """

    def __init__(
        self, topology, rng: RngLike = None, batch_size: int = REFILL_SIZE
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._rng = as_rng(rng)
        self._batch_size = int(batch_size)
        self._buffer: np.ndarray = np.zeros(0, dtype=np.int64)
        self._cursor = 0
        self._position = 0
        if isinstance(topology, Graph):
            if topology.n_edges == 0:
                raise ValueError("cannot schedule interactions on an edgeless graph")
            self._schedule = None
            self._epoch_graph: Optional[Graph] = topology
            self._epoch_end: Optional[int] = None
            # Decode tables are built on first *decoded* consumption:
            # undecoded readers (the stack executors' next_pair_indices
            # paths and the sharded engine, which routes raw indices
            # through memory-mapped per-shard tables) never materialise
            # the resident 2m endpoint arrays.
            self._du: Optional[np.ndarray] = None
            self._dv: Optional[np.ndarray] = None
            self._edge_count = topology.n_edges
        else:
            self._schedule = topology
            self._epoch_graph = None
            self._epoch_end = 0  # forces epoch activation on the first refill
            self._du = self._dv = np.zeros(0, dtype=np.int64)
            self._edge_count = 0

    # ------------------------------------------------------------------
    # Stream state
    # ------------------------------------------------------------------
    @property
    def steps_emitted(self) -> int:
        """Total number of interactions handed out so far."""
        return self._position

    @property
    def generator(self) -> np.random.Generator:
        """The underlying seeded Generator (kernel state export/import)."""
        return self._rng

    @property
    def pair_count(self) -> int:
        """Size ``2m`` of the active epoch's directed pair-index space."""
        return 2 * self._edge_count

    @property
    def pair_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """The active epoch's directed endpoint tables (kernel decode)."""
        return self._tables()

    def _tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """The decode tables, built lazily on a static topology."""
        if self._du is None:
            assert self._epoch_graph is not None
            self._du, self._dv = directed_tables(self._epoch_graph)
        return self._du, self._dv

    @property
    def active_graph(self) -> Graph:
        """The graph the *next* interaction will be drawn from."""
        if self._schedule is None or self._cursor < self._buffer.shape[0]:
            assert self._epoch_graph is not None
            return self._epoch_graph
        return self._schedule.graph_at(self._position)

    # ------------------------------------------------------------------
    # Refills (the seeded scheduler dialect, defined exactly once)
    # ------------------------------------------------------------------
    def _activate_epoch(self, position: int) -> None:
        schedule = self._schedule
        assert schedule is not None
        index, _, end = schedule.epoch_at(position)
        graph = schedule.epoch_graph(index)
        self._epoch_graph = graph
        self._epoch_end = end
        self._du, self._dv = directed_tables(graph)
        self._edge_count = graph.n_edges

    def _refill(self, minimum: int) -> None:
        """THE seeded pair draw: uniform edge index, then uniform orientation.

        Refills happen only on an empty buffer, with ``minimum`` = the
        draws still needed by the current call; on a dynamic topology
        the refill is capped at the current epoch boundary.  The two-call
        draw order is part of the seeded-stream definition.
        """
        position = self._position
        if self._epoch_end is not None and position >= self._epoch_end:
            self._activate_epoch(position)
        size = max(self._batch_size, minimum)
        if self._epoch_end is not None:
            size = min(size, self._epoch_end - position)
        edge_indices = self._rng.integers(0, self._edge_count, size=size)
        orientations = self._rng.integers(0, 2, size=size)
        self._buffer = encode_oriented(edge_indices, orientations, self._edge_count)
        self._cursor = 0

    def _consume(self, size: int) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(indices, du, dv)`` chunks totalling ``size`` draws.

        The decode tables are captured per chunk because a refill at a
        chunk boundary may swap epochs on a dynamic topology.
        """
        if size < 0:
            raise ValueError("batch size must be non-negative")
        remaining = size
        while remaining > 0:
            available = self._buffer.shape[0] - self._cursor
            if available == 0:
                self._refill(remaining)
                available = self._buffer.shape[0]
            take = min(available, remaining)
            chunk = self._buffer[self._cursor : self._cursor + take]
            self._cursor += take
            self._position += take
            remaining -= take
            du, dv = self._tables()
            yield chunk, du, dv

    # ------------------------------------------------------------------
    # Consumption (shared by every scheduler shell)
    # ------------------------------------------------------------------
    def next_interaction(self) -> Interaction:
        """The next ordered (initiator, responder) pair."""
        if self._cursor >= self._buffer.shape[0]:
            self._refill(1)
        index = self._buffer[self._cursor]
        self._cursor += 1
        self._position += 1
        du, dv = self._tables()
        return (int(du[index]), int(dv[index]))

    def next_batch(self, size: int) -> List[Interaction]:
        """The next ``size`` ordered pairs, in order, as Python tuples."""
        result: List[Interaction] = []
        for chunk, du, dv in self._consume(size):
            result.extend(zip(du.take(chunk).tolist(), dv.take(chunk).tolist()))
        return result

    def next_arrays(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`next_batch` but returns numpy arrays (hot loops)."""
        initiators = np.empty(size, dtype=np.int64)
        responders = np.empty(size, dtype=np.int64)
        filled = 0
        for chunk, du, dv in self._consume(size):
            take = chunk.shape[0]
            np.take(du, chunk, out=initiators[filled : filled + take])
            np.take(dv, chunk, out=responders[filled : filled + take])
            filled += take
        return initiators, responders

    def next_pair_indices(self, size: int) -> np.ndarray:
        """The next ``size`` draws as raw directed pair indices.

        Same stream, undecoded: kernels that hold the directed endpoint
        tables (:attr:`pair_tables`) decode these themselves, saving two
        Python-level gathers per block.  Only meaningful while the
        tables are constant, i.e. on a static topology.
        """
        out = np.empty(size, dtype=np.int64)
        self.next_pair_indices_into(out)
        return out

    def next_pair_indices_into(self, out: np.ndarray) -> None:
        """:meth:`next_pair_indices` into a preallocated row (hot path)."""
        size = out.shape[0]
        if size < 0:
            raise ValueError("batch size must be non-negative")
        buffer = self._buffer
        cursor = self._cursor
        filled = 0
        while filled < size:
            available = buffer.shape[0] - cursor
            if available == 0:
                self._refill(size - filled)
                buffer = self._buffer
                cursor = self._cursor
                available = buffer.shape[0]
            take = min(available, size - filled)
            out[filled : filled + take] = buffer[cursor : cursor + take]
            cursor += take
            filled += take
            self._position += take
        self._cursor = cursor

    # ------------------------------------------------------------------
    # The directed dialect (analytics trajectory streams)
    # ------------------------------------------------------------------
    def draw_pair_indices(self, out: np.ndarray, bound: Optional[int] = None) -> None:
        """Demand-sized draw straight into the directed pair-index space.

        One bounded-integers call over ``[0, bound)`` — the analytics
        engine's seeded-stream definition (block sizes are chosen by the
        caller's lockstep schedule, not by the refill contract).
        ``bound`` overrides the draw bound (dynamic stacks pass the
        active epoch's ``2m_k``); the default is the source's own
        ``2m``.
        """
        limit = self.pair_count if bound is None else int(bound)
        out[...] = self._rng.integers(0, limit, size=out.shape[0])

    def draw_pairs_into(self, initiators: np.ndarray, responders: np.ndarray) -> None:
        """Directed-dialect draw decoded through the endpoint tables."""
        draws = self._rng.integers(0, self.pair_count, size=initiators.shape[0])
        du, dv = self._tables()
        du.take(draws, out=initiators)
        dv.take(draws, out=responders)


def decode_pair_indices(
    graph: Graph, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode raw pair indices against ``graph``'s directed tables."""
    du, dv = directed_tables(graph)
    return decode_pairs(indices, du, dv)


# ----------------------------------------------------------------------
# Kernel-resident streams (the v6 dialect)
# ----------------------------------------------------------------------
def pack_generator_state(generator: np.random.Generator, out: np.ndarray) -> None:
    """Export a PCG64-backed Generator into one kernel RNG state row.

    The row layout mirrors numpy's ``PCG64().state`` dict — state hi/lo,
    inc hi/lo, ``has_uint32``, ``uinteger`` — so the kernel continues the
    exact stream, buffered 32-bit half-word included.
    """
    state = generator.bit_generator.state
    if state["bit_generator"] != "PCG64":  # pragma: no cover - guarded by callers
        raise ValueError("kernel streams require a PCG64 bit generator")
    inner = state["state"]
    mask = (1 << 64) - 1
    out[0] = (inner["state"] >> 64) & mask
    out[1] = inner["state"] & mask
    out[2] = (inner["inc"] >> 64) & mask
    out[3] = inner["inc"] & mask
    out[4] = int(state["has_uint32"])
    out[5] = int(state["uinteger"])
    out[6] = 0
    out[7] = 0


def unpack_generator_state(generator: np.random.Generator, row: np.ndarray) -> None:
    """Import one kernel RNG state row back into a PCG64-backed Generator."""
    generator.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": (int(row[0]) << 64) | int(row[1]),
            "inc": (int(row[2]) << 64) | int(row[3]),
        },
        "has_uint32": int(row[4]),
        "uinteger": int(row[5]),
    }


def kernel_seedable(seed) -> bool:
    """Whether ``seed`` can seed an in-kernel stream.

    The kernel reimplements ``SeedSequence`` for non-negative integers
    below ``2**64`` (at most two 32-bit entropy words) — exactly the
    range the package's own :func:`repro.core.seeds.derive_seed`
    produces.  Generators and wider seeds stay on the NumPy paths.
    """
    return isinstance(seed, (int, np.integer)) and 0 <= int(seed) < (1 << 64)


class KernelSource:
    """Replica-batched scheduler-dialect streams living in kernel state.

    The v6 twin of a row of :class:`InteractionSource` objects: per
    replica, one PCG64 state row (``rng_state``), one cursor/fill/
    position triple (``src_state``) and one pre-sample buffer row
    (``buffers``), all advanced *inside* the C kernel
    (``repro_run_epoch`` / ``repro_source_fill``).  Seeding, refill
    sizes and draw order are bit-identical to
    ``InteractionSource(graph, np.random.default_rng(seed))``, so a
    replica can leave the kernel mid-stream and continue in Python
    (:meth:`python_source`) without perturbing a single draw.
    """

    def __init__(
        self,
        graph: Graph,
        seeds,
        batch_size: int = REFILL_SIZE,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        from ..engine.native import RNG_STATE_WORDS, SRC_STATE_WORDS, get_rng_kernels

        kernels = get_rng_kernels()
        if kernels is None:
            raise RuntimeError("kernel v6 is unavailable; use InteractionSource")
        if graph.n_edges == 0:
            raise ValueError("cannot schedule interactions on an edgeless graph")
        self._graph = graph
        self._batch = int(batch_size)
        self._kernels = kernels
        capacity = max(self._batch, int(buffer_capacity or 0))
        count = len(seeds)
        self.rng_state = np.zeros((count, RNG_STATE_WORDS), dtype=np.uint64)
        self.src_state = np.zeros((count, SRC_STATE_WORDS), dtype=np.int64)
        self.buffers = np.zeros((count, capacity), dtype=np.int64)
        seed_words = np.ascontiguousarray([int(seed) for seed in seeds], dtype=np.uint64)
        kernels["pcg64_init"](seed_words.ctypes.data, count, self.rng_state.ctypes.data)

    @property
    def batch_size(self) -> int:
        return self._batch

    @property
    def buffer_capacity(self) -> int:
        return self.buffers.shape[1]

    def compact(self, keep: np.ndarray) -> None:
        """Drop finished replica rows (mirrors the executor's compaction)."""
        self.rng_state = np.ascontiguousarray(self.rng_state[keep])
        self.src_state = np.ascontiguousarray(self.src_state[keep])
        self.buffers = np.ascontiguousarray(self.buffers[keep])

    def fill(self, row: int, out: np.ndarray) -> None:
        """``next_pair_indices_into`` for one row, drawn in-kernel."""
        count = out.shape[0]
        if count > self.buffer_capacity:
            raise ValueError("draw exceeds the kernel buffer capacity")
        self._kernels["source_fill"](
            self.rng_state[row].ctypes.data,
            self.src_state[row].ctypes.data,
            self.buffers[row].ctypes.data,
            self._graph.n_edges,
            self._batch,
            count,
            out.ctypes.data,
        )

    def export_generator(self, row: int) -> np.random.Generator:
        """A NumPy Generator continuing row ``row``'s stream exactly."""
        generator = np.random.Generator(np.random.PCG64())
        unpack_generator_state(generator, self.rng_state[row])
        return generator

    def python_source(self, row: int) -> InteractionSource:
        """Hand row ``row`` back to Python mid-stream (straggler drain).

        The returned :class:`InteractionSource` owns a Generator restored
        from the kernel state and the row's unconsumed pre-sample buffer,
        so subsequent draws are bit-identical to never having entered the
        kernel at all.
        """
        source = InteractionSource(
            self._graph, rng=self.export_generator(row), batch_size=self._batch
        )
        cursor = int(self.src_state[row, 0])
        fill = int(self.src_state[row, 1])
        source._buffer = self.buffers[row, :fill].copy()
        source._cursor = cursor
        source._position = int(self.src_state[row, 2])
        return source
