"""Execution plans: compile a run once, execute it anywhere.

An :class:`ExecutionPlan` captures everything needed to execute ``R``
replicas of one ``(protocol, graph, topology schedule)`` workload — the
per-replica scheduler seeds, the resolved engine, the shared compiled
transition tables, the certificate cadence — as one immutable object.
:func:`compile_plan` performs the resolution exactly once; executors
(:mod:`repro.runtime.execute`) then run the plan without re-deriving
anything.

Before this layer existed, the engine-selection logic below lived in
four places with slightly different spellings: ``Simulator.run``
(single runs), ``repro.engine.replicas.run_replicas`` (replica stacks),
``repro.experiments.harness._run_measurement_batch`` (measurements) and
``repro.orchestration.runner`` (sharded sweeps).  All four now call
:func:`compile_plan`; the resolution rules are:

* ``engine="reference"`` — every replica runs the pure-Python
  interpreter (:data:`ExecutionPlan.mode` ``"reference"``).
* ``engine="compiled"`` / ``"auto"`` with **homogeneous** replicas (same
  ``compile_key``, static topology, no stream override, no trace) — one
  table set is compiled up front and shared (``"shared"``); a
  compilation failure raises for ``"compiled"`` and demotes the whole
  plan to the reference interpreter for ``"auto"``, mirroring the
  historical harness behaviour.
* everything else — per-replica resolution at execution time
  (``"single"``), preserving ``Simulator.run``'s lazy-compilation
  semantics including the mid-run fallback to the reference interpreter
  when lazy state discovery outgrows the table bound and the scheduler
  stream is re-creatable from its seed.

Plans never change measured values: for any mode, replica ``i``'s result
is bit-identical to a standalone ``Simulator.run`` with seed
``seeds[i]`` (``tests/test_runtime_plan.py`` pins this property across
engines, backends and topology schedules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from ..graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.protocol import PopulationProtocol
    from ..dynamics.schedule import TopologySchedule
    from ..engine.compiler import CompiledProtocol

#: Engine choices accepted by :func:`compile_plan` (and ``Simulator``).
ENGINES = ("reference", "compiled", "auto")

#: Replica execution strategies (see :mod:`repro.runtime.execute`).
REPLICA_MODES = ("auto", "lockstep", "sequential")


@dataclass
class ExecutionPlan:
    """A compiled, runnable description of ``R`` replica executions.

    Instances are produced by :func:`compile_plan` and consumed by
    :func:`repro.runtime.execute.execute_plan`; the fields are resolved
    values, not requests (``mode`` instead of a raw engine string,
    ``check_interval`` always concrete, ``compiled`` already built for
    shared-table plans).
    """

    graph: Graph
    protocols: List["PopulationProtocol"]
    seeds: List[Any]
    max_steps: int
    engine: str
    backend: str
    check_interval: int
    mode: str  # "reference" | "shared" | "single"
    schedule: Optional["TopologySchedule"] = None
    inputs: Optional[Sequence[Any]] = None
    max_states: Optional[int] = None
    compiled: Optional["CompiledProtocol"] = None
    scheduler: Optional[Any] = None  # single-replica stream override (replay)
    record_leader_trace: bool = False
    trace_resolution: int = 64
    replica_mode: str = "auto"
    drain_width: int = 0
    #: Replica-axis kernel threads for the v6 stack executor; ``None``
    #: defers to ``REPRO_KERNEL_THREADS`` at execution time.  Purely a
    #: throughput dial — results are bit-identical for any value.
    threads: Optional[int] = None
    #: Shard count for the partitioned executor
    #: (:mod:`repro.sharding`); ``None`` keeps the plan on the batched
    #: stack.  Purely a capacity dial — results are bit-identical for
    #: any value, and ineligible plans fall through unchanged.
    shards: Optional[int] = None
    #: Process count for the sharded executor's fork-based shard-worker
    #: pool; ``None`` or ``0`` runs the shards in-process (the default).
    #: Purely a throughput dial — results are byte-identical for any
    #: value, and an unavailable pool (no fork, incomplete tables, a
    #: killed worker) silently demotes to the in-process sharded path.
    shard_workers: Optional[int] = None
    #: Opt-in per-shard observability: when set, the sharded executor
    #: attaches a ``shard_stats`` dict to every ``SimulationResult``
    #: (excluded from canonical aggregates — it never affects measured
    #: values or cache bytes).
    collect_shard_stats: bool = False
    _initial_states: Optional[List[Any]] = field(default=None, repr=False)

    @property
    def n_replicas(self) -> int:
        return len(self.protocols)

    def initial_states(self) -> List[Any]:
        """The shared initial configuration (built once per plan)."""
        if self._initial_states is None:
            protocol = self.protocols[0]
            n = self.graph.n_nodes
            if self.inputs is None:
                states: List[Any] = [protocol.initial_state(None)] * n
            else:
                if len(self.inputs) != n:
                    raise ValueError("inputs must provide one symbol per node")
                states = [protocol.initial_state(symbol) for symbol in self.inputs]
            self._initial_states = states
        return self._initial_states

    def execute(self) -> List[Any]:
        """Run the plan (see :func:`repro.runtime.execute.execute_plan`)."""
        from .execute import execute_plan

        return execute_plan(self)


def _homogeneous(protocols: Sequence["PopulationProtocol"]) -> bool:
    """Whether all replicas can share one compiled table set."""
    first = protocols[0]
    if all(protocol is first for protocol in protocols):
        return True
    keys = [protocol.compile_key() for protocol in protocols]
    return keys[0] is not None and all(key == keys[0] for key in keys)


def compile_plan(
    protocols: Sequence["PopulationProtocol"],
    graph: Graph,
    seeds: Sequence[Any],
    max_steps: int,
    engine: str = "auto",
    backend: str = "auto",
    check_interval: Optional[int] = None,
    schedule: Optional["TopologySchedule"] = None,
    inputs: Optional[Sequence[Any]] = None,
    max_states: Optional[int] = None,
    scheduler: Optional[Any] = None,
    record_leader_trace: bool = False,
    trace_resolution: int = 64,
    replica_mode: str = "auto",
    drain_width: int = 0,
    threads: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    collect_shard_stats: bool = False,
) -> ExecutionPlan:
    """Resolve one workload into an :class:`ExecutionPlan`.

    Parameters mirror :meth:`repro.core.simulator.Simulator.run` (single
    replica) and :func:`repro.engine.run_replicas` (stacks); ``seeds``
    supplies one scheduler seed (or generator) per replica and must match
    ``protocols`` in length.  See the module docstring for the engine
    resolution rules.
    """
    protocols = list(protocols)
    seeds = list(seeds)
    if not protocols:
        raise ValueError("a plan needs at least one replica")
    if len(seeds) != len(protocols):
        raise ValueError("need exactly one scheduler seed per replica")
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    if graph.n_nodes < 1:
        raise ValueError("graph must be non-empty")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if replica_mode not in REPLICA_MODES:
        raise ValueError(f"unknown replica mode {replica_mode!r}")
    if threads is not None and int(threads) < 1:
        raise ValueError("threads must be positive")
    if shards is not None and int(shards) < 1:
        raise ValueError("shards must be positive")
    if shard_workers is not None and int(shard_workers) < 0:
        raise ValueError("shard_workers must be non-negative (0 = in-process)")
    if schedule is not None:
        if scheduler is not None:
            raise ValueError("pass either schedule or scheduler, not both")
        if schedule.n_nodes != graph.n_nodes:
            raise ValueError(
                f"schedule universe has {schedule.n_nodes} nodes, "
                f"graph has {graph.n_nodes}"
            )
    if scheduler is not None and len(protocols) > 1:
        raise ValueError("a stream override applies to single-replica plans only")

    if check_interval is None:
        from ..core.simulator import default_check_interval

        check_interval = default_check_interval(graph)
    check_interval = max(1, int(check_interval))

    mode = "single"
    compiled = None
    if engine == "reference":
        mode = "reference"
    elif (
        len(protocols) > 1
        and schedule is None
        and scheduler is None
        and not record_leader_trace
    ):
        from ..engine.compiler import (
            DEFAULT_MAX_STATES,
            ProtocolCompilationError,
            compilation_worthwhile,
            get_compiled,
        )

        worthwhile = engine == "compiled" or compilation_worthwhile(
            protocols[0], max_states
        )
        if worthwhile and _homogeneous(protocols):
            try:
                compiled = get_compiled(
                    protocols[0],
                    max_states=max_states if max_states is not None else DEFAULT_MAX_STATES,
                )
                mode = "shared"
            except ProtocolCompilationError:
                if engine == "compiled":
                    raise
                mode = "reference"

    return ExecutionPlan(
        graph=graph,
        protocols=protocols,
        seeds=seeds,
        max_steps=int(max_steps),
        engine=engine,
        backend=backend,
        check_interval=check_interval,
        mode=mode,
        schedule=schedule,
        inputs=inputs,
        max_states=max_states,
        compiled=compiled,
        scheduler=scheduler,
        record_leader_trace=record_leader_trace,
        trace_resolution=trace_resolution,
        replica_mode=replica_mode,
        drain_width=drain_width,
        threads=None if threads is None else int(threads),
        shards=None if shards is None else int(shards),
        shard_workers=None if shard_workers is None else int(shard_workers),
        collect_shard_stats=bool(collect_shard_stats),
    )
