"""Plan executors: reference, compiled single-run, replica-batched stack.

Three interchangeable executors run an :class:`~repro.runtime.plan.ExecutionPlan`;
all produce results bit-identical to standalone reference runs with the
same seeds:

* **reference** — the pure-Python interpreter (the semantic ground
  truth), one replica at a time;
* **compiled single** — :class:`~repro.engine.stepper.CompiledRun`
  blocks, one replica at a time, with the historical lazy-compilation
  fallback semantics;
* **replica-batched stack** — all replicas advance through one
  ``repro_run_multi`` C-kernel call per certificate-cadence block: the
  codes of the whole measurement live in one ``(R, n)`` matrix, each
  replica's scheduler stream is consumed as *raw directed pair indices*
  (the kernel decodes them through the shared endpoint tables), and
  per-replica bookkeeping (last output change, leader counts, the
  distinct-code mask) is maintained exactly as in the single-run
  kernel.  Replicas whose certificate fires are compacted out of the
  stack.  This is the default path for harness measurements — it
  removes the per-replica Python/ctypes overhead that dominated
  trial-serial dispatch (see ``benchmarks/bench_runtime_dispatch.py``).

Two exact accelerations apply only here (never changing results):
consuming undecoded pair indices saves two Python-level gathers per
block, and for protocols that declare
``certificate_requires_unique_leader`` the (kernel-maintained) leader
count gates the Python certificate — a configuration with ``!= 1``
leaders cannot satisfy those protocols' certificates, so the decode +
certificate call is skipped without affecting when certification fires.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from .pairs import directed_tables
from .plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.simulator import SimulationResult
    from ..engine.compiler import CompiledProtocol


def execute_plan(plan: ExecutionPlan) -> List["SimulationResult"]:
    """Run every replica of ``plan`` and return results in replica order."""
    if plan.shards is not None:
        from ..sharding.executor import execute_sharded, sharded_eligible

        if sharded_eligible(plan):
            return execute_sharded(plan)
    if plan.mode == "shared" and _stack_eligible(plan):
        if _stack_v6_eligible(plan):
            return _execute_stack_v6(plan)
        return _execute_stack(plan)
    return [_execute_single(plan, index) for index in range(plan.n_replicas)]


def _stack_eligible(plan: ExecutionPlan) -> bool:
    """Whether a replica-batched stack executor can serve this plan."""
    if plan.replica_mode == "sequential" or plan.n_replicas < 2:
        return False
    if plan.schedule is not None or plan.scheduler is not None:
        return False
    if plan.record_leader_trace:
        return False
    from ..engine.native import get_run_multi_kernel

    return get_run_multi_kernel() is not None


def _stack_v6_eligible(plan: ExecutionPlan) -> bool:
    """Whether the v6 epoch executor (in-kernel streams) can serve it.

    First link of the v6 → v5 → NumPy fallback chain: a missing or
    disabled v6 kernel, or any seed the kernel cannot reproduce (a live
    Generator, or an integer outside ``[0, 2**64)``), drops the plan to
    the v5 stack, which itself requires ``repro_run_multi`` and
    otherwise yields to the per-replica NumPy/scalar paths.
    """
    from ..engine.native import get_run_epoch_kernel
    from .source import kernel_seedable

    if get_run_epoch_kernel() is None:
        return False
    return all(kernel_seedable(seed) for seed in plan.seeds)


# ----------------------------------------------------------------------
# Single-replica execution (reference + compiled, historical semantics)
# ----------------------------------------------------------------------
def _execute_single(plan: ExecutionPlan, index: int) -> "SimulationResult":
    protocol = plan.protocols[index]
    seed = plan.seeds[index]
    if plan.mode == "reference":
        return _run_reference(plan, protocol, seed)
    if plan.mode == "shared":
        return _run_compiled_single(plan, protocol, seed, plan.compiled)

    # mode == "single": per-replica engine resolution (Simulator.run's
    # historical dispatch, including the mid-run reference fallback).
    from ..engine.compiler import ProtocolCompilationError, compilation_worthwhile

    engine = plan.engine
    scheduler_ok = plan.scheduler is None or hasattr(plan.scheduler, "next_arrays")
    if not scheduler_ok and engine == "compiled":
        raise ValueError(
            "engine='compiled' requires a scheduler with next_arrays(); "
            "use the reference engine for replayed schedules"
        )
    if engine == "auto" and not compilation_worthwhile(protocol, plan.max_states):
        scheduler_ok = False
    if scheduler_ok:
        # A mid-run compilation failure cannot fall back cleanly when the
        # scheduler stream is not re-creatable from a seed.
        replayable = plan.scheduler is None and not isinstance(
            seed, np.random.Generator
        )
        try:
            return _run_compiled_single(plan, protocol, seed, None)
        except ProtocolCompilationError:
            if engine == "compiled" or not replayable:
                raise
    return _run_reference(plan, protocol, seed)


def _make_scheduler(plan: ExecutionPlan, seed: Any):
    """The default scheduler: dynamic when the plan carries a schedule."""
    if plan.schedule is not None:
        from ..dynamics.scheduler import DynamicScheduler

        return DynamicScheduler(plan.schedule, rng=seed)
    from ..core.scheduler import RandomScheduler

    return RandomScheduler(plan.graph, rng=seed)


def _initial_states_for(plan: ExecutionPlan, protocol) -> List[Hashable]:
    """Per-replica initial configuration (shared builder on plan level)."""
    if protocol is plan.protocols[0]:
        return plan.initial_states()
    n = plan.graph.n_nodes
    if plan.inputs is None:
        return [protocol.initial_state(None)] * n
    if len(plan.inputs) != n:
        raise ValueError("inputs must provide one symbol per node")
    return [protocol.initial_state(symbol) for symbol in plan.inputs]


def _run_reference(plan: ExecutionPlan, protocol, seed: Any) -> "SimulationResult":
    """The pure-Python interpreter (the package's semantic reference)."""
    from ..core.configuration import Configuration
    from ..core.protocol import LEADER
    from ..core.simulator import SimulationResult

    graph = plan.graph
    schedule = plan.schedule
    max_steps = plan.max_steps
    certificate_graph = schedule.union_graph() if schedule is not None else graph
    states = list(_initial_states_for(plan, protocol))
    check_interval = plan.check_interval
    scheduler = plan.scheduler

    transition = protocol.transition
    output = protocol.output
    use_cache = protocol.cacheable_transitions
    transition_cache: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, Hashable]] = {}

    observed_states = set(states)
    outputs = [output(s) for s in states]
    last_output_change = 0
    leader_count = sum(1 for o in outputs if o == LEADER)
    trace: List[Tuple[int, int]] = []
    record_leader_trace = plan.record_leader_trace
    trace_every = (
        max(1, max_steps // max(plan.trace_resolution, 1)) if record_leader_trace else 0
    )
    next_trace_step = 0

    start_time = time.perf_counter()
    step = 0
    stabilized = False
    certified_step = 0

    if record_leader_trace:
        trace.append((0, leader_count))
        next_trace_step = trace_every

    # Check the initial configuration too (stars stabilize in one step,
    # and n == 1 graphs are stable immediately).
    if protocol.is_output_stable_configuration(states, certificate_graph):
        stabilized = True
        certified_step = 0

    if not stabilized and step < max_steps and scheduler is None:
        # Created lazily so that trivially-stable single-node runs do not
        # require a schedulable (edge-carrying) graph.
        scheduler = _make_scheduler(plan, seed)

    while not stabilized and step < max_steps:
        batch = min(check_interval, max_steps - step)
        interactions = scheduler.next_batch(batch)
        for initiator, responder in interactions:
            step += 1
            a = states[initiator]
            b = states[responder]
            if use_cache:
                key = (a, b)
                cached = transition_cache.get(key)
                if cached is None:
                    cached = transition(a, b)
                    transition_cache[key] = cached
                new_a, new_b = cached
            else:
                new_a, new_b = transition(a, b)
            if new_a is not a:
                states[initiator] = new_a
                observed_states.add(new_a)
                out_a = output(new_a)
                if out_a != outputs[initiator]:
                    if out_a == LEADER:
                        leader_count += 1
                    elif outputs[initiator] == LEADER:
                        leader_count -= 1
                    outputs[initiator] = out_a
                    last_output_change = step
            if new_b is not b:
                states[responder] = new_b
                observed_states.add(new_b)
                out_b = output(new_b)
                if out_b != outputs[responder]:
                    if out_b == LEADER:
                        leader_count += 1
                    elif outputs[responder] == LEADER:
                        leader_count -= 1
                    outputs[responder] = out_b
                    last_output_change = step
            if record_leader_trace and step >= next_trace_step:
                trace.append((step, leader_count))
                next_trace_step += trace_every
        if protocol.is_output_stable_configuration(states, certificate_graph):
            stabilized = True
            certified_step = step

    wall = time.perf_counter() - start_time
    final = Configuration(states, step=step)
    if record_leader_trace and (not trace or trace[-1][0] != step):
        trace.append((step, leader_count))
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else step,
        last_output_change_step=last_output_change,
        steps_executed=step,
        leaders=leader_count,
        final_configuration=final,
        distinct_states_observed=len(observed_states),
        leader_trace=trace,
        wall_time_seconds=wall,
    )


def _run_compiled_single(
    plan: ExecutionPlan,
    protocol,
    seed: Any,
    compiled: Optional["CompiledProtocol"],
) -> "SimulationResult":
    """Compiled-engine twin of :func:`_run_reference` (identical semantics).

    The loop structure mirrors the reference interpreter exactly: same
    initial certificate check, same lazily created scheduler, same
    ``min(check_interval, remaining)`` batch sizes (so the scheduler's
    RNG stream is consumed identically), and the same certificate
    cadence.  Only the inner per-interaction application is replaced by
    :class:`repro.engine.stepper.CompiledRun`.
    """
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult
    from ..engine.compiler import DEFAULT_MAX_STATES, get_compiled
    from ..engine.stepper import CompiledRun

    graph = plan.graph
    schedule = plan.schedule
    max_steps = plan.max_steps
    states = _initial_states_for(plan, protocol)
    check_interval = plan.check_interval
    scheduler = plan.scheduler
    record_leader_trace = plan.record_leader_trace

    if compiled is None:
        compiled = get_compiled(
            protocol,
            max_states=plan.max_states if plan.max_states is not None else DEFAULT_MAX_STATES,
        )
    start_time = time.perf_counter()
    trace_every = (
        max(1, max_steps // max(plan.trace_resolution, 1)) if record_leader_trace else 0
    )
    run = CompiledRun(
        compiled,
        compiled.encode(states),
        backend=plan.backend,
        record_trace=record_leader_trace,
        trace_every=trace_every,
    )

    stabilized = False
    certified_step = 0
    certificate_graph = schedule.union_graph() if schedule is not None else graph
    if protocol.is_output_stable_configuration(states, certificate_graph):
        stabilized = True

    if not stabilized and run.step < max_steps and scheduler is None:
        scheduler = _make_scheduler(plan, seed)

    while not stabilized and run.step < max_steps:
        batch = min(check_interval, max_steps - run.step)
        initiators, responders = scheduler.next_arrays(batch)
        run.apply_block(initiators, responders)
        if protocol.is_output_stable_configuration(run.current_states(), certificate_graph):
            stabilized = True
            certified_step = run.step

    wall = time.perf_counter() - start_time
    final = Configuration(run.current_states(), step=run.step)
    trace = run.trace
    if record_leader_trace and (not trace or trace[-1][0] != run.step):
        trace.append((run.step, run.leader_count))
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else run.step,
        last_output_change_step=run.last_change,
        steps_executed=run.step,
        leaders=run.leader_count,
        final_configuration=final,
        distinct_states_observed=run.distinct_observed(),
        leader_trace=trace,
        wall_time_seconds=wall,
    )


# ----------------------------------------------------------------------
# Replica-batched stack execution
# ----------------------------------------------------------------------
def _execute_stack(plan: ExecutionPlan) -> List["SimulationResult"]:
    """Advance all replicas through one kernel call per cadence block."""
    from ..core.configuration import Configuration
    from ..core.scheduler import RandomScheduler
    from ..core.simulator import SimulationResult
    from ..engine.native import get_run_multi_kernel

    graph = plan.graph
    protocol = plan.protocols[0]
    compiled = plan.compiled
    assert compiled is not None
    kernel = get_run_multi_kernel()
    n = graph.n_nodes
    replica_count = plan.n_replicas
    max_steps = plan.max_steps
    check_interval = plan.check_interval

    start_time = time.perf_counter()
    initial_states = plan.initial_states()
    initial_codes = compiled.encode(initial_states)
    initial_leaders = compiled.leader_count(initial_codes)
    results: List[Optional[SimulationResult]] = [None] * replica_count

    def finalize(
        codes_row: np.ndarray, stabilized: bool, step: int, last: int, distinct: int, lead: int
    ) -> SimulationResult:
        decoded = compiled.decode_codes(codes_row)
        return SimulationResult(
            stabilized=stabilized,
            certified_step=step,
            last_output_change_step=last,
            steps_executed=step,
            leaders=lead,
            final_configuration=Configuration(decoded, step=step),
            distinct_states_observed=distinct,
            leader_trace=[],
            wall_time_seconds=0.0,
        )

    initially_stable = protocol.is_output_stable_configuration(initial_states, graph)
    if initially_stable or max_steps == 0:
        wall = time.perf_counter() - start_time
        distinct = int(np.unique(initial_codes).size)
        for index in range(replica_count):
            result = finalize(initial_codes, initially_stable, 0, 0, distinct, initial_leaders)
            result.wall_time_seconds = wall / replica_count
            results[index] = result
        return results  # type: ignore[return-value]

    sources = [RandomScheduler(graph, rng=seed) for seed in plan.seeds]
    directed_u, directed_v = directed_tables(graph)
    codes = np.tile(np.ascontiguousarray(initial_codes, dtype=np.int64), (replica_count, 1))
    seen = np.zeros((replica_count, compiled.stride), dtype=np.uint8)
    seen[:, np.unique(initial_codes)] = 1
    last_change = np.zeros(replica_count, dtype=np.int64)
    leaders = np.full(replica_count, initial_leaders, dtype=np.int64)
    replica_ids = np.arange(replica_count, dtype=np.int64)
    precheck = bool(getattr(protocol, "certificate_requires_unique_leader", False))
    step = 0

    while replica_ids.size and step < max_steps:
        if replica_ids.size <= plan.drain_width:
            # Straggler drain: finish the few remaining replicas through
            # the single-run engine, each continuing its own scheduler
            # stream and certificate cadence in place.
            for row in range(replica_ids.size):
                replica = int(replica_ids[row])
                results[replica] = _drain_replica(
                    plan,
                    protocol,
                    compiled,
                    sources[replica],
                    codes[row],
                    step,
                    int(last_change[row]),
                    seen[row],
                    precheck,
                )
            replica_ids = replica_ids[:0]
            break
        chunk = min(check_interval, max_steps - step)
        width = replica_ids.size
        draws = np.empty((width, chunk), dtype=np.int64)
        for row, replica in enumerate(replica_ids.tolist()):
            sources[replica].next_pair_indices_into(draws[row])
        positions = np.zeros(width, dtype=np.int64)
        while True:
            if seen.shape[1] < compiled.stride:
                grown = np.zeros((width, compiled.stride), dtype=np.uint8)
                grown[:, : seen.shape[1]] = seen
                seen = grown
            complete = compiled.tables_complete
            kernel(
                codes.ctypes.data,
                draws.ctypes.data,
                directed_u.ctypes.data,
                directed_v.ctypes.data,
                width,
                chunk,
                n,
                compiled.dpack.ctypes.data,
                compiled.stride,
                compiled.kshift,
                seen.ctypes.data,
                step,
                positions.ctypes.data,
                last_change.ctypes.data,
                leaders.ctypes.data,
            )
            if complete:
                # Complete tables cannot miss: every row consumed the block.
                break
            pending = positions < chunk
            if not pending.any():
                break
            for row in np.nonzero(pending)[0].tolist():
                # The kernel stopped this row on a missing table entry:
                # fill it (possibly growing the tables) and resume.
                index = int(draws[row, positions[row]])
                u = int(directed_u[index])
                v = int(directed_v[index])
                compiled.scalar_entry(int(codes[row, u]), int(codes[row, v]))
        step += chunk

        if precheck:
            # The certificate cannot hold without a unique leader, and the
            # kernel maintains leader counts exactly — sweep only rows
            # that pass (one vectorized compare for the common all-busy
            # block).
            candidate_rows = np.nonzero(leaders == 1)[0].tolist()
        else:
            candidate_rows = range(width)
        finished_rows: List[int] = []
        for row in candidate_rows:
            decoded = compiled.decode_codes(codes[row])
            if protocol.is_output_stable_configuration(decoded, graph):
                replica = int(replica_ids[row])
                results[replica] = finalize(
                    codes[row],
                    True,
                    step,
                    int(last_change[row]),
                    int(np.count_nonzero(seen[row])),
                    int(leaders[row]),
                )
                finished_rows.append(row)
        if finished_rows:
            keep = np.ones(width, dtype=bool)
            keep[finished_rows] = False
            codes = np.ascontiguousarray(codes[keep])
            seen = np.ascontiguousarray(seen[keep])
            last_change = np.ascontiguousarray(last_change[keep])
            leaders = np.ascontiguousarray(leaders[keep])
            replica_ids = np.ascontiguousarray(replica_ids[keep])

    for row in range(replica_ids.size):
        replica = int(replica_ids[row])
        results[replica] = finalize(
            codes[row],
            False,
            step,
            int(last_change[row]),
            int(np.count_nonzero(seen[row])),
            int(leaders[row]),
        )

    wall = time.perf_counter() - start_time
    for result in results:
        assert result is not None
        result.wall_time_seconds = wall / replica_count
    return results  # type: ignore[return-value]


def _execute_stack_v6(plan: ExecutionPlan) -> List["SimulationResult"]:
    """The v6 stack: whole epochs per kernel call, streams in-kernel.

    Control flow mirrors :func:`_execute_stack` — same initial
    certificate check, same cadence, same certificate sweeps, same
    compaction and straggler drain — but the per-block Python work
    (drawing pair indices, one ctypes call per cadence block) collapses
    into one ``repro_run_epoch`` call that advances *every* active
    replica to its next stop event: a certificate boundary that needs
    Python (``BOUNDARY``), a missing table entry (``MISS``), or the step
    budget (``BUDGET``).  Replicas advance independently, so their
    per-row steps become heterogeneous; each row's sequence of blocks,
    certificate checks and draws is still exactly the single-run one,
    which keeps every result bit-identical to the v5 stack and to
    standalone runs (pinned by ``tests/test_runtime_plan.py`` and
    ``tests/test_kernel_rng.py``).
    """
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult
    from ..engine.native import get_run_epoch_kernel, kernel_thread_count
    from .source import KernelSource

    graph = plan.graph
    protocol = plan.protocols[0]
    compiled = plan.compiled
    assert compiled is not None
    kernel = get_run_epoch_kernel()
    assert kernel is not None
    n = graph.n_nodes
    replica_count = plan.n_replicas
    max_steps = plan.max_steps
    check_interval = plan.check_interval
    threads = plan.threads if plan.threads is not None else kernel_thread_count()
    threads = max(1, int(threads))

    start_time = time.perf_counter()
    initial_states = plan.initial_states()
    initial_codes = compiled.encode(initial_states)
    initial_leaders = compiled.leader_count(initial_codes)
    results: List[Optional[SimulationResult]] = [None] * replica_count

    def finalize(
        codes_row: np.ndarray, stabilized: bool, step: int, last: int, distinct: int, lead: int
    ) -> SimulationResult:
        decoded = compiled.decode_codes(codes_row)
        return SimulationResult(
            stabilized=stabilized,
            certified_step=step,
            last_output_change_step=last,
            steps_executed=step,
            leaders=lead,
            final_configuration=Configuration(decoded, step=step),
            distinct_states_observed=distinct,
            leader_trace=[],
            wall_time_seconds=0.0,
        )

    initially_stable = protocol.is_output_stable_configuration(initial_states, graph)
    if initially_stable or max_steps == 0:
        wall = time.perf_counter() - start_time
        distinct = int(np.unique(initial_codes).size)
        for index in range(replica_count):
            result = finalize(initial_codes, initially_stable, 0, 0, distinct, initial_leaders)
            result.wall_time_seconds = wall / replica_count
            results[index] = result
        return results  # type: ignore[return-value]

    ksrc = KernelSource(plan.graph, plan.seeds, buffer_capacity=check_interval)
    directed_u, directed_v = directed_tables(graph)
    codes = np.tile(np.ascontiguousarray(initial_codes, dtype=np.int64), (replica_count, 1))
    seen = np.zeros((replica_count, compiled.stride), dtype=np.uint8)
    seen[:, np.unique(initial_codes)] = 1
    steps = np.zeros(replica_count, dtype=np.int64)
    last_change = np.zeros(replica_count, dtype=np.int64)
    leaders = np.full(replica_count, initial_leaders, dtype=np.int64)
    status = np.zeros(replica_count, dtype=np.uint8)
    replica_ids = np.arange(replica_count, dtype=np.int64)
    precheck = bool(getattr(protocol, "certificate_requires_unique_leader", False))

    while replica_ids.size:
        if replica_ids.size <= plan.drain_width:
            for row in range(replica_ids.size):
                replica = int(replica_ids[row])
                results[replica] = _drain_replica(
                    plan,
                    protocol,
                    compiled,
                    ksrc.python_source(row),
                    codes[row],
                    int(steps[row]),
                    int(last_change[row]),
                    seen[row],
                    precheck,
                )
            break
        width = replica_ids.size
        if seen.shape[1] < compiled.stride:
            grown = np.zeros((width, compiled.stride), dtype=np.uint8)
            grown[:, : seen.shape[1]] = seen
            seen = grown
        kernel(
            codes.ctypes.data,
            ksrc.rng_state.ctypes.data,
            ksrc.src_state.ctypes.data,
            ksrc.buffers.ctypes.data,
            ksrc.buffer_capacity,
            directed_u.ctypes.data,
            directed_v.ctypes.data,
            graph.n_edges,
            width,
            n,
            compiled.dpack.ctypes.data,
            compiled.stride,
            compiled.kshift,
            seen.ctypes.data,
            ksrc.batch_size,
            check_interval,
            max_steps,
            steps.ctypes.data,
            last_change.ctypes.data,
            leaders.ctypes.data,
            status.ctypes.data,
            int(precheck),
            threads,
        )
        finished_rows: List[int] = []
        for row in np.nonzero(status[:width] == 2)[0].tolist():
            # Missing table entry: the row stopped *before* consuming the
            # draw; fill the entry (possibly growing the tables) and let
            # the next kernel call resume mid-block.
            index = int(ksrc.buffers[row, ksrc.src_state[row, 0]])
            u = int(directed_u[index])
            v = int(directed_v[index])
            compiled.scalar_entry(int(codes[row, u]), int(codes[row, v]))
        for row in np.nonzero(status[:width] == 1)[0].tolist():
            # Certificate boundary (leader-count prefiltered in-kernel
            # for precheck protocols, every cadence block otherwise).
            decoded = compiled.decode_codes(codes[row])
            if protocol.is_output_stable_configuration(decoded, graph):
                replica = int(replica_ids[row])
                results[replica] = finalize(
                    codes[row],
                    True,
                    int(steps[row]),
                    int(last_change[row]),
                    int(np.count_nonzero(seen[row])),
                    int(leaders[row]),
                )
                finished_rows.append(row)
            elif steps[row] >= max_steps:
                replica = int(replica_ids[row])
                results[replica] = finalize(
                    codes[row],
                    False,
                    int(steps[row]),
                    int(last_change[row]),
                    int(np.count_nonzero(seen[row])),
                    int(leaders[row]),
                )
                finished_rows.append(row)
        for row in np.nonzero(status[:width] == 0)[0].tolist():
            # Step budget exhausted without certification.
            replica = int(replica_ids[row])
            results[replica] = finalize(
                codes[row],
                False,
                int(steps[row]),
                int(last_change[row]),
                int(np.count_nonzero(seen[row])),
                int(leaders[row]),
            )
            finished_rows.append(row)
        if finished_rows:
            keep = np.ones(width, dtype=bool)
            keep[finished_rows] = False
            codes = np.ascontiguousarray(codes[keep])
            seen = np.ascontiguousarray(seen[keep])
            steps = np.ascontiguousarray(steps[keep])
            last_change = np.ascontiguousarray(last_change[keep])
            leaders = np.ascontiguousarray(leaders[keep])
            status = np.ascontiguousarray(status[keep])
            replica_ids = np.ascontiguousarray(replica_ids[keep])
            ksrc.compact(keep)

    wall = time.perf_counter() - start_time
    for result in results:
        assert result is not None
        result.wall_time_seconds = wall / replica_count
    return results  # type: ignore[return-value]


def _drain_replica(
    plan: ExecutionPlan,
    protocol,
    compiled: "CompiledProtocol",
    source,
    codes_row: np.ndarray,
    step: int,
    last_change: int,
    seen_row: np.ndarray,
    precheck: bool,
) -> "SimulationResult":
    """Finish one replica sequentially from mid-run stack state.

    Continues the replica's own scheduler stream and certificate cadence,
    so the result is still identical to a standalone reference run.
    """
    from ..core.configuration import Configuration
    from ..core.simulator import SimulationResult
    from ..engine.stepper import CompiledRun

    max_steps = plan.max_steps
    check_interval = plan.check_interval
    run = CompiledRun(
        compiled, np.ascontiguousarray(codes_row, dtype=np.int64), backend=plan.backend
    )
    run.step = step
    run.last_change = last_change
    stabilized = False
    certified_step = 0
    while not stabilized and run.step < max_steps:
        # A v6 hand-off can arrive mid-block (after a table miss); align
        # the first batch to the certificate cadence so checks fall on
        # the same step numbers as a standalone run.
        batch = min(check_interval - run.step % check_interval, max_steps - run.step)
        initiators, responders = source.next_arrays(batch)
        run.apply_block(initiators, responders)
        if precheck and run.leader_count != 1:
            continue
        if protocol.is_output_stable_configuration(run.current_states(), plan.graph):
            stabilized = True
            certified_step = run.step
    decoded = run.current_states()
    seen_mask = run.seen_codes_mask(minimum_length=seen_row.shape[0])
    seen_mask[: seen_row.shape[0]] |= seen_row.astype(bool)
    return SimulationResult(
        stabilized=stabilized,
        certified_step=certified_step if stabilized else run.step,
        last_output_change_step=run.last_change,
        steps_executed=run.step,
        leaders=run.leader_count,
        final_configuration=Configuration(decoded, step=run.step),
        distinct_states_observed=int(seen_mask.sum()),
        leader_trace=[],
        wall_time_seconds=0.0,
    )
