"""Unified execution-plan runtime.

This package is the single seam between *what* an experiment runs —
``(protocol, graph, topology schedule, engine choice, replica seeds)`` —
and *how* it executes.  It grew out of three independently evolved
stacks (the core scheduler, the dynamic-topology scheduler and the
analytics trajectory streams) plus engine-selection logic that was
duplicated across ``Simulator.run``, the multi-replica runner, the
experiment harness and the orchestrator.  The runtime consolidates all
of it into three layers:

* :mod:`repro.runtime.pairs` — the directed ordered-pair index space
  shared by every sampler and kernel: one ``[0, 2m)`` encoding, one set
  of cached endpoint tables, one place that defines how a
  ``(edge, orientation)`` draw maps onto it.
* :mod:`repro.runtime.source` — :class:`InteractionSource`, the one
  buffered sampling engine behind ``RandomScheduler``,
  ``DynamicScheduler`` and the analytics streams: same refill-size
  contract, same epoch-boundary capping, one consume loop.  Every
  seeded stream produced before this package existed is reproduced bit
  for bit.
* :mod:`repro.runtime.plan` / :mod:`repro.runtime.execute` —
  :class:`ExecutionPlan`, which compiles a run once (engine resolution,
  shared transition tables, per-replica seeds) and then executes it
  through interchangeable executors: the reference interpreter, the
  compiled single-run engine, or the replica-batched stack that steps
  *all* replicas of a measurement through one C-kernel call per block.

``Simulator.run``, ``repro.engine.run_replicas`` and the experiment
harness are thin wrappers over :func:`compile_plan` +
:func:`execute_plan`; the orchestrator ships serialised unit plans to
its worker shards.  Adding a new backend (threads, GPU, remote shards)
means adding one executor here — nothing else in the package needs to
know.
"""

from .pairs import (
    decode_pairs,
    directed_pair_count,
    directed_tables,
    encode_oriented,
)
from .plan import ExecutionPlan, compile_plan
from .execute import execute_plan
from .source import REFILL_SIZE, InteractionSource

__all__ = [
    "ExecutionPlan",
    "InteractionSource",
    "REFILL_SIZE",
    "compile_plan",
    "decode_pairs",
    "directed_pair_count",
    "directed_tables",
    "encode_oriented",
    "execute_plan",
]
