#!/usr/bin/env python3
"""Quickstart: elect a leader on a random interaction graph.

This example walks through the core public API in a few lines:

1. build an interaction graph,
2. inspect the structural quantities the paper's bounds depend on
   (``B(G)``, ``H(G)``, conductance),
3. run the three leader-election protocols from the paper and compare
   their stabilization time and space usage.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_leader_election
from repro.experiments.reporting import render_table
from repro.graphs import erdos_renyi, summarize
from repro.propagation import broadcast_time_estimate
from repro.protocols import (
    FastLeaderElection,
    IdentifierLeaderElection,
    TokenLeaderElection,
)
from repro.walks import worst_case_hitting_time


def main() -> None:
    # 1. An Erdős–Rényi interaction graph, conditioned on connectivity —
    #    the "dense random" row of the paper's Table 1.
    graph = erdos_renyi(n=80, p=0.3, rng=42)
    print(render_table([summarize(graph)], title="Interaction graph"))
    print()

    # 2. The quantities the paper's bounds are stated in.
    broadcast = broadcast_time_estimate(graph, repetitions=5, max_sources=6, rng=1)
    hitting = worst_case_hitting_time(graph)
    print(
        render_table(
            [{"B(G) (measured)": broadcast.value, "H(G) (exact)": hitting}],
            title="Broadcast and hitting times",
        )
    )
    print()

    # 3. The three protocols of Table 1.
    protocols = {
        "token-6state (Thm 16)": TokenLeaderElection(),
        "identifier-broadcast (Thm 21)": IdentifierLeaderElection(graph.n_nodes),
        "fast-space-efficient (Thm 24)": FastLeaderElection.practical_for_graph(
            graph, broadcast_time=broadcast.value
        ),
    }
    rows = []
    for name, protocol in protocols.items():
        result = run_leader_election(protocol, graph, rng=7)
        rows.append(
            {
                "protocol": name,
                "stabilized": result.stabilized,
                "leaders": result.leaders,
                "stabilization steps": result.stabilization_step,
                "distinct states used": result.distinct_states_observed,
                "declared state space": protocol.state_space_size(),
            }
        )
    print(render_table(rows, title="Leader election on G(80, 0.3)"))
    print()
    print(
        "Reading the table: all three protocols elect exactly one leader;\n"
        "the constant-state token protocol pays a ~n^2 running time, while\n"
        "the identifier protocol is fastest but uses a polynomial state\n"
        "space and the fast protocol gets close with only polylog states."
    )


if __name__ == "__main__":
    main()
