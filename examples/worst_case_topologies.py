#!/usr/bin/env python3
"""Scenario: stress-testing a deployment against worst-case topologies.

A system designer adopting population-protocol-style gossip for leader
election may want to know *how bad it can get* if the interaction topology
degenerates.  Section 6 of the paper answers this with renitent graphs:
families where every protocol — no matter how clever, even with unbounded
states — needs ``Ω(B(G))`` steps, and ``B(G)`` can be pushed up to
``Θ(n^3)``.

This example

1. builds the Lemma 38 renitent construction (four identical clusters
   joined by long thin paths) for increasing path lengths ``ℓ``,
2. verifies the isolating-cover property empirically (the clusters stay
   mutually uninformed for ``Θ(ℓ·m)`` steps),
3. measures the resulting Theorem 34 lower bound next to the actual
   stabilization time of the best upper-bound protocol, and
4. shows the designer-facing conclusion: the gap between the best and the
   worst topology at the same population size.

Run with::

    python examples/worst_case_topologies.py
"""

from __future__ import annotations

from repro import run_leader_election
from repro.experiments.reporting import render_table
from repro.graphs import clique, four_copies_construction, star
from repro.lowerbounds import Cover, estimate_isolation_time, theorem34_lower_bound
from repro.propagation import broadcast_time_estimate
from repro.protocols import IdentifierLeaderElection


def main() -> None:
    base = star(8)
    rows = []
    for ell in (4, 8, 16):
        construction = four_copies_construction(base, ell)
        graph = construction.graph
        cover = Cover.from_construction(construction)
        threshold = 0.05 * construction.expected_isolation_steps
        isolation = estimate_isolation_time(cover, threshold, trials=6, rng=1)
        lower = theorem34_lower_bound(threshold, isolation.survival_probability)
        broadcast = broadcast_time_estimate(graph, repetitions=3, max_sources=5, rng=2)
        protocol = IdentifierLeaderElection(graph.n_nodes)
        result = run_leader_election(protocol, graph, rng=3)
        rows.append(
            {
                "path length ell": ell,
                "n": graph.n_nodes,
                "survive isolation": isolation.survival_probability,
                "Thm 34 lower bound": lower,
                "measured election steps": result.stabilization_step,
                "measured B(G)": broadcast.value,
            }
        )
    print(render_table(rows, title="Worst-case (renitent) topologies: lower bound vs reality"))

    # Best-case comparison at the largest size: a clique on the same number
    # of nodes elects a leader in near-linear time.
    worst = rows[-1]
    best_graph = clique(worst["n"])
    best = run_leader_election(IdentifierLeaderElection(best_graph.n_nodes), best_graph, rng=4)
    print()
    print(
        render_table(
            [
                {
                    "topology": "renitent (worst case)",
                    "n": worst["n"],
                    "election steps": worst["measured election steps"],
                },
                {
                    "topology": "clique (best case)",
                    "n": best_graph.n_nodes,
                    "election steps": best.stabilization_step,
                },
            ],
            title="Designer's takeaway: topology dominates population size",
        )
    )
    print()
    print(
        "The renitent construction forces every leader-election protocol to\n"
        "wait for information to cross the long paths (Theorem 34): the\n"
        "measured stabilization time sits above the certified lower bound\n"
        "and grows with ell, while a clique of the same size finishes orders\n"
        "of magnitude earlier."
    )


if __name__ == "__main__":
    main()
