#!/usr/bin/env python3
"""Scenario: electing a coordinator in a spatially deployed sensor field.

Population protocols were originally motivated by networks of passively
mobile, resource-constrained sensors.  When the sensors are *not* fully
mixed — e.g. fixed motes that can only talk to physical neighbours — the
interaction graph has spatial structure, and this is exactly the regime the
paper addresses: the complexity of leader election is governed by the
broadcast time ``B(G)`` of the deployment graph, not by the population size
alone.

This example compares three deployments with the same number of motes:

* a corridor deployment (a long cycle — low conductance, ``B = Θ(n^2)``),
* a field deployment (a 2-D torus — ``B = Θ(n^{3/2})``),
* a dense wireless mesh (random geometric graph with a large radio range).

For each deployment it estimates ``B(G)``, runs the paper's space-efficient
fast protocol (Theorem 24) sized from that estimate, and reports how the
election time tracks the broadcast time — the headline message of the
paper.

Run with::

    python examples/sensor_grid_deployment.py
"""

from __future__ import annotations

import math

from repro import run_leader_election
from repro.experiments.reporting import render_table
from repro.graphs import cycle, random_geometric, torus
from repro.propagation import broadcast_time_estimate
from repro.protocols import FastLeaderElection, TokenLeaderElection


def build_deployments(n_motes: int):
    """Three deployments with (approximately) ``n_motes`` sensors."""
    side = int(round(math.sqrt(n_motes)))
    return {
        "corridor (cycle)": cycle(n_motes),
        "field (torus)": torus(side, side),
        "dense mesh (geometric)": random_geometric(n_motes, radius=0.45, rng=3),
    }


def main() -> None:
    n_motes = 64
    deployments = build_deployments(n_motes)
    rows = []
    for name, graph in deployments.items():
        broadcast = broadcast_time_estimate(graph, repetitions=4, max_sources=6, rng=11)
        fast = FastLeaderElection.practical_for_graph(graph, broadcast_time=broadcast.value)
        fast_result = run_leader_election(fast, graph, rng=13)
        token_result = run_leader_election(TokenLeaderElection(), graph, rng=13)
        rows.append(
            {
                "deployment": name,
                "motes": graph.n_nodes,
                "links": graph.n_edges,
                "B(G) measured": broadcast.value,
                "fast protocol steps": fast_result.stabilization_step,
                "fast steps / B(G)": fast_result.stabilization_step / broadcast.value,
                "token protocol steps": token_result.stabilization_step,
                "fast states": fast.state_space_size(),
            }
        )
    print(render_table(rows, title=f"Coordinator election across deployments (~{n_motes} motes)"))
    print()
    print(
        "The fast protocol's election time scales with the deployment's\n"
        "broadcast time (the steps/B(G) column stays within a small factor\n"
        "across topologies), matching the O(B(G)·log n) bound of Theorem 24,\n"
        "while the 6-state token protocol degrades much faster on the\n"
        "corridor, whose random-walk hitting time is Θ(n^2)."
    )


if __name__ == "__main__":
    main()
