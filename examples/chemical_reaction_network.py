#!/usr/bin/env python3
"""Scenario: leader election in a well-mixed vs compartmentalised "solution".

Population protocols are formally equivalent to stochastic chemical
reaction networks with unit rates: molecules (agents) collide in pairs and
change species (states).  A *well-mixed* solution corresponds to the clique
interaction graph; a solution split into compartments connected by narrow
channels corresponds to a low-conductance graph (here: a barbell of two
well-mixed chambers joined by a thin channel).

The example shows how compartmentalisation slows down leader election for
the constant-state "molecular" protocol (the 6-state token protocol — the
kind of protocol implementable with a fixed set of chemical species), and
how much of that slowdown the paper's identifier protocol avoids, at the
cost of a species alphabet that grows with the population.

It also records the leader-count trajectory over time for the token
protocol in both settings, the observable a wet-lab experiment would track.

Run with::

    python examples/chemical_reaction_network.py
"""

from __future__ import annotations

from repro import Simulator, run_leader_election
from repro.experiments.reporting import render_table
from repro.graphs import barbell, clique
from repro.protocols import IdentifierLeaderElection, TokenLeaderElection


def leader_trajectory(graph, rng_seed: int, checkpoints: int = 12):
    """Leader counts over time for the token protocol on ``graph``."""
    simulator = Simulator(graph, TokenLeaderElection(), rng=rng_seed)
    budget = 400 * graph.n_nodes * graph.n_nodes
    result = simulator.run(
        max_steps=budget,
        record_leader_trace=True,
        trace_resolution=checkpoints,
        check_interval=max(graph.n_edges // 4, 1),
    )
    return result


def main() -> None:
    n = 60
    well_mixed = clique(n)
    chamber = (n - 4) // 2
    compartmentalised = barbell(chamber, n - 2 * chamber)

    rows = []
    trajectories = {}
    for name, graph in (("well-mixed (clique)", well_mixed),
                        ("compartmentalised (barbell)", compartmentalised)):
        token = leader_trajectory(graph, rng_seed=5)
        identifier = run_leader_election(
            IdentifierLeaderElection(graph.n_nodes), graph, rng=5
        )
        trajectories[name] = token
        rows.append(
            {
                "mixing": name,
                "n": graph.n_nodes,
                "token (6 species) steps": token.stabilization_step,
                "identifier protocol steps": identifier.stabilization_step,
                "slowdown of 6-species design": token.stabilization_step
                / max(identifier.stabilization_step, 1),
            }
        )
    print(render_table(rows, title="Molecular leader election: mixing matters"))

    print()
    for name, result in trajectories.items():
        print(f"Leader-count trajectory — {name}:")
        trace_rows = [
            {"interactions": step, "remaining leader candidates": count}
            for step, count in result.leader_trace
        ]
        print(render_table(trace_rows))
        print()

    print(
        "In the well-mixed chamber the candidate count decays quickly\n"
        "(pairwise annihilation is fast on a clique); the narrow channel of\n"
        "the compartmentalised solution throttles the random walk of the\n"
        "tokens, which is exactly the H(G)-dependence in Theorem 16."
    )


if __name__ == "__main__":
    main()
