"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that fully offline environments (no PyPI access, no ``wheel``
package available for PEP 660 editable builds) can still do a legacy
editable install::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
