"""Experiment LEM14-propagation: distance-k propagation lower bounds.

Paper claims:

* Lemma 13/14: for ``k >= ln n`` the distance-``k`` propagation time is at
  least ``k·m/(Δ·e^3)`` except with probability ``1/n``;
* these propagation bounds are what make the renitent covers isolating.

The benchmark measures the empirical violation rate of the Lemma 14
threshold on cycles and paths (the bounded-degree graphs where the bound is
tight up to constants) and the growth of the distance-``k`` propagation
time with ``k``.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import render_table
from repro.graphs import cycle, path
from repro.propagation import (
    empirical_violation_rate,
    propagation_lower_bound_threshold,
    propagation_time_estimate,
)

from _helpers import run_once


@pytest.mark.benchmark(group="lem14-propagation")
def test_lemma14_violation_rates(benchmark, report):
    def measure():
        rows = []
        for graph in (cycle(32), path(32)):
            k = max(int(math.ceil(math.log(graph.n_nodes))), 4)
            threshold = propagation_lower_bound_threshold(graph, k)
            rate = empirical_violation_rate(
                graph, distance=k, threshold=threshold, trials=30, rng=3
            )
            rows.append(
                {
                    "graph": graph.name,
                    "k": k,
                    "threshold k·m/(Δe³)": threshold,
                    "violation rate": rate,
                    "paper bound 1/n": 1.0 / graph.n_nodes,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="LEM14: propagation-time violation rates"))
    for row in rows:
        # The paper guarantees <= 1/n; allow generous Monte-Carlo slack.
        assert row["violation rate"] <= 0.2, row


@pytest.mark.benchmark(group="lem14-propagation")
def test_propagation_time_grows_superlinearly_in_distance(benchmark, report):
    """On constant-degree graphs T_k(G) = Ω(k·m) = Ω(k·n): doubling the
    distance at least doubles the propagation time."""

    def measure():
        graph = cycle(48)
        rows = []
        for k in (4, 8, 16):
            estimate = propagation_time_estimate(
                graph, distance=k, repetitions=4, max_sources=6, rng=5
            )
            rows.append({"k": k, "measured T_k(G)": estimate.value,
                         "lower bound k·m/(Δe³)": propagation_lower_bound_threshold(graph, k)})
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="LEM13/14: distance-k propagation times on cycle-48"))
    values = [row["measured T_k(G)"] for row in rows]
    assert values[1] > 1.5 * values[0]
    assert values[2] > 1.5 * values[1]
    for row in rows:
        assert row["measured T_k(G)"] >= row["lower bound k·m/(Δe³)"]
