"""Ablation A1: the streak-length parameter ``h`` of the fast protocol.

Section 5.2 fixes ``h = 8 + ⌈log2(B(G)·Δ/m)⌉`` so that a Θ(Δ)-degree node
ticks about once every ``Θ(B(G))`` steps and low-degree nodes essentially
never advance in time to survive the tournament.  The constant 8 buys the
w.h.p. guarantees; the asymptotics only need ``h`` to grow with
``log(B(G)·Δ/m)``.

This ablation sweeps the additive offset (our ``h_offset``) and reports the
resulting state count, stabilization time and whether the fast phase alone
produced the unique leader (no backup involvement) — showing the trade-off
the paper's constant encodes: larger ``h`` means fewer, more reliable
ticks (slower but with a cleaner high-degree bias), smaller ``h`` means a
faster but noisier tournament that leans on the always-correct backup more
often.
"""

from __future__ import annotations

import pytest

from repro.core import run_leader_election
from repro.experiments import render_table
from repro.graphs import erdos_renyi
from repro.propagation import broadcast_time_estimate
from repro.protocols import FastLeaderElection
from repro.protocols.fast import BACKUP

from _helpers import run_once

H_OFFSETS = [1, 2, 3, 4]
REPETITIONS = 3


def _sweep():
    graph = erdos_renyi(48, p=0.4, rng=3)
    broadcast = broadcast_time_estimate(graph, repetitions=4, max_sources=5, rng=5).value
    rows = []
    for offset in H_OFFSETS:
        protocol = FastLeaderElection.for_graph(
            graph, broadcast_time=broadcast, tau=0.5, h_offset=offset, alpha=3.0
        )
        steps = []
        backup_entries = 0
        successes = 0
        for seed in range(REPETITIONS):
            result = run_leader_election(protocol, graph, rng=seed + 11)
            steps.append(result.stabilization_step)
            successes += int(result.stabilized and result.leaders == 1)
            final_states = result.final_configuration.states
            backup_entries += int(any(state[0] == BACKUP for state in final_states))
        rows.append(
            {
                "h_offset": offset,
                "streak length h": protocol.parameters.streak_length,
                "state count": protocol.state_space_size(),
                "mean steps": sum(steps) / len(steps),
                "runs entering backup": backup_entries,
                "success rate": successes / REPETITIONS,
            }
        )
    return graph, broadcast, rows


@pytest.mark.benchmark(group="ablation-clock-h")
def test_ablation_streak_length(benchmark, report):
    graph, broadcast, rows = run_once(benchmark, _sweep)
    report(
        render_table(
            rows,
            title=f"A1: streak-length ablation on {graph.name} (measured B(G) ≈ {broadcast:.0f})",
        )
    )
    # Correctness is h-independent (the backup guarantees it).
    for row in rows:
        assert row["success rate"] == 1.0
    # The cost of larger h: state count and stabilization time both grow.
    assert rows[-1]["state count"] > rows[0]["state count"]
    assert rows[-1]["mean steps"] > rows[0]["mean steps"]
