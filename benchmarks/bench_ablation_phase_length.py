"""Ablation A2: the phase length ``L = ⌈2τ·log n⌉`` of the fast protocol.

The tournament of Section 5.2 runs for ``O(log n)`` levels; the constant
``τ`` controls the failure probability ``O(n^{-τ})`` of the fast path
(Lemma 33).  Larger ``τ`` means more levels, hence more states and a longer
elimination phase, but fewer executions that need the slow backup to fix a
multi-leader outcome.

The ablation sweeps ``τ`` and reports state count, stabilization time and
how often the fast phase alone already produced a unique leader by the time
the first node hit the maximum level (measured as "clean finishes").
"""

from __future__ import annotations

import pytest

from repro.core import LEADER, run_leader_election
from repro.experiments import render_table
from repro.graphs import erdos_renyi
from repro.propagation import broadcast_time_estimate
from repro.protocols import FastLeaderElection
from repro.protocols.fast import BACKUP
from repro.protocols.tokens import CANDIDATE

from _helpers import run_once

TAUS = [0.25, 0.5, 1.0, 1.5]
REPETITIONS = 3


def _sweep():
    graph = erdos_renyi(48, p=0.4, rng=7)
    broadcast = broadcast_time_estimate(graph, repetitions=4, max_sources=5, rng=9).value
    rows = []
    for tau in TAUS:
        protocol = FastLeaderElection.for_graph(
            graph, broadcast_time=broadcast, tau=tau, h_offset=1, alpha=3.0
        )
        steps = []
        successes = 0
        clean_finishes = 0
        for seed in range(REPETITIONS):
            result = run_leader_election(protocol, graph, rng=seed + 31)
            steps.append(result.stabilization_step)
            successes += int(result.stabilized and result.leaders == 1)
            final_states = result.final_configuration.states
            backup_candidates = sum(
                1 for s in final_states if s[0] == BACKUP and s[1] == CANDIDATE
            )
            fast_leaders = sum(
                1
                for s in final_states
                if s[0] != BACKUP and protocol.output(s) == LEADER
            )
            # A clean finish: exactly one leader-capable node overall, i.e.
            # the tournament had already isolated the winner.
            clean_finishes += int(backup_candidates + fast_leaders == 1)
        rows.append(
            {
                "tau": tau,
                "phase length L": protocol.parameters.phase_length,
                "max level": protocol.parameters.max_level,
                "state count": protocol.state_space_size(),
                "mean steps": sum(steps) / len(steps),
                "clean finishes": clean_finishes,
                "success rate": successes / REPETITIONS,
            }
        )
    return graph, rows


@pytest.mark.benchmark(group="ablation-phase-length")
def test_ablation_phase_length(benchmark, report):
    graph, rows = run_once(benchmark, _sweep)
    report(render_table(rows, title=f"A2: phase-length (τ) ablation on {graph.name}"))
    for row in rows:
        assert row["success rate"] == 1.0
    # More levels => more states and (weakly) more steps.
    assert rows[-1]["phase length L"] > rows[0]["phase length L"]
    assert rows[-1]["state count"] > rows[0]["state count"]
    assert rows[-1]["mean steps"] >= rows[0]["mean steps"] * 0.8
