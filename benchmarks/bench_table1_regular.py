"""Experiment T1-regular: Table 1, the "Regular" row group.

Paper claims (Table 1, regular graphs with conductance φ):

* identifier protocol: ``O(φ^{-1} n log n)`` steps,
* fast protocol: ``O(φ^{-1} n log^2 n)`` steps with
  ``O(log n·log(φ^{-1} log n))`` states (Corollary 25),
* token protocol: ``O(φ^{-1} n^2 log^2 n)`` steps, ``O(1)`` states.

Measured here on the two extremes of the regular family: the cycle
(``φ = Θ(1/n)``, so ``B(G) = Θ(n^2)``) and a random 4-regular graph
(``φ = Θ(1)``, so ``B(G) = Θ(n log n)``), plus a 2-D torus in between.
The φ-dependence shows up as: at equal ``n``, every protocol is much slower
on the cycle than on the expander, and the cycle's growth exponent for the
identifier protocol is about one power of ``n`` above the expander's.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    expected_exponents,
    identifier_protocol_spec,
    render_table,
    run_table1_family,
    token_protocol_spec,
)

from _helpers import run_once

CYCLE_SIZES = [16, 24, 36, 48]
EXPANDER_SIZES = [16, 24, 36, 48]
REPETITIONS = 3


@pytest.mark.benchmark(group="table1-regular")
def test_table1_cycle_row_group(benchmark, report, engine):
    group = run_once(
        benchmark,
        run_table1_family,
        "cycle",
        CYCLE_SIZES,
        repetitions=REPETITIONS,
        seed=11,
        step_budget_multiplier=200.0,
        engine=engine,
    )
    report(group.render())
    by_protocol = {row.protocol: row for row in group.rows}
    for row in group.rows:
        assert row.success_rate == 1.0
    # On cycles B(G) and H(G) are both Θ(n^2): the identifier protocol grows
    # roughly quadratically and the token protocol at least as fast.
    identifier = by_protocol["identifier-broadcast"]
    token = by_protocol["token-6state"]
    assert identifier.fitted_exponent > 1.4
    assert token.fitted_exponent >= identifier.fitted_exponent - 0.3
    assert token.mean_steps[-1] >= identifier.mean_steps[-1]


@pytest.mark.benchmark(group="table1-regular")
def test_table1_random_regular_row_group(benchmark, report, engine):
    group = run_once(
        benchmark,
        run_table1_family,
        "random-regular",
        EXPANDER_SIZES,
        repetitions=REPETITIONS,
        seed=13,
        engine=engine,
    )
    report(group.render())
    for row in group.rows:
        assert row.success_rate == 1.0
    by_protocol = {row.protocol: row for row in group.rows}
    # Constant conductance: near-linear growth for the fast protocols.
    assert by_protocol["identifier-broadcast"].fitted_exponent < 2.0
    assert (
        by_protocol["token-6state"].mean_steps[-1]
        > by_protocol["identifier-broadcast"].mean_steps[-1]
    )


@pytest.mark.benchmark(group="table1-regular")
def test_conductance_dependence_cycle_vs_expander(benchmark, report, engine):
    """At equal n, the low-conductance cycle is slower for every protocol."""

    def measure():
        from repro.experiments import compare_protocols_on_graph, default_step_budget, get_workload

        n = 40
        specs = [token_protocol_spec(), identifier_protocol_spec()]
        cycle_graph = get_workload("cycle").build(n, seed=1)
        expander_graph = get_workload("random-regular").build(n, seed=1)
        cycle_results = compare_protocols_on_graph(
            specs, cycle_graph, repetitions=3, seed=5,
            max_steps=default_step_budget(cycle_graph, multiplier=200.0),
            engine=engine,
        )
        expander_results = compare_protocols_on_graph(
            specs, expander_graph, repetitions=3, seed=5,
            max_steps=default_step_budget(expander_graph, multiplier=200.0),
            engine=engine,
        )
        return cycle_results, expander_results

    cycle_results, expander_results = run_once(benchmark, measure)
    rows = []
    for name in cycle_results:
        rows.append(
            {
                "protocol": name,
                "cycle mean steps": cycle_results[name].stabilization_steps.mean,
                "expander mean steps": expander_results[name].stabilization_steps.mean,
                "slowdown": cycle_results[name].stabilization_steps.mean
                / expander_results[name].stabilization_steps.mean,
            }
        )
    report(render_table(rows, title="T1-regular: conductance dependence at n = 40"))
    for row in rows:
        assert row["slowdown"] > 1.5, row
