"""Experiment SHARDING: million-node capacity under a resident-memory gate.

The sharded engine's claim is *capacity*, not speed: per-shard CSR
blocks and the ``[0, 2m)`` routing tables live in memory-mapped spool
files, so a sparse million-node topology runs without the resident
dense endpoint tables (and without ever being offered the ``(n, n)``
all-pairs distance matrix, which the graph layer now refuses at this
size).  This benchmark gates that claim directly:

* ``test_million_node_torus_under_rss_ceiling`` executes the registered
  ``torus-million`` scenario's workload — a 1000×1000 torus (n = 10^6,
  m = 2·10^6), token protocol, ~150k steps on 8 shards — in a **child
  process** and asserts the child's peak RSS stays under the ceiling.
  A subprocess is mandatory: ``ru_maxrss`` is a process-lifetime
  high-water mark, so measuring in the pytest process would report the
  residue of whatever ran before.

The ceiling defaults to 2048 MB and can be tuned for constrained CI
runners via ``REPRO_BENCH_RSS_MB``.  The child also reports the
partition fingerprint, pinning the layout the measurement ran on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments import render_table

RSS_CEILING_MB = float(os.environ.get("REPRO_BENCH_RSS_MB", "2048"))

_CHILD_SCRIPT = r"""
import json
import resource
import sys
import time

from repro.experiments.harness import default_step_budget, token_protocol_spec
from repro.experiments.workloads import get_workload
from repro.graphs.graph import DENSE_DISTANCE_MATRIX_LIMIT
from repro.runtime import compile_plan, execute_plan
from repro.sharding import PartitionedGraph, sharded_eligible

SIZE = 1_000_000
SHARDS = 8
MULTIPLIER = 1e-8  # the torus-million scenario's step budget

build_start = time.perf_counter()
graph = get_workload("torus").build(SIZE, seed=0)
assert graph.n_nodes == SIZE
assert graph.n_nodes > DENSE_DISTANCE_MATRIX_LIMIT  # the guard is live here
build_seconds = time.perf_counter() - build_start

spec = token_protocol_spec()
protocol = spec.factory(graph, 0)
budget = default_step_budget(graph, multiplier=MULTIPLIER)
plan = compile_plan(
    [protocol], graph, [20260808], max_steps=budget, shards=SHARDS
)
assert sharded_eligible(plan)
partition = PartitionedGraph(graph, SHARDS)

run_start = time.perf_counter()
(result,) = execute_plan(plan)
run_seconds = time.perf_counter() - run_start

peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
json.dump(
    {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "steps": result.steps_executed,
        "stabilized": result.stabilized,
        "leaders": result.leaders,
        "fingerprint": partition.fingerprint,
        "peak_rss_mb": peak_kb / 1024.0,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
    },
    sys.stdout,
)
"""


def _run_child() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr[-4000:]
    return json.loads(completed.stdout)


@pytest.mark.benchmark(group="sharding")
def test_million_node_torus_under_rss_ceiling():
    report = _run_child()

    rows = [
        {
            "nodes": report["n_nodes"],
            "edges": report["n_edges"],
            "steps": report["steps"],
            "peak RSS (MB)": f"{report['peak_rss_mb']:.0f}",
            "ceiling (MB)": f"{RSS_CEILING_MB:.0f}",
            "build (s)": f"{report['build_seconds']:.1f}",
            "run (s)": f"{report['run_seconds']:.1f}",
            "partition": report["fingerprint"][:16],
        }
    ]
    print()
    print(render_table(rows, title="Sharded engine: million-node torus"))

    assert report["n_nodes"] == 1_000_000
    assert report["steps"] > 0
    # A ~150k-step prefix cannot elect a leader on a 10^6-node torus;
    # what matters is that the run *executed* inside the memory budget.
    assert not report["stabilized"]
    assert report["peak_rss_mb"] < RSS_CEILING_MB, (
        f"peak RSS {report['peak_rss_mb']:.0f} MB exceeded the "
        f"{RSS_CEILING_MB:.0f} MB ceiling (REPRO_BENCH_RSS_MB to adjust)"
    )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
