"""Experiment SHARDING: capacity *and* throughput gates for the sharded engine.

The sharded engine makes two claims, both gated here:

**Capacity** — per-shard CSR blocks and the ``[0, 2m)`` routing tables
live in memory-mapped spool files, so a sparse million-node topology
runs without the resident dense endpoint tables (and without ever being
offered the ``(n, n)`` all-pairs distance matrix, which the graph layer
refuses at this size):

* ``test_million_node_torus_under_rss_ceiling`` executes the registered
  ``torus-million`` scenario's workload — a 1000×1000 torus (n = 10^6,
  m = 2·10^6), token protocol, ~150k steps on 8 shards — in a **child
  process** and asserts the child's peak RSS stays under the ceiling.
  A subprocess is mandatory: ``ru_maxrss`` is a process-lifetime
  high-water mark, so measuring in the pytest process would report the
  residue of whatever ran before.  The ceiling defaults to 2048 MB
  (``REPRO_BENCH_RSS_MB`` to tune) and the child reports the partition
  fingerprint, pinning the layout the measurement ran on.

**Throughput** (PR 10) — the span-scheduled kernel loop executes each
routed chunk as one native call (``repro_run_sharded_chunk``: exact
draw order, boundary events included) instead of a per-pair Python
loop, and the shard-worker pool fans the same spans out across forked
processes.  Both gates share the PR-9 per-pair Python loop as the
baseline (``REPRO_DISABLE_SHARD_KERNEL`` + ``REPRO_DISABLE_SHARD_WORKERS``
force it):

* ``test_kernel_shard_loop_speedup`` gates the in-process kernel loop
  at **≥ 3×** the Python loop on a 256×256 torus (8 shards, ~0.9 %
  boundary draws), single process, and prints both paths' steps/sec
  plus the opt-in ``shard_stats`` observability (run-length histogram,
  boundary fraction, exchange accounting).
* ``test_shard_worker_pool_speedup`` gates 4 shard workers at
  **≥ 1.8×** the Python loop on a ring of four bridged cliques — the
  clustered-topology case process parallelism exists for: the partition
  aligns with the cliques, so only the bridge draws (~0.002 %) cross
  shards and the workers run essentially handshake-free.  It runs only
  where 4 cores exist.

Both throughput tests first assert the faster path's results are
bit-identical to the slower one's — the speedup must never come at the
cost of the seeded-stream contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.engine.native import get_run_shard_kernel
from repro.experiments import render_table
from repro.graphs import torus
from repro.protocols import TokenLeaderElection
from repro.runtime import compile_plan
from repro.sharding import PartitionedGraph, execute_sharded, sharded_eligible

from _helpers import run_once

RSS_CEILING_MB = float(os.environ.get("REPRO_BENCH_RSS_MB", "2048"))

_CHILD_SCRIPT = r"""
import json
import resource
import sys
import time

from repro.experiments.harness import default_step_budget, token_protocol_spec
from repro.experiments.workloads import get_workload
from repro.graphs.graph import DENSE_DISTANCE_MATRIX_LIMIT
from repro.runtime import compile_plan, execute_plan
from repro.sharding import PartitionedGraph, sharded_eligible

SIZE = 1_000_000
SHARDS = 8
MULTIPLIER = 1e-8  # the torus-million scenario's step budget

build_start = time.perf_counter()
graph = get_workload("torus").build(SIZE, seed=0)
assert graph.n_nodes == SIZE
assert graph.n_nodes > DENSE_DISTANCE_MATRIX_LIMIT  # the guard is live here
build_seconds = time.perf_counter() - build_start

spec = token_protocol_spec()
protocol = spec.factory(graph, 0)
budget = default_step_budget(graph, multiplier=MULTIPLIER)
plan = compile_plan(
    [protocol], graph, [20260808], max_steps=budget, shards=SHARDS
)
assert sharded_eligible(plan)
partition = PartitionedGraph(graph, SHARDS)

run_start = time.perf_counter()
(result,) = execute_plan(plan)
run_seconds = time.perf_counter() - run_start

peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
json.dump(
    {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "steps": result.steps_executed,
        "stabilized": result.stabilized,
        "leaders": result.leaders,
        "fingerprint": partition.fingerprint,
        "peak_rss_mb": peak_kb / 1024.0,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
    },
    sys.stdout,
)
"""


def _run_child() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr[-4000:]
    return json.loads(completed.stdout)


@pytest.mark.benchmark(group="sharding")
def test_million_node_torus_under_rss_ceiling():
    report = _run_child()

    rows = [
        {
            "nodes": report["n_nodes"],
            "edges": report["n_edges"],
            "steps": report["steps"],
            "peak RSS (MB)": f"{report['peak_rss_mb']:.0f}",
            "ceiling (MB)": f"{RSS_CEILING_MB:.0f}",
            "build (s)": f"{report['build_seconds']:.1f}",
            "run (s)": f"{report['run_seconds']:.1f}",
            "partition": report["fingerprint"][:16],
        }
    ]
    print()
    print(render_table(rows, title="Sharded engine: million-node torus"))

    assert report["n_nodes"] == 1_000_000
    assert report["steps"] > 0
    # A ~150k-step prefix cannot elect a leader on a 10^6-node torus;
    # what matters is that the run *executed* inside the memory budget.
    assert not report["stabilized"]
    assert report["peak_rss_mb"] < RSS_CEILING_MB, (
        f"peak RSS {report['peak_rss_mb']:.0f} MB exceeded the "
        f"{RSS_CEILING_MB:.0f} MB ceiling (REPRO_BENCH_RSS_MB to adjust)"
    )


# ----------------------------------------------------------------------
# Throughput gates: kernel-backed shard loops and the worker pool
# ----------------------------------------------------------------------
THROUGHPUT_SIDE = 256  # 256x256 torus: n = 65_536, m = 131_072
THROUGHPUT_STEPS = 2_000_000
THROUGHPUT_SHARDS = 8
THROUGHPUT_SEED = 20260808
POOL_CLIQUES = 4  # ring of 4 bridged cliques, one per shard/worker
POOL_CLIQUE_SIZE = 300


def _ring_of_cliques(k, c):
    """``k`` cliques of ``c`` nodes, consecutive cliques bridged — the
    clustered topology whose aligned range partition leaves only the
    bridge draws (~2k/(k·c²) of the pair space) crossing shards."""
    from repro.graphs import Graph

    edges = []
    for i in range(k):
        base = i * c
        edges.extend(
            (base + u, base + v) for u in range(c) for v in range(u + 1, c)
        )
    edges.extend((i * c, ((i + 1) % k) * c) for i in range(k))
    return Graph(k * c, edges, name=f"ring-of-cliques-{k}x{c}")


def _result_tuple(result):
    return (
        result.stabilized,
        result.certified_step,
        result.last_output_change_step,
        result.steps_executed,
        result.leaders,
        result.distinct_states_observed,
        tuple(result.final_configuration.states),
    )


def _throughput_plan(graph, shards, **kwargs):
    plan = compile_plan(
        [TokenLeaderElection()],
        graph,
        [THROUGHPUT_SEED],
        max_steps=THROUGHPUT_STEPS,
        shards=shards,
        **kwargs,
    )
    assert sharded_eligible(plan)
    return plan


def _measure_shard_paths(
    graph, fast_env, slow_env, fast_kwargs=None, rounds=3, shards=THROUGHPUT_SHARDS
):
    """(fast seconds, slow seconds, fast result, slow result, stats).

    Interleaved min-of-N rounds: transient machine load hits both paths
    alike instead of biasing whichever side ran during it.  ``stats``
    is the fast path's opt-in shard observability from an extra
    untimed run.
    """

    # One partition for every run: the layout is a pure function of
    # (graph, shards) and costs the same on both paths — the gate is
    # about the execution loop, not the spool build.
    partition = PartitionedGraph(graph, shards)

    def run(env, **kwargs):
        saved = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        try:
            (result,) = execute_sharded(
                _throughput_plan(graph, shards, **kwargs), partition
            )
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        return result

    fast_kwargs = fast_kwargs or {}
    # Untimed warm-up: table/kernel compilation and the partition spool
    # land outside the measurement.
    run(fast_env, **fast_kwargs)
    run(slow_env)

    fast_seconds = float("inf")
    slow_seconds = float("inf")
    fast = slow = None
    for _ in range(rounds):
        start = time.perf_counter()
        fast = run(fast_env, **fast_kwargs)
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        slow = run(slow_env)
        slow_seconds = min(slow_seconds, time.perf_counter() - start)

    # The gate is meaningless unless both paths agree bit for bit.
    assert _result_tuple(fast) == _result_tuple(slow), (
        "shard execution paths diverged — determinism contract broken"
    )
    stats_run = run(fast_env, collect_shard_stats=True, **fast_kwargs)
    return fast_seconds, slow_seconds, fast, slow, stats_run.shard_stats


def _print_shard_stats(stats):
    histogram = {int(k): v for k, v in stats["run_length_histogram"].items()}
    rows = [
        {
            "path": stats["path"],
            "shards": stats["shards"],
            "workers": stats["workers"],
            "boundary pairs": stats["boundary_pairs"],
            "runs": sum(histogram.values()),
            "run lengths": " ".join(
                f"{length}:{count}" for length, count in sorted(histogram.items())
            ),
            "exchange posted": stats["exchange_posted"],
            "in flight": stats["exchange_in_flight"],
        }
    ]
    print(render_table(rows, title="Shard observability (collect_shard_stats)"))


@pytest.mark.benchmark(group="sharding")
def test_kernel_shard_loop_speedup(benchmark):
    """Kernel-backed shard loops must beat the PR-9 Python loop ≥ 3×."""
    if get_run_shard_kernel() is None:
        pytest.skip("native shard kernel unavailable")
    graph = torus(THROUGHPUT_SIDE, THROUGHPUT_SIDE)
    kernel_s, python_s, result, _, stats = run_once(
        benchmark,
        _measure_shard_paths,
        graph,
        {},
        {"REPRO_DISABLE_SHARD_KERNEL": "1"},
    )
    speedup = python_s / kernel_s
    steps = result.steps_executed
    print()
    print(
        render_table(
            [
                {
                    "graph": f"torus {THROUGHPUT_SIDE}x{THROUGHPUT_SIDE}",
                    "shards": THROUGHPUT_SHARDS,
                    "steps": steps,
                    "python s": round(python_s, 3),
                    "kernel s": round(kernel_s, 3),
                    "python steps/s": f"{steps / python_s:,.0f}",
                    "kernel steps/s": f"{steps / kernel_s:,.0f}",
                    "speedup": round(speedup, 2),
                }
            ],
            title="SHARDING: kernel-backed shard loops vs per-pair Python loop",
        )
    )
    _print_shard_stats(stats)
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x gate"


@pytest.mark.benchmark(group="sharding")
@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 cores")
def test_shard_worker_pool_speedup(benchmark):
    """4 shard workers must beat the PR-9 per-pair Python loop ≥ 1.8×.

    The workload is the pool's honest habitat: a clustered topology
    whose aligned partition leaves only ~0.002 % of draws crossing
    shards, so the forked workers run handshake-free between
    super-steps.  (On boundary-heavy workloads the in-process chunk
    kernel — gated above — is the right path; the executor's fallback
    chain picks it whenever no pool is requested.)
    """
    if get_run_shard_kernel() is None:
        pytest.skip("native shard kernel unavailable")
    graph = _ring_of_cliques(POOL_CLIQUES, POOL_CLIQUE_SIZE)
    pool_s, python_s, result, _, stats = run_once(
        benchmark,
        _measure_shard_paths,
        graph,
        {},
        {"REPRO_DISABLE_SHARD_KERNEL": "1", "REPRO_DISABLE_SHARD_WORKERS": "1"},
        fast_kwargs={"shard_workers": 4},
        shards=POOL_CLIQUES,
    )
    speedup = python_s / pool_s
    steps = result.steps_executed
    print()
    print(
        render_table(
            [
                {
                    "graph": graph.name,
                    "shards": POOL_CLIQUES,
                    "workers": 4,
                    "steps": steps,
                    "python s": round(python_s, 3),
                    "pool s": round(pool_s, 3),
                    "pool steps/s": f"{steps / pool_s:,.0f}",
                    "speedup": round(speedup, 2),
                }
            ],
            title="SHARDING: 4-worker pool vs per-pair Python loop",
        )
    )
    _print_shard_stats(stats)
    assert stats["path"] == "pool" and stats["workers"] == 4
    assert speedup >= 1.8, f"speedup {speedup:.2f}x below the 1.8x gate"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
