"""Ablation A3: the identifier width ``k`` of the Theorem 21 protocol.

Theorem 21 chooses ``k = ⌈4 log n⌉`` so that the probability of two nodes
generating the same maximal identifier is ``O(n / 2^k) = O(n^{-3})``, which
keeps the expensive always-correct backup off the critical path.  Smaller
``k`` shrinks the state space (``O(2^k)`` identifiers) but makes collisions
— and hence reliance on the token-protocol tie-break — more likely.

The ablation sweeps ``k`` on a clique and reports the empirical collision
probability of the *maximum* identifier, the state count and the
stabilization time.
"""

from __future__ import annotations

import math

import pytest

from repro.core import run_leader_election
from repro.experiments import render_table
from repro.graphs import clique
from repro.protocols import IdentifierLeaderElection

from _helpers import run_once

WIDTHS = [2, 4, 8, 16]
REPETITIONS = 6
N = 32


def _max_identifier_collision_probability(bits: int, trials: int = 4000, seed: int = 0) -> float:
    """Empirical probability that >= 2 of n uniform k-bit identifiers share the maximum.

    This is the event Lemma 22 bounds by ``n / 2^k``: identifiers are
    (close to) uniform on ``{2^k, ..., 2^{k+1} - 1}``, and a tie at the
    maximum is exactly what forces the token-protocol tie-break.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    draws = rng.integers(0, 2**bits, size=(trials, N))
    maxima = draws.max(axis=1)
    ties = (draws == maxima[:, None]).sum(axis=1)
    return float((ties >= 2).mean())


def _sweep():
    graph = clique(N)
    rows = []
    for bits in WIDTHS:
        protocol = IdentifierLeaderElection(N, identifier_bits=bits)
        steps = []
        successes = 0
        for seed in range(REPETITIONS):
            result = run_leader_election(protocol, graph, rng=seed + 53)
            steps.append(result.stabilization_step)
            successes += int(result.stabilized and result.leaders == 1)
        rows.append(
            {
                "k (bits)": bits,
                "identifier space 2^k": 2**bits,
                "state count": protocol.state_space_size(),
                "max-id collision prob": _max_identifier_collision_probability(bits, seed=bits),
                "Lemma 22 bound n/2^k": min(N / 2**bits, 1.0),
                "mean steps": sum(steps) / len(steps),
                "success rate": successes / REPETITIONS,
            }
        )
    return graph, rows


@pytest.mark.benchmark(group="ablation-id-width")
def test_ablation_identifier_width(benchmark, report):
    graph, rows = run_once(benchmark, _sweep)
    report(render_table(rows, title=f"A3: identifier-width ablation on {graph.name}"))
    # Always correct regardless of k (the embedded token protocol breaks
    # ties), which is the point of the interleaving in Theorem 21.
    for row in rows:
        assert row["success rate"] == 1.0
    # State count grows exponentially in k.
    assert rows[-1]["state count"] > rows[0]["state count"] * 100
    # Collision probability decays with k and respects the Lemma 22 bound
    # (up to Monte-Carlo noise at tiny probabilities).
    collision_probs = [row["max-id collision prob"] for row in rows]
    assert collision_probs[0] > collision_probs[-1]
    for row in rows:
        assert row["max-id collision prob"] <= row["Lemma 22 bound n/2^k"] + 0.05
    # Tiny identifier spaces force the token-protocol tie-break and are
    # therefore slower on average than the paper's k = 4 log n choice.
    paper_like = rows[-1]["mean steps"]
    tiny = rows[0]["mean steps"]
    assert tiny >= paper_like * 0.9
