"""Experiment T1-renitent: Table 1, the "Renitent" row (Ω(B(G)) lower bound).

Paper claims (Theorems 34 and 39): on f-renitent graphs — graphs admitting
an f(n)-isolating (K, ℓ)-cover — *any* stable leader-election protocol
needs ``Ω(f(n))`` expected steps, and the Lemma 38 construction realises
``f(n) = Θ(ℓ·m) = Θ(B(G))``.

The benchmark builds the Lemma 38 construction (four star copies joined by
long paths), then measures

* the cover's empirical isolation behaviour (``Pr[Y(C) >= t]`` at the
  Lemma 38 scale must be at least 1/2 — the defining property),
* the implied Theorem 34 lower bound,
* the actual stabilization time of the best upper-bound protocol
  (the identifier protocol, which is ``O(B(G) + n log n)``),
* the measured broadcast time ``B(G)``,

and checks the sandwich: lower bound ≤ measured stabilization, and measured
stabilization within a constant factor of ``B(G)`` (time-optimality on this
family, as the paper concludes).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    default_step_budget,
    identifier_protocol_spec,
    measure_protocol_on_graph,
    render_table,
    renitent_star_construction,
)
from repro.lowerbounds import Cover, check_cover, estimate_isolation_time, theorem34_lower_bound
from repro.propagation import broadcast_time_estimate

from _helpers import run_once

POPULATION_SIZES = [48, 80]
REPETITIONS = 3


def _measure(n_target: int, engine: str = "auto"):
    construction = renitent_star_construction(n_target)
    graph = construction.graph
    cover = Cover.from_construction(construction)
    structure = check_cover(cover, check_isomorphism=False)
    threshold = 0.05 * construction.expected_isolation_steps
    isolation = estimate_isolation_time(cover, threshold, trials=8, rng=41)
    lower_bound = theorem34_lower_bound(threshold, isolation.survival_probability)
    broadcast = broadcast_time_estimate(graph, repetitions=3, max_sources=5, rng=43).value
    measurement = measure_protocol_on_graph(
        identifier_protocol_spec(),
        graph,
        repetitions=REPETITIONS,
        seed=47,
        max_steps=default_step_budget(graph, multiplier=400.0),
        engine=engine,
    )
    return construction, structure, isolation, lower_bound, broadcast, measurement


@pytest.mark.benchmark(group="table1-renitent")
@pytest.mark.parametrize("n_target", POPULATION_SIZES)
def test_renitent_lower_bound_sandwich(benchmark, report, n_target, engine):
    construction, structure, isolation, lower_bound, broadcast, measurement = run_once(
        benchmark, _measure, n_target, engine
    )
    graph = construction.graph
    rows = [
        {
            "graph": graph.name,
            "n": graph.n_nodes,
            "m": graph.n_edges,
            "ell": construction.ell,
            "isolation Pr[Y>=t]": isolation.survival_probability,
            "Thm34 lower bound": lower_bound,
            "measured B(G)": broadcast,
            "identifier mean steps": measurement.stabilization_steps.mean,
        }
    ]
    report(render_table(rows, title=f"T1-renitent (target n = {n_target})"))

    # Structural cover properties of the Lemma 38 construction.
    assert structure.covers_all_nodes
    assert structure.sets_equal_size
    assert structure.has_disjoint_pair
    # The cover really is isolating at (a twentieth of) the Θ(ℓ m) scale.
    assert isolation.survival_probability >= 0.5
    # Sandwich: Ω(f) lower bound <= measured stabilization <= O(B + n log n).
    assert measurement.success_rate == 1.0
    assert measurement.stabilization_steps.mean >= lower_bound
    assert measurement.stabilization_steps.mean <= 60.0 * broadcast
