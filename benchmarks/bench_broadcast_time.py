"""Experiment THM6-broadcast: broadcast-time bounds (Theorem 6, Lemmas 11–12, Theorem 15).

Paper claims:

* ``B(G) ∈ O(m·min{log n / β, log n + D})``  (Theorem 6),
* ``B(G) >= (m/Δ)·ln(n−1)``                  (Lemma 12),
* ``B(G) ∈ Θ(n·max{D, log n})`` for bounded-degree graphs (Theorem 15),
* ``B(G) ∈ O(n log n)`` w.h.p. on dense ``G(n, p)`` (Lemma 11).

The benchmark estimates ``B(G)`` by Monte-Carlo one-way epidemics on the
Table 1 graph families and checks that every measurement falls inside the
analytic envelope, and that the cycle/clique/star ordering matches the
theory (cycle ``Θ(n^2)`` ≫ star ``Θ(n log n)`` ≈ clique ``Θ(n log n)``).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import render_table
from repro.graphs import clique, cycle, erdos_renyi, star, torus
from repro.propagation import (
    bounded_degree_broadcast_order,
    broadcast_bounds,
    broadcast_time_estimate,
)

from _helpers import run_once

GRAPHS = {
    "clique": lambda: clique(48),
    "cycle": lambda: cycle(48),
    "star": lambda: star(48),
    "torus": lambda: torus(7, 7),
    "dense-gnp": lambda: erdos_renyi(48, p=0.5, rng=3),
}


def _measure_all():
    results = {}
    for name, factory in GRAPHS.items():
        graph = factory()
        estimate = broadcast_time_estimate(graph, repetitions=5, max_sources=8, rng=7)
        bounds = broadcast_bounds(graph)
        results[name] = (graph, estimate.value, bounds)
    return results


@pytest.mark.benchmark(group="thm6-broadcast")
def test_broadcast_time_envelope(benchmark, report):
    results = run_once(benchmark, _measure_all)
    rows = []
    for name, (graph, measured, bounds) in results.items():
        rows.append(
            {
                "graph": graph.name,
                "measured B(G)": measured,
                "Lemma 12 lower": bounds.lower,
                "Theorem 6 upper": bounds.upper,
                "within envelope": bounds.lower * 0.4 <= measured <= bounds.upper * 1.5,
            }
        )
    report(render_table(rows, title="THM6: measured broadcast times vs analytic bounds"))
    for row in rows:
        assert row["within envelope"], row

    # Family ordering: cycle (Θ(n^2)) is the slowest; clique, star and the
    # dense random graph are all Θ(n log n) at the same n and within a
    # small factor of each other.
    measured = {name: value for name, (_g, value, _b) in results.items()}
    assert measured["cycle"] > 2.0 * measured["clique"]
    assert measured["cycle"] > 2.0 * measured["dense-gnp"]
    assert measured["star"] < 6.0 * measured["clique"]


@pytest.mark.benchmark(group="thm6-broadcast")
def test_bounded_degree_scaling_matches_theorem15(benchmark, report):
    """Theorem 15: for bounded-degree graphs B(G) = Θ(n·max{D, log n})."""

    def measure():
        sizes = [16, 32, 64]
        rows = []
        for n in sizes:
            graph = cycle(n)
            measured = broadcast_time_estimate(graph, repetitions=4, max_sources=5, rng=11).value
            order = bounded_degree_broadcast_order(graph)
            rows.append({"n": n, "measured": measured, "n*max(D, log n)": order,
                         "ratio": measured / order})
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="THM15: bounded-degree broadcast scaling (cycles)"))
    ratios = [row["ratio"] for row in rows]
    # Θ-consistency: the measured/Θ-shape ratio stays within a constant
    # band while the raw values grow by ~16x.
    assert max(ratios) <= 4.0 * min(ratios)
    assert rows[-1]["measured"] > 8.0 * rows[0]["measured"]


@pytest.mark.benchmark(group="thm6-broadcast")
def test_dense_random_graph_broadcast_is_near_nlogn(benchmark, report):
    """Lemma 11: on G(n, p) with constant p, B(G) = O(n log n) w.h.p."""

    def measure():
        rows = []
        for n in (24, 48, 96):
            graph = erdos_renyi(n, p=0.5, rng=13)
            measured = broadcast_time_estimate(graph, repetitions=3, max_sources=5, rng=17).value
            rows.append({"n": n, "measured": measured, "n log n": n * math.log(n),
                         "ratio": measured / (n * math.log(n))})
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="LEM11: dense G(n, 1/2) broadcast vs n log n"))
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) <= 3.0 * min(ratios)
