"""Experiment SEC5-clock: the streak-clock subroutine (Lemmas 26–29).

Paper claims:

* Lemma 27(a): ``E[K] = 2^{h+1} − 2`` interactions per completed streak,
* Lemma 27(b): ``E[X(d)] = E[K]·m/d`` scheduler steps per streak for a
  degree-``d`` node (high-degree nodes tick faster),
* Lemma 28/29: the number of steps to complete ``ℓ >= ln n`` streaks is
  concentrated within constant factors of its mean.

The benchmark measures the tick frequency across ``h`` and across node
degrees on a star (the extreme degree spread) and checks the formulas and
the concentration claim empirically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import render_table
from repro.graphs import star
from repro.protocols import (
    expected_interactions_per_tick,
    expected_steps_per_tick,
    simulate_interactions_until_tick,
    simulate_steps_until_ticks,
)

from _helpers import run_once


@pytest.mark.benchmark(group="sec5-clock")
def test_lemma27a_expected_interactions_per_tick(benchmark, report):
    def measure():
        rng = np.random.default_rng(3)
        rows = []
        for h in (1, 2, 3, 4, 5):
            samples = [simulate_interactions_until_tick(h, rng=rng) for _ in range(2000)]
            rows.append(
                {
                    "h": h,
                    "measured E[K]": float(np.mean(samples)),
                    "paper 2^{h+1}-2": expected_interactions_per_tick(h),
                    "ratio": float(np.mean(samples)) / expected_interactions_per_tick(h),
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="LEM27a: interactions per streak completion"))
    for row in rows:
        assert 0.9 <= row["ratio"] <= 1.1, row


@pytest.mark.benchmark(group="sec5-clock")
def test_lemma27b_degree_dependence_on_star(benchmark, report):
    def measure():
        graph = star(24)
        h = 2
        rows = []
        for node in (0, 1):  # centre (degree n-1) vs a leaf (degree 1)
            samples = [
                simulate_steps_until_ticks(graph, node, h, rng=seed) for seed in range(25)
            ]
            expected = expected_steps_per_tick(h, graph.n_edges, graph.degree(node))
            rows.append(
                {
                    "node": "centre" if node == 0 else "leaf",
                    "degree": graph.degree(node),
                    "measured E[X(d)]": float(np.mean(samples)),
                    "paper E[K]·m/d": expected,
                    "ratio": float(np.mean(samples)) / expected,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="LEM27b: steps per streak vs node degree (star-24)"))
    for row in rows:
        assert 0.6 <= row["ratio"] <= 1.6, row
    # The degree dependence itself: leaves tick ~Δ times slower.
    centre, leaf = rows[0], rows[1]
    assert leaf["measured E[X(d)]"] > 5.0 * centre["measured E[X(d)]"]


@pytest.mark.benchmark(group="sec5-clock")
def test_lemma28_concentration_of_many_streaks(benchmark, report):
    """Lemma 28: R (interactions for ℓ streaks) concentrates in [E[R]/2, 4E[R]]."""

    def measure():
        rng = np.random.default_rng(11)
        h, ell = 3, 8
        totals = []
        for _ in range(300):
            total = sum(simulate_interactions_until_tick(h, rng=rng) for _ in range(ell))
            totals.append(total)
        expected = expected_interactions_per_tick(h) * ell
        totals = np.asarray(totals, dtype=float)
        return {
            "E[R]": expected,
            "measured mean": float(totals.mean()),
            "P[R <= E[R]/2]": float((totals <= expected / 2).mean()),
            "P[R >= 4 E[R]]": float((totals >= 4 * expected).mean()),
        }

    summary = run_once(benchmark, measure)
    report(render_table([summary], title="LEM28: concentration of ℓ-streak completion"))
    assert summary["measured mean"] == pytest.approx(summary["E[R]"], rel=0.15)
    assert summary["P[R <= E[R]/2]"] <= 0.05
    assert summary["P[R >= 4 E[R]]"] <= 0.05
