"""Experiment RUNTIME: batched measurement dispatch vs trial-serial.

The execution-plan runtime routes every harness measurement through the
replica-batched stack by default: all trials of a (protocol, graph) cell
advance together, one ``repro_run_multi`` C-kernel call per
certificate-cadence block, scheduler streams consumed as raw directed
pair indices, and the kernel-maintained leader counts gating the Python
certificate.  This benchmark gates that path against **trial-serial**
dispatch — one ``run_leader_election`` per trial, the harness's
pre-runtime execution plan — on the Table-1 clique-100 workload:

* ``test_batched_measurement_speedup`` (token protocol, 64 trials) must
  show **≥ 2×** with the native kernel.  Without it the stack is
  unavailable and the plan executes trial-sequentially; the gate then
  only requires no regression (≥ 0.7×).
* ``test_fast_protocol_measurement`` adds the fast protocol, whose
  measurement additionally batches all trials' ``B(G)`` epidemics into
  one replica stack (native floor 1.4×).
* ``test_kernel_v6_epoch_speedup`` gates kernel v6 (in-kernel SplitMix64
  streams, one C call per epoch) against the v5 refill stack on the same
  workload: **≥ 1.5×** single-thread.
* ``test_kernel_v6_threaded_speedup`` additionally requires **≥ 2.5×**
  over v5 with 4 kernel threads; it runs only where 4 cores exist.

Every test first asserts the faster path's results are **bit-identical**
to the slower ones (wall time aside) — the speedup must never come at
the cost of the seeded-stream contract.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.seeds import trial_seed
from repro.core.simulator import run_leader_election
from repro.engine.native import get_run_epoch_kernel, get_run_multi_kernel
from repro.experiments import render_table
from repro.experiments.harness import (
    default_step_budget,
    fast_protocol_spec,
    run_measurement_trials,
    token_protocol_spec,
    trial_record_from_result,
)
from repro.graphs import clique
from repro.runtime import compile_plan
from repro.runtime.execute import _execute_stack, _execute_stack_v6

from _helpers import run_once

N = 100
BASE_SEED = 0


def _strip_wall(record):
    record = dict(record)
    record.pop("wall_time_seconds", None)
    return record


def _measure_dispatch(spec, repetitions):
    """(batched seconds, serial seconds, batched results, serial results)."""
    graph = clique(N)
    budget = default_step_budget(graph)
    seeds = [trial_seed(BASE_SEED, index) for index in range(repetitions)]

    # Untimed warm-up of both paths: kernel + table compilation and the
    # directed-pair caches land outside the measurement.
    run_measurement_trials(spec, graph, range(2), seed=BASE_SEED, max_steps=budget)
    run_leader_election(
        spec.factory(graph, seeds[0]), graph, rng=seeds[0], max_steps=budget, engine="auto"
    )

    # Interleaved min-of-4 rounds: transient machine load (a noisy CI
    # neighbour, a GC pause) hits both paths alike instead of biasing
    # whichever side happened to run during it.
    batched_seconds = float("inf")
    serial_seconds = float("inf")
    batched = None
    serial = None
    for _ in range(4):
        start = time.perf_counter()
        batched, _ = run_measurement_trials(
            spec, graph, range(repetitions), seed=BASE_SEED, max_steps=budget
        )
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        serial = [
            run_leader_election(
                spec.factory(graph, seed), graph, rng=seed, max_steps=budget, engine="auto"
            )
            for seed in seeds
        ]
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    # The gate is meaningless unless the two dispatch plans agree bit for
    # bit on every measured value.
    for index, (a, b) in enumerate(zip(batched, serial)):
        assert _strip_wall(trial_record_from_result(a)) == _strip_wall(
            trial_record_from_result(b)
        ), f"trial {index} diverged between batched and trial-serial dispatch"
    return batched_seconds, serial_seconds, batched, serial


def _report_row(report, title, repetitions, batched_s, serial_s, results, native):
    speedup = serial_s / batched_s
    report(
        render_table(
            [
                {
                    "graph": f"clique n={N}",
                    "trials": repetitions,
                    "mean steps": round(
                        sum(r.steps_executed for r in results) / len(results), 1
                    ),
                    "trial-serial s": round(serial_s, 3),
                    "batched s": round(batched_s, 3),
                    "speedup": round(speedup, 2),
                    "path": "C multi-kernel stack" if native else "sequential fallback",
                }
            ],
            title=title,
        )
    )
    return speedup


@pytest.mark.benchmark(group="runtime-dispatch")
def test_batched_measurement_speedup(benchmark, report):
    """Batched harness measurements must beat trial-serial ≥2× (native)."""
    native = get_run_multi_kernel() is not None
    batched_s, serial_s, results, _ = run_once(
        benchmark, _measure_dispatch, token_protocol_spec(), 64
    )
    speedup = _report_row(
        report,
        "RUNTIME: batched vs trial-serial measurement dispatch (token, clique n=100)",
        64,
        batched_s,
        serial_s,
        results,
        native,
    )
    floor = 2.0 if native else 0.7
    assert speedup >= floor, f"speedup {speedup:.2f}x below the {floor}x gate"


@pytest.mark.benchmark(group="runtime-dispatch")
def test_fast_protocol_measurement(benchmark, report):
    """Fast protocol: plan batches the trials AND their B(G) epidemics."""
    native = get_run_multi_kernel() is not None
    batched_s, serial_s, results, _ = run_once(
        benchmark, _measure_dispatch, fast_protocol_spec(), 24
    )
    speedup = _report_row(
        report,
        "RUNTIME: batched vs trial-serial measurement dispatch (fast, clique n=100)",
        24,
        batched_s,
        serial_s,
        results,
        native,
    )
    floor = 1.4 if native else 0.6
    assert speedup >= floor, f"speedup {speedup:.2f}x below the {floor}x gate"


def _result_tuple(result):
    return (
        result.stabilized,
        result.certified_step,
        result.last_output_change_step,
        result.steps_executed,
        result.leaders,
        result.distinct_states_observed,
        tuple(result.final_configuration.states),
    )


def _v6_plan(spec, graph, seeds, budget, threads):
    protocol = spec.factory(graph, seeds[0])
    return compile_plan(
        [protocol] * len(seeds),
        graph,
        seeds,
        max_steps=budget,
        engine="compiled",
        threads=threads,
    )


def _measure_v6_vs_v5(repetitions, threads):
    """(v6 seconds, v5 seconds, results) on the Table-1 clique workload."""
    spec = token_protocol_spec()
    graph = clique(N)
    budget = default_step_budget(graph)
    seeds = [trial_seed(BASE_SEED, index) for index in range(repetitions)]

    # Untimed warm-up: kernel + table compilation outside the measurement.
    _execute_stack_v6(_v6_plan(spec, graph, seeds[:2], budget, threads))
    _execute_stack(_v6_plan(spec, graph, seeds[:2], budget, threads))

    v6_seconds = float("inf")
    v5_seconds = float("inf")
    via_v6 = None
    via_v5 = None
    for _ in range(4):
        start = time.perf_counter()
        via_v6 = _execute_stack_v6(_v6_plan(spec, graph, seeds, budget, threads))
        v6_seconds = min(v6_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        via_v5 = _execute_stack(_v6_plan(spec, graph, seeds, budget, threads))
        v5_seconds = min(v5_seconds, time.perf_counter() - start)

    for index, (a, b) in enumerate(zip(via_v6, via_v5)):
        assert _result_tuple(a) == _result_tuple(b), (
            f"trial {index} diverged between the v6 and v5 stacks"
        )
    return v6_seconds, v5_seconds, via_v6


def _report_v6_row(report, title, repetitions, threads, v6_s, v5_s, results):
    speedup = v5_s / v6_s
    report(
        render_table(
            [
                {
                    "graph": f"clique n={N}",
                    "trials": repetitions,
                    "threads": threads,
                    "mean steps": round(
                        sum(r.steps_executed for r in results) / len(results), 1
                    ),
                    "v5 stack ms": round(v5_s * 1000, 1),
                    "v6 epoch ms": round(v6_s * 1000, 1),
                    "speedup": round(speedup, 2),
                }
            ],
            title=title,
        )
    )
    return speedup


@pytest.mark.benchmark(group="runtime-dispatch")
@pytest.mark.skipif(get_run_epoch_kernel() is None, reason="kernel v6 unavailable")
def test_kernel_v6_epoch_speedup(benchmark, report):
    """In-kernel streams must beat the v5 refill stack ≥1.5× single-thread."""
    v6_s, v5_s, results = run_once(benchmark, _measure_v6_vs_v5, 64, 1)
    speedup = _report_v6_row(
        report,
        "RUNTIME: kernel v6 (in-kernel streams) vs v5 refill stack (token, clique n=100)",
        64,
        1,
        v6_s,
        v5_s,
        results,
    )
    assert speedup >= 1.5, f"v6 speedup {speedup:.2f}x below the 1.5x gate"


@pytest.mark.benchmark(group="runtime-dispatch")
@pytest.mark.skipif(get_run_epoch_kernel() is None, reason="kernel v6 unavailable")
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="threaded gate needs at least 4 cores"
)
def test_kernel_v6_threaded_speedup(benchmark, report):
    """Four kernel threads must beat the v5 stack ≥2.5× (same results)."""
    v6_s, v5_s, results = run_once(benchmark, _measure_v6_vs_v5, 64, 4)
    speedup = _report_v6_row(
        report,
        "RUNTIME: kernel v6 with 4 threads vs v5 refill stack (token, clique n=100)",
        64,
        4,
        v6_s,
        v5_s,
        results,
    )
    assert speedup >= 2.5, f"threaded v6 speedup {speedup:.2f}x below the 2.5x gate"
