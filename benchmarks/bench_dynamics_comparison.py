"""Supplementary experiment SEC3.1-dynamics: edge- vs node-sampling dynamics.

Section 3.1 of the paper stresses that the population model samples an
*edge* per step (so high-degree nodes interact more often), whereas
classical asynchronous rumour-spreading models activate a uniformly random
*node*.  On regular graphs the two coincide; on irregular graphs they do
not, and the degree bias is exactly what the fast protocol's streak clocks
exploit (high-degree nodes tick faster).

This benchmark measures single-source broadcast times under both dynamics
on a regular graph (cycle — ratios near 1) and on highly irregular graphs
(star, double star — ratios far from 1), plus the per-node interaction-rate
imbalance ``Δ/δ`` that explains the difference.
"""

from __future__ import annotations

import pytest

from repro.experiments import render_table
from repro.graphs import cycle, double_star, star
from repro.propagation import compare_broadcast_dynamics, interaction_rate_imbalance

from _helpers import run_once


@pytest.mark.benchmark(group="sec31-dynamics")
def test_edge_vs_node_sampling_broadcast(benchmark, report):
    def measure():
        rows = []
        cases = [
            ("cycle-32 (regular)", cycle(32), 0),
            ("star-32 (leaf source)", star(32), 1),
            ("double-star-15-15 (leaf source)", double_star(15, 15), 2),
        ]
        for label, graph, source in cases:
            comparison = compare_broadcast_dynamics(graph, source, repetitions=6, rng=7)
            rows.append(
                {
                    "graph": label,
                    "degree imbalance Δ/δ": interaction_rate_imbalance(graph),
                    "edge-sampling steps": comparison.edge_sampling.mean,
                    "node-sampling steps": comparison.node_sampling.mean,
                    "ratio": comparison.steps_ratio,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    report(render_table(rows, title="SEC3.1: edge-sampling vs node-sampling broadcast"))
    by_graph = {row["graph"]: row for row in rows}
    # Regular graph: the two dynamics agree per step (ratio near 1).
    assert 0.6 <= by_graph["cycle-32 (regular)"]["ratio"] <= 1.6
    # Strongly irregular graph with two hubs: the dynamics measurably differ
    # (the population model is not "asynchronous push-pull" once degrees are
    # unequal) — informing the second hub's leaves is throttled under node
    # sampling because the hubs activate only 1/n of the time.
    assert by_graph["double-star-15-15 (leaf source)"]["ratio"] < 0.8
    # The star alone is a poor discriminator (broadcast is coupon-collector
    # bound either way), so we only require it to stay in a sane band.
    assert 0.5 <= by_graph["star-32 (leaf source)"]["ratio"] <= 2.0
    # And the imbalance measure orders the families as expected.
    assert by_graph["star-32 (leaf source)"]["degree imbalance Δ/δ"] > 10
    assert by_graph["cycle-32 (regular)"]["degree imbalance Δ/δ"] == 1.0
