"""Experiment T1-dense-random: Table 1, the "Dense random" row group.

Paper claims (Table 1, ``G ~ G(n, p)`` with constant ``p``, average case):

* identifier protocol: ``Θ(n log n)`` steps (Theorem 40 + 21),
* fast protocol: ``O(n log^2 n)`` steps, ``O(log^2 n)`` states,
* constant-state protocols: ``o(n^2)`` impossible (Theorem 46) and the
  token protocol achieves ``O(n^2 log^2 n)`` (with ``H(G) ∈ O(n)``,
  Proposition 20).

The benchmark sweeps connected ``G(n, 1/2)`` graphs, fits growth exponents
and checks the quadratic-vs-near-linear separation between the token
protocol and the identifier/fast protocols — the measurable content of the
``Ω(n^2)`` average-case lower bound for constant-state protocols.
"""

from __future__ import annotations

import pytest

from repro.experiments import expected_exponents, render_table, run_table1_family

from _helpers import run_once

SIZES = [16, 24, 36, 52, 72]
REPETITIONS = 3


@pytest.mark.benchmark(group="table1-dense-random")
def test_table1_dense_random_row_group(benchmark, report, engine):
    group = run_once(
        benchmark,
        run_table1_family,
        "dense-gnp",
        SIZES,
        repetitions=REPETITIONS,
        seed=23,
        engine=engine,
    )
    expected = expected_exponents()["dense-gnp"]
    rows = [
        {**row.as_dict(), "paper_exponent": expected.get(row.protocol, float("nan"))}
        for row in group.rows
    ]
    report(group.render())
    report(
        render_table(
            rows,
            columns=["protocol", "exponent", "paper_exponent", "states", "success"],
            title="T1-dense-random: fitted vs paper growth exponents",
        )
    )
    by_protocol = {row.protocol: row for row in group.rows}
    for row in group.rows:
        assert row.success_rate == 1.0
    token = by_protocol["token-6state"]
    identifier = by_protocol["identifier-broadcast"]
    fast = by_protocol["fast-space-efficient"]
    # Constant-state protocol needs ~ n^2; the others stay near n log n.
    assert token.fitted_exponent > identifier.fitted_exponent + 0.25
    assert token.mean_steps[-1] > 2.0 * identifier.mean_steps[-1]
    # Space: O(1) vs O(log^2 n) vs polynomial.
    assert token.states_observed <= 6
    assert fast.states_observed < identifier.states_observed
