"""Experiment T1-general: Table 1, the "General" row group.

Paper claims (Table 1, general graphs):

* identifier protocol: ``O(B(G) + n log n)`` steps, ``O(n^4)`` states,
* fast protocol: ``O(B(G) log n)`` steps, ``O(log^2 n)`` states,
* token protocol: ``O(H(G) n log n)`` steps, ``O(1)`` states.

The benchmark uses three irregular graphs with very different ``B(G)`` /
``H(G)`` profiles — a lollipop (worst-case hitting time), a barbell (low
conductance) and a chord-augmented cycle — and verifies that (a) every
protocol elects exactly one leader, (b) the identifier protocol's time
tracks the measured ``B(G)`` rather than ``H(G)·n``, and (c) the ordering
identifier ≤ token holds on every instance, as the bounds predict for these
families.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    compare_protocols_on_graph,
    default_protocol_specs,
    default_step_budget,
    get_workload,
    render_table,
)
from repro.propagation import broadcast_time_estimate
from repro.walks import worst_case_hitting_time

from _helpers import run_once

FAMILIES = ["lollipop", "barbell", "cycle-chords"]
SIZE = 36
REPETITIONS = 3


def _measure_family(family: str, engine: str = "auto"):
    graph = get_workload(family).build(SIZE, seed=2)
    budget = default_step_budget(graph, multiplier=400.0)
    measurements = compare_protocols_on_graph(
        default_protocol_specs(),
        graph,
        repetitions=REPETITIONS,
        seed=17,
        max_steps=budget,
        engine=engine,
    )
    broadcast = broadcast_time_estimate(graph, repetitions=4, max_sources=6, rng=3).value
    hitting = worst_case_hitting_time(graph)
    return graph, measurements, broadcast, hitting


@pytest.mark.benchmark(group="table1-general")
@pytest.mark.parametrize("family", FAMILIES)
def test_table1_general_family(benchmark, report, family, engine):
    graph, measurements, broadcast, hitting = run_once(
        benchmark, _measure_family, family, engine
    )
    rows = []
    for name, measurement in measurements.items():
        rows.append(
            {
                "protocol": name,
                "mean_steps": measurement.stabilization_steps.mean,
                "success": measurement.success_rate,
                "states": measurement.max_states_observed,
                "B(G)": broadcast,
                "H(G)": hitting,
            }
        )
    report(render_table(rows, title=f"T1-general: {graph.name} (n={graph.n_nodes}, m={graph.n_edges})"))

    for name, measurement in measurements.items():
        assert measurement.success_rate == 1.0, (family, name)
    identifier = measurements["identifier-broadcast"]
    token = measurements["token-6state"]
    # Identifier time is O(B + n log n): within a constant factor of the
    # measured broadcast time plus n log n.
    import math

    envelope = 30.0 * (broadcast + graph.n_nodes * math.log(graph.n_nodes))
    assert identifier.stabilization_steps.mean <= envelope
    # Token protocol is the slowest of the three on these families.
    assert token.stabilization_steps.mean >= 0.8 * identifier.stabilization_steps.mean
