"""Experiment T1-clique: Table 1, the "Cliques" row group.

Paper claims (Table 1):

* identifier / fast protocols: ``Θ(n log n)`` expected steps,
* constant-state token protocol: ``Θ(n^2)`` expected steps.

The benchmark sweeps cliques over a range of sizes, measures mean
stabilization steps for all three protocols, fits growth exponents and
checks the ordering: the token protocol must grow visibly faster (about one
power of ``n``) than the other two.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    default_protocol_specs,
    expected_exponents,
    render_table,
    run_table1_family,
)

from _helpers import run_once

SIZES = [16, 24, 36, 52, 72]
REPETITIONS = 4


@pytest.mark.benchmark(group="table1-clique")
def test_table1_clique_row_group(benchmark, report, engine):
    group = run_once(
        benchmark,
        run_table1_family,
        "clique",
        SIZES,
        repetitions=REPETITIONS,
        seed=7,
        engine=engine,
    )
    expected = expected_exponents()["clique"]
    rows = []
    by_protocol = {}
    for row in group.rows:
        rows.append(
            {
                **row.as_dict(),
                "paper_exponent": expected.get(row.protocol, float("nan")),
            }
        )
        by_protocol[row.protocol] = row
    report(group.render())
    report(render_table(rows, columns=["protocol", "exponent", "paper_exponent", "success"],
                        title="T1-clique: fitted vs paper growth exponents"))

    # Shape checks: every protocol succeeded, and the constant-state
    # protocol grows at least ~0.5 powers of n faster than the identifier
    # protocol (paper gap: n^2 vs n log n).
    for row in group.rows:
        assert row.success_rate == 1.0
    token = by_protocol["token-6state"]
    identifier = by_protocol["identifier-broadcast"]
    fast = by_protocol["fast-space-efficient"]
    assert token.fitted_exponent > identifier.fitted_exponent + 0.25
    assert token.mean_steps[-1] > 2.0 * identifier.mean_steps[-1]
    # Space complexity ordering: O(1) vs O(log^2 n) vs O(n^4)-capable.
    assert token.states_observed <= 6
    assert fast.states_observed < identifier.states_observed
