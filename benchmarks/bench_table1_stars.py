"""Experiment T1-stars: Table 1, the "Stars" row.

Paper claim: on stars there is a trivial ``O(1)``-state protocol that
stabilizes in ``O(1)`` steps (a single interaction), even though broadcast
on a star takes ``Θ(n log n)`` steps.  This is the paper's illustration
that graph structure can break symmetry much faster than information can
spread (Section 6.3).

The benchmark measures (a) the trivial protocol's stabilization time across
star sizes (it must stay constant), (b) the general-purpose protocols on
the same stars (they keep working but pay at least the broadcast cost), and
(c) the measured broadcast time, to exhibit the
"election ≪ broadcast" gap.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    render_table,
    run_star_row,
    run_table1_family,
)
from repro.propagation import broadcast_time_estimate
from repro.graphs import star

from _helpers import run_once

SIZES = [16, 32, 64, 128]
REPETITIONS = 5


@pytest.mark.benchmark(group="table1-stars")
def test_trivial_protocol_is_constant_time(benchmark, report, engine):
    group = run_once(
        benchmark, run_star_row, SIZES, repetitions=REPETITIONS, seed=29, engine=engine
    )
    report(group.render())
    row = group.rows[0]
    assert row.success_rate == 1.0
    # O(1) stabilization at every size, no growth with n.
    assert all(steps <= 8 for steps in row.mean_steps)
    assert abs(row.fitted_exponent) < 0.5
    assert row.states_observed <= 3


@pytest.mark.benchmark(group="table1-stars")
def test_leader_election_beats_broadcast_on_stars(benchmark, report, engine):
    def measure():
        star_group = run_star_row(SIZES[:3], repetitions=REPETITIONS, seed=31, engine=engine)
        broadcasts = {
            n: broadcast_time_estimate(star(n), repetitions=4, max_sources=4, rng=5).value
            for n in SIZES[:3]
        }
        return star_group, broadcasts

    star_group, broadcasts = run_once(benchmark, measure)
    row = star_group.rows[0]
    rows = [
        {
            "n": n,
            "election steps (trivial protocol)": steps,
            "broadcast steps B(G)": broadcasts[n],
            "gap": broadcasts[n] / max(steps, 1.0),
        }
        for n, steps in zip(row.sizes, row.mean_steps)
    ]
    report(render_table(rows, title="T1-stars: leader election vs broadcast time"))
    # Broadcast is Θ(n log n) while election is O(1): the gap must grow.
    gaps = [r["gap"] for r in rows]
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 10.0


@pytest.mark.benchmark(group="table1-stars")
def test_general_protocols_still_work_on_stars(benchmark, report, engine):
    group = run_once(
        benchmark,
        run_table1_family,
        "star",
        [16, 32, 64],
        repetitions=2,
        seed=37,
        engine=engine,
    )
    report(group.render())
    for row in group.rows:
        assert row.success_rate == 1.0
        # The general-purpose protocols cannot beat the trivial one here.
        assert min(row.mean_steps) >= 1.0
